//! `giant-import` — schema-checked JSON import of an Attention Ontology.
//!
//! Reads an interchange document (`giant-export`'s output, possibly
//! hand-edited), validates every node and edge against the builtin GIANT
//! schema (`--permissive` for the open-world schema), and rebuilds the
//! ontology through the same registration paths the pipeline uses — so a
//! document that survives import is a real, servable ontology, not just
//! well-formed JSON.
//!
//! Flags:
//!
//! * `--in PATH` — the JSON document (required)
//! * `--dump PATH` — write the text dump (`ontology::io::dump`) to PATH
//! * `--checkpoint PATH` — write a binary checkpoint holding the imported
//!   ontology (an `ontology` section; `giant-export --checkpoint` reads
//!   it back)
//! * `--permissive` — validate against `Schema::permissive()`
//!
//! With neither `--dump` nor `--checkpoint`, the dump goes to stdout.
//! Every failure — malformed JSON, a schema violation, a graph error — is
//! a typed message on stderr and exit code 1.

use giant::ontology::binio::{self, SectionFile, Writer};
use giant::ontology::io;
use giant::schema::{import_json, Schema};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    dump: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    permissive: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].clone())
    };
    Ok(Args {
        input: get("--in").map(PathBuf::from).ok_or("--in PATH is required")?,
        dump: get("--dump").map(PathBuf::from),
        checkpoint: get("--checkpoint").map(PathBuf::from),
        permissive: argv.iter().any(|a| a == "--permissive"),
    })
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("read {}: {e}", args.input.display()))?;
    let schema = if args.permissive {
        Schema::permissive()
    } else {
        Schema::builtin()
    };
    let ontology = import_json(&text, &schema).map_err(|e| format!("import: {e}"))?;
    eprintln!(
        "[giant-import] {} nodes imported against schema `{}` v{}",
        ontology.n_nodes(),
        schema.name(),
        schema.version()
    );
    if let Some(path) = &args.checkpoint {
        let mut file = SectionFile::new();
        let mut w = Writer::new();
        binio::write_ontology(&ontology, &mut w);
        file.add_writer("ontology", w);
        file.write_file(path)
            .map_err(|e| format!("write checkpoint {}: {e}", path.display()))?;
        eprintln!("[giant-import] checkpoint written to {}", path.display());
    }
    let dump = io::dump(&ontology);
    match &args.dump {
        Some(path) => {
            std::fs::write(path, &dump).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("[giant-import] dump written to {}", path.display());
        }
        None => {
            if args.checkpoint.is_none() {
                print!("{dump}");
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("[giant-import] error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("[giant-import] error: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! `giant-client` — a command-line client for `giant-server`.
//!
//! One request per invocation, reply printed to stdout. The output is the
//! `Debug` rendering of the typed reply, which is deterministic — two runs
//! against servers holding the same frame print identical bytes (the
//! README's kill-and-restart drill diffs exactly this).
//!
//! ```text
//! giant-client [--addr HOST:PORT] <request>
//!   --conceptualize "QUERY"              query understanding
//!   --recommend "QUERY"                  correlate recommendations
//!   --tag "TITLE" [--sentence S]...      document tagging
//!   --story NODE_ID                      story tree around a seed event
//!   --stats                              server latency/queue/shed stats
//!   --metrics                            unified giant-obs metrics report
//!                                        (net.* + wal.* + ingest.* + span.*)
//! ```

use giant::apps::serving::ServeRequest;
use giant::net::{NetClient, Reply, Request};
use giant::ontology::NodeId;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].clone())
    };
    let addr = get("--addr").unwrap_or_else(|| "127.0.0.1:7471".into());

    let request = if let Some(q) = get("--conceptualize") {
        Request::Serve(ServeRequest::Conceptualize { query: q })
    } else if let Some(q) = get("--recommend") {
        Request::Serve(ServeRequest::Recommend { query: q })
    } else if let Some(title) = get("--tag") {
        let sentences = argv
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == "--sentence")
            .map(|(i, _)| argv[i + 1].clone())
            .collect();
        Request::Serve(ServeRequest::TagDocument { title, sentences })
    } else if let Some(seed) = get("--story") {
        Request::Serve(ServeRequest::StoryTree {
            seed: NodeId(seed.parse().expect("--story u32")),
        })
    } else if argv.iter().any(|a| a == "--stats") {
        Request::Stats
    } else if argv.iter().any(|a| a == "--metrics") {
        Request::Metrics
    } else {
        eprintln!(
            "usage: giant-client [--addr HOST:PORT] \
             (--conceptualize Q | --recommend Q | --tag TITLE [--sentence S]... | --story ID | --stats | --metrics)"
        );
        std::process::exit(2);
    };

    let mut client =
        NetClient::connect(&addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    let reply = client.call(&request).unwrap_or_else(|e| panic!("call failed: {e}"));
    match reply {
        Reply::Ok(resp) => println!("{resp:?}"),
        Reply::Err(e) => println!("serve error: {e:?}"),
        Reply::Shed { depth, cap } => {
            println!("shed: queue full ({depth}/{cap}) — retry later");
            std::process::exit(1);
        }
        Reply::Stats(report) => {
            println!(
                "version {} | served {} | shed {} | batches {} (max {}) | queue {}/{} (high water {})",
                report.version,
                report.served,
                report.shed,
                report.batches,
                report.max_batch,
                report.queue_depth,
                report.queue_cap,
                report.queue_max_depth,
            );
            for row in &report.kinds {
                println!(
                    "  {:<16} n={:<8} p50={:.1}µs p99={:.1}µs",
                    row.kind, row.count, row.p50_us, row.p99_us
                );
            }
        }
        Reply::Metrics(snapshot) => {
            print!("{}", giant::obs::render_text(&snapshot));
        }
        Reply::Bad { reason } => {
            println!("protocol error: {reason}");
            std::process::exit(1);
        }
    }
}

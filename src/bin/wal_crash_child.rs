//! Fault-injection child for `tests/crash_consistency.rs`.
//!
//! One binary, three modes over the same deterministic world (seeded
//! generation + training, so every invocation folds the same batches):
//!
//! * `--reference` — the never-crashed run: bootstrap + ingest every
//!   batch with **no** durability, write the convergence fingerprint.
//! * *(default)* — the durable run the harness crashes: bootstrap, enable
//!   WAL-backed durability under `--dir`, ingest batch by batch printing
//!   `FOLDED <k>` after each (the parent's timing-kill hook). Armed
//!   crash points (`GIANT_CRASH_POINT=<label>:<n>`) abort the process at
//!   exact instants — mid-WAL-append, mid-checkpoint-rename, between
//!   checkpoint and rotation.
//! * `--resume` — crash recovery: `restore_durable` (checkpoint + WAL
//!   tail replay), ingest whatever batches the crashed run never
//!   acknowledged, write the fingerprint. If the crash predates the first
//!   durable checkpoint, starts the epoch from scratch — nothing was
//!   acknowledged durably yet.
//!
//! The contract under test: the `--resume` fingerprint equals the
//! `--reference` fingerprint byte for byte, for any kill instant and any
//! sync mode.

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig};
use giant::apps::incremental::{DurabilityConfig, IncrementalDriver};
use giant::apps::serving::{ServeRequest, ServeResources};
use giant::incr::{DeltaBatch, IncrementalState, SyncMode};
use giant::mining::GiantConfig;
use giant_data::WorldConfig;
use std::io::Write as _;
use std::path::PathBuf;

struct Args {
    dir: PathBuf,
    emit: PathBuf,
    sync: SyncMode,
    seed: u64,
    batches: usize,
    checkpoint_every: u64,
    threads: usize,
    resume: bool,
    reference: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].clone())
    };
    Args {
        dir: PathBuf::from(get("--dir").expect("--dir <path> is required")),
        emit: PathBuf::from(get("--emit").expect("--emit <path> is required")),
        sync: SyncMode::parse(&get("--sync").unwrap_or_else(|| "strict".into()))
            .expect("--sync strict|batched:N|none"),
        seed: get("--seed").map_or(42, |s| s.parse().expect("--seed u64")),
        batches: get("--batches").map_or(3, |s| s.parse().expect("--batches usize")),
        checkpoint_every: get("--checkpoint-every")
            .map_or(2, |s| s.parse().expect("--checkpoint-every u64")),
        threads: get("--threads").map_or(1, |s| s.parse().expect("--threads usize")),
        resume: argv.iter().any(|a| a == "--resume"),
        reference: argv.iter().any(|a| a == "--reference"),
    }
}

/// The deterministic trial world: batches to fold, the fresh state, and
/// the base serving resources (identical across parent/child/reference
/// because generation, training and the bootstrap pipeline are seeded).
struct Trial {
    batches: Vec<DeltaBatch>,
    state: IncrementalState,
    base: ServeResources,
    annotator: giant::text::Annotator,
    models: giant::mining::train::GiantModels,
}

fn build_trial(args: &Args) -> Trial {
    let setup = GiantSetup::generate(WorldConfig {
        seed: args.seed,
        ..WorldConfig::tiny()
    });
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let cfg = GiantConfig {
        threads: args.threads,
        ..GiantConfig::default()
    };
    let output = setup.run_pipeline(&models, &cfg);
    let serving = build_serving(&setup, &output);
    let base = (*serving.service.resources()).clone();
    let stream = setup.corpus_stream();
    let cuts: Vec<f64> = (1..args.batches)
        .map(|i| i as f64 / args.batches as f64)
        .collect();
    let batches = stream.split(&cuts);
    let state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        cfg,
    );
    Trial {
        batches,
        state,
        base,
        annotator: stream.annotator.clone(),
        models,
    }
}

/// The byte-comparable end-state: published version, fold count, one
/// serving probe, and the full ontology dump.
fn fingerprint(driver: &IncrementalDriver) -> String {
    let probe = ServeRequest::Conceptualize {
        query: "best phones".into(),
    };
    format!(
        "version {}\nfolds {}\nprobe {:?}\n{}",
        driver.service().version(),
        driver.state().folds(),
        driver.service().serve(&probe),
        giant::ontology::io::dump(driver.state().ontology()),
    )
}

/// Ingests batches `from..` one at a time, announcing each completed fold
/// on stdout so the parent can SIGKILL between (or during) folds.
fn ingest_from(driver: &mut IncrementalDriver, batches: &[DeltaBatch], from: usize) {
    let mut out = std::io::stdout();
    for (i, batch) in batches.iter().enumerate().skip(from) {
        driver.ingest(batch.clone()).expect("ingest");
        writeln!(out, "FOLDED {i}").expect("stdout");
        out.flush().expect("stdout flush");
    }
}

fn main() {
    let args = parse_args();
    let trial = build_trial(&args);
    let durability = DurabilityConfig {
        dir: args.dir.clone(),
        sync: args.sync,
        checkpoint_every: args.checkpoint_every,
    };

    let driver = if args.reference {
        // Never-crashed, never-durable reference run.
        let (mut driver, _) = IncrementalDriver::bootstrap(
            trial.state,
            trial.base,
            trial.batches[0].clone(),
            2,
        )
        .expect("bootstrap");
        ingest_from(&mut driver, &trial.batches, 1);
        driver
    } else if args.resume && durability.checkpoint_path().exists() {
        let (mut driver, report) = IncrementalDriver::restore_durable(
            durability,
            trial.annotator.clone(),
            trial.models.clone(),
            2,
        )
        .expect("restore_durable");
        println!(
            "RESTORED folds={} replayed={} truncated={}",
            driver.state().folds(),
            report.replayed,
            report.truncation.is_some()
        );
        // Fresh process, so absolute counter reads are exact: the obs
        // counters must agree with the restore report — every folded
        // replay was counted, and the WAL decoded at least that many.
        let snap = giant::obs::registry().snapshot();
        assert_eq!(
            snap.counter("ingest.replayed").unwrap_or(0),
            report.replayed as u64,
            "ingest.replayed metric tracks RestoreReport.replayed"
        );
        assert!(
            snap.counter("wal.replayed").unwrap_or(0) >= report.replayed as u64,
            "wal.replayed counts every decoded entry, folded or skipped"
        );
        // folds counts the bootstrap batch too, so it doubles as the
        // index of the next batch to ingest.
        let from = driver.state().folds() as usize;
        ingest_from(&mut driver, &trial.batches, from);
        driver
    } else {
        // Fresh durable run — also the `--resume` path when the crash
        // predates the baseline checkpoint (nothing acknowledged yet).
        let (mut driver, _) = IncrementalDriver::bootstrap(
            trial.state,
            trial.base,
            trial.batches[0].clone(),
            2,
        )
        .expect("bootstrap");
        driver.enable_durability(durability).expect("enable durability");
        println!("DURABLE");
        std::io::stdout().flush().expect("stdout flush");
        ingest_from(&mut driver, &trial.batches, 1);
        driver
    };

    std::fs::write(&args.emit, fingerprint(&driver)).expect("write fingerprint");
    // The WAL counters of this whole process, for the parent harness to
    // compare against its fault-injection ground truth (fresh process →
    // absolute values are exact).
    let snap = giant::obs::registry().snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    println!(
        "WALMETRICS appends={} syncs={} rotations={} replayed={} truncations={}",
        c("wal.appends"),
        c("wal.syncs"),
        c("wal.rotations"),
        c("wal.replayed"),
        c("wal.truncations")
    );
    println!("DONE");
}

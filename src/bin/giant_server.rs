//! `giant-server` — the network serving daemon.
//!
//! Publishes an `OntologyService` behind the `giant-net` wire protocol.
//! On first start it builds the world (generate → train → mine → publish)
//! and, when `--checkpoint` is given, persists the serving state; any
//! later start warm-starts from that checkpoint in milliseconds — which
//! is what makes the kill-and-restart drill in the README honest:
//!
//! ```text
//! cargo run --release --bin giant-server -- --checkpoint /tmp/giant.ckpt
//! cargo run --release --bin giant-client -- --conceptualize "best phones"
//! kill -9 <server pid>
//! cargo run --release --bin giant-server -- --checkpoint /tmp/giant.ckpt   # ms warm start
//! cargo run --release --bin giant-client -- --conceptualize "best phones"  # same bytes
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7471`, `:0` for ephemeral)
//! * `--checkpoint PATH` — restore from PATH if it exists, else build and write it
//! * `--world tiny|experiment` — world scale when building fresh (default `tiny`)
//! * `--seed U64` — world seed when building fresh (default 42)
//! * `--workers N` / `--exec-threads N` / `--batch-max N` / `--queue-cap N`
//!   — server tuning (defaults 2/4/32/256)
//! * `--allow-export` — admit `ExportSubgraph` requests (schema-checked
//!   JSON dumps of the served ontology; off by default because a full
//!   export is far heavier than any other request)
//! * `--metrics-file PATH` — on SIGTERM/SIGINT, write the unified
//!   `giant-obs` metrics report (text exposition) to PATH before exiting
//!   (the same rows `giant-client --metrics` fetches live)
//! * `--profile PATH` — enable the `giant-obs` span profiler and write
//!   flamegraph-compatible folded stacks to PATH on SIGTERM/SIGINT
//!
//! The server arms `giant-obs` span recording unconditionally — the
//! <2% overhead budget is asserted by `obs_overhead` — so `--metrics`
//! reports include span histograms without any env setup.

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig};
use giant::apps::serving::OntologyService;
use giant::data::WorldConfig;
use giant::net::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    addr: String,
    checkpoint: Option<PathBuf>,
    world: String,
    seed: u64,
    metrics_file: Option<PathBuf>,
    profile: Option<PathBuf>,
    config: ServerConfig,
}

/// Set by the signal handler; polled by the main loop. Signal-safe: the
/// handler only stores a relaxed atomic flag, all real work (file writes)
/// happens back on the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGTERM (15) and SIGINT (2) via the libc
/// `signal(2)` symbol — declared directly so the binary stays free of
/// extra crates.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_signal as *const () as usize); // SIGTERM
        signal(2, on_signal as *const () as usize); // SIGINT
    }
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].clone())
    };
    let defaults = ServerConfig::default();
    Args {
        addr: get("--addr").unwrap_or_else(|| "127.0.0.1:7471".into()),
        checkpoint: get("--checkpoint").map(PathBuf::from),
        world: get("--world").unwrap_or_else(|| "tiny".into()),
        seed: get("--seed").map_or(42, |s| s.parse().expect("--seed u64")),
        metrics_file: get("--metrics-file").map(PathBuf::from),
        profile: get("--profile").map(PathBuf::from),
        config: ServerConfig {
            workers: get("--workers").map_or(defaults.workers, |s| s.parse().expect("--workers usize")),
            exec_threads: get("--exec-threads")
                .map_or(defaults.exec_threads, |s| s.parse().expect("--exec-threads usize")),
            batch_max: get("--batch-max")
                .map_or(defaults.batch_max, |s| s.parse().expect("--batch-max usize")),
            queue_cap: get("--queue-cap")
                .map_or(defaults.queue_cap, |s| s.parse().expect("--queue-cap usize")),
            debug_batch_delay_us: 0,
            allow_export: argv.iter().any(|a| a == "--allow-export"),
        },
    }
}

/// Builds the serving state: checkpoint restore when available, the full
/// generate → train → mine → publish pipeline otherwise.
fn load_service(args: &Args) -> OntologyService {
    if let Some(path) = &args.checkpoint {
        if path.exists() {
            let t = Instant::now();
            let svc = OntologyService::restore(path)
                .unwrap_or_else(|e| panic!("restore {}: {e}", path.display()));
            eprintln!(
                "[giant-server] warm start from {} in {:.1} ms (version {})",
                path.display(),
                t.elapsed().as_secs_f64() * 1e3,
                svc.version()
            );
            return svc;
        }
    }
    let t = Instant::now();
    eprintln!("[giant-server] cold start: building {} world (seed {})...", args.world, args.seed);
    let world = match args.world.as_str() {
        "tiny" => WorldConfig {
            seed: args.seed,
            ..WorldConfig::tiny()
        },
        "experiment" => WorldConfig {
            seed: args.seed,
            ..WorldConfig::experiment()
        },
        other => panic!("--world must be tiny|experiment, got {other}"),
    };
    let setup = GiantSetup::generate(world);
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &Default::default());
    let svc = build_serving(&setup, &output).service;
    eprintln!("[giant-server] built in {:.1?} (version {})", t.elapsed(), svc.version());
    if let Some(path) = &args.checkpoint {
        let t = Instant::now();
        svc.checkpoint(path)
            .unwrap_or_else(|e| panic!("checkpoint {}: {e}", path.display()));
        eprintln!(
            "[giant-server] checkpoint written to {} in {:.1} ms",
            path.display(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }
    svc
}

fn main() {
    let args = parse_args();
    // Span recording on from the start: the cold-start pipeline run below
    // then shows up in `span.*` histograms and the profiler output.
    giant::obs::arm(true);
    if args.profile.is_some() {
        giant::obs::set_profiling(true);
    }
    // Register the WAL counters up front so `--metrics` reports always
    // carry the `wal.*` rows (zeroed until durable ingestion runs) —
    // otherwise they'd only appear after the first WAL touch.
    giant::incr::wal_metrics();
    install_signal_handlers();
    let svc = Arc::new(load_service(&args));
    let server = Server::start(Arc::clone(&svc), &args.addr, args.config.clone())
        .unwrap_or_else(|e| panic!("bind {}: {e}", args.addr));
    // Machine-parseable startup lines (the quickstart and tests read these).
    println!("LISTENING {}", server.local_addr());
    println!("VERSION {}", svc.version());
    // Serve until signalled; all work happens on the server's threads.
    while !SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    eprintln!("[giant-server] shutting down");
    if let Some(path) = &args.metrics_file {
        let report = giant::obs::render_text(&server.metrics_report());
        std::fs::write(path, report)
            .unwrap_or_else(|e| eprintln!("[giant-server] metrics dump {}: {e}", path.display()));
        eprintln!("[giant-server] metrics written to {}", path.display());
    }
    if let Some(path) = &args.profile {
        std::fs::write(path, giant::obs::folded_stacks())
            .unwrap_or_else(|e| eprintln!("[giant-server] profile dump {}: {e}", path.display()));
        eprintln!("[giant-server] folded stacks written to {}", path.display());
    }
}

//! `giant-export` — schema-checked JSON export of an Attention Ontology.
//!
//! Where the ontology comes from, in priority order:
//!
//! * `--checkpoint PATH` — read it out of a binary checkpoint: a
//!   driver/state checkpoint's `incr.ontology` section, or the plain
//!   `ontology` section `giant-import --checkpoint` writes;
//! * otherwise build a world fresh — `--world tiny|experiment` (default
//!   `tiny`), `--seed U64` (default 42) — through the same
//!   generate → train → mine path `giant-server` cold-starts with.
//!
//! The export validates against the builtin GIANT schema
//! (`--permissive` switches to the open-world schema) and renders the
//! interchange JSON document to `--out PATH` (default: stdout). The
//! contract, pinned by `tests/schema_interchange.rs`: feeding the output
//! to `giant-import` reproduces the ontology byte-identically.
//!
//! Every failure is a typed message on stderr and exit code 1.

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::ontology::binio::{self, SectionFile};
use giant::ontology::Ontology;
use giant::schema::{export_json, Schema};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    checkpoint: Option<PathBuf>,
    world: String,
    seed: u64,
    out: Option<PathBuf>,
    permissive: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].clone())
    };
    Args {
        checkpoint: get("--checkpoint").map(PathBuf::from),
        world: get("--world").unwrap_or_else(|| "tiny".into()),
        seed: get("--seed").map_or(42, |s| s.parse().expect("--seed u64")),
        out: get("--out").map(PathBuf::from),
        permissive: argv.iter().any(|a| a == "--permissive"),
    }
}

/// Loads the ontology from a checkpoint's `incr.ontology` (driver/state
/// image) or `ontology` (import image) section.
fn load_checkpoint(path: &Path) -> Result<Ontology, String> {
    let file = SectionFile::read_file(path)
        .map_err(|e| format!("read checkpoint {}: {e}", path.display()))?;
    let mut r = file
        .section("incr.ontology")
        .or_else(|_| file.section("ontology"))
        .map_err(|e| {
            format!(
                "{}: no `incr.ontology` or `ontology` section ({e})",
                path.display()
            )
        })?;
    let o = binio::read_ontology(&mut r)
        .map_err(|e| format!("decode ontology from {}: {e}", path.display()))?;
    r.expect_exhausted()
        .map_err(|e| format!("trailing bytes after ontology in {}: {e}", path.display()))?;
    Ok(o)
}

/// Builds the world fresh, exactly like `giant-server`'s cold start.
fn build_world(args: &Args) -> Result<Ontology, String> {
    let world = match args.world.as_str() {
        "tiny" => WorldConfig {
            seed: args.seed,
            ..WorldConfig::tiny()
        },
        "experiment" => WorldConfig {
            seed: args.seed,
            ..WorldConfig::experiment()
        },
        other => return Err(format!("--world must be tiny|experiment, got {other}")),
    };
    let t = Instant::now();
    eprintln!(
        "[giant-export] building {} world (seed {})...",
        args.world, args.seed
    );
    let setup = GiantSetup::generate(world);
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &Default::default());
    eprintln!("[giant-export] built in {:.1?}", t.elapsed());
    Ok(output.ontology)
}

fn run(args: &Args) -> Result<(), String> {
    let ontology = match &args.checkpoint {
        Some(path) => load_checkpoint(path)?,
        None => build_world(args)?,
    };
    let schema = if args.permissive {
        Schema::permissive()
    } else {
        Schema::builtin()
    };
    let json = export_json(&ontology, &schema).map_err(|e| format!("export: {e}"))?;
    eprintln!(
        "[giant-export] {} nodes, schema `{}` v{}, {} bytes of JSON",
        ontology.n_nodes(),
        schema.name(),
        schema.version(),
        json.len()
    );
    match &args.out {
        Some(path) => std::fs::write(path, &json)
            .map_err(|e| format!("write {}: {e}", path.display()))?,
        None => println!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("[giant-export] error: {msg}");
            ExitCode::FAILURE
        }
    }
}

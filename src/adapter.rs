//! Adapts the synthetic world (`giant-data`) into the data-agnostic pipeline
//! input (`giant-core`), and bundles the common experiment setup: generate →
//! build datasets → train models → run the pipeline → publish for serving.

use giant_apps::duet::{duet_features, DuetConfig, DuetMatcher};
use giant_apps::serving::{OntologyService, ServeResources};
use giant_apps::storytree::{StoryEvent, StoryTreeConfig};
use giant_apps::tagging::{TagResources, TaggingConfig};
use giant_core::gctsp::GctspConfig;
use giant_core::pipeline::{CategoryRecord, DocRecord, GiantOutput, PipelineInput};
use giant_core::train::{train_phrase_model, train_role_model, GiantModels, TrainingCluster};
use giant_core::GiantConfig;
use giant_data::{
    concept_mining_dataset, event_mining_dataset, generate_clicks, generate_corpus, ClickConfig,
    ClickLog, Corpus, CorpusConfig, MiningDataset, MiningExample, World, WorldConfig,
};
use giant_incr::{union_input, ClickEvent, CorpusStream};
use giant_ontology::{NodeKind, OntologySnapshot};
use giant_text::embedding::{PhraseEncoder, SgnsConfig, WordEmbeddings};
use giant_text::{TfIdf, Vocab};
use std::sync::Arc;

/// Everything needed to run experiments, generated from one seed.
pub struct GiantSetup {
    /// The ground-truth world.
    pub world: World,
    /// The document corpus.
    pub corpus: Corpus,
    /// The click log (records, intents, sessions).
    pub log: ClickLog,
    /// Concept Mining Dataset analogue.
    pub cmd: MiningDataset,
    /// Event Mining Dataset analogue.
    pub emd: MiningDataset,
}

/// Model-training configuration for [`GiantSetup::train_models`].
#[derive(Debug, Clone, Copy)]
pub struct ModelTrainConfig {
    /// Phrase (binary) model configuration.
    pub phrase: GctspConfig,
    /// Role (4-class) model configuration.
    pub role: GctspConfig,
}

impl Default for ModelTrainConfig {
    fn default() -> Self {
        Self {
            phrase: GctspConfig {
                epochs: 8,
                ..GctspConfig::default()
            },
            role: GctspConfig {
                n_classes: 4,
                epochs: 8,
                ..GctspConfig::default()
            },
        }
    }
}

impl ModelTrainConfig {
    /// A small configuration for tests (3-layer, few epochs).
    pub fn small() -> Self {
        let small = GctspConfig {
            hidden: 16,
            layers: 3,
            n_bases: 3,
            feat_dim: 6,
            epochs: 6,
            ..GctspConfig::default()
        };
        Self {
            phrase: small,
            role: GctspConfig {
                n_classes: 4,
                ..small
            },
        }
    }
}

/// Converts dataset examples into the core's training form.
pub fn to_training_clusters(examples: &[MiningExample]) -> Vec<TrainingCluster> {
    examples
        .iter()
        .map(|e| TrainingCluster {
            queries: e.queries.clone(),
            titles: e.titles.clone(),
            gold_tokens: e.gold_tokens.clone(),
            roles: e.roles.clone(),
        })
        .collect()
}

impl GiantSetup {
    /// Generates world, corpus, click log and datasets from `cfg`.
    pub fn generate(cfg: WorldConfig) -> Self {
        Self::generate_with(cfg, &ClickConfig::default())
    }

    /// [`GiantSetup::generate`] with explicit click-log generation
    /// parameters (noise fractions, sessions per member) — benches use
    /// this to model, e.g., a spam-filtered ingest stream.
    pub fn generate_with(cfg: WorldConfig, clicks: &ClickConfig) -> Self {
        let world = World::generate(cfg);
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        let log = generate_clicks(&world, &corpus, clicks);
        let cmd = concept_mining_dataset(&world, &corpus, &log);
        let emd = event_mining_dataset(&world, &corpus, &log);
        Self {
            world,
            corpus,
            log,
            cmd,
            emd,
        }
    }

    /// The category tree, pipeline view.
    pub fn category_records(&self) -> Vec<CategoryRecord> {
        self.world
            .categories
            .iter()
            .map(|c| CategoryRecord {
                id: c.id,
                tokens: c.tokens.clone(),
                level: c.level,
                parent: c.parent,
            })
            .collect()
    }

    /// The raw replayable stream view of this setup: documents, click
    /// records, sessions and entities in log order, before any click graph
    /// is built. This is what incremental folding splits into batches
    /// (`giant_incr::CorpusStream::split`); replaying the whole stream
    /// reproduces [`GiantSetup::pipeline_input`] bit for bit.
    pub fn corpus_stream(&self) -> CorpusStream {
        CorpusStream {
            categories: self.category_records(),
            annotator: self.world.annotator(),
            docs: self
                .corpus
                .docs
                .iter()
                .map(|d| DocRecord {
                    id: d.id,
                    title: d.title.clone(),
                    sentences: d.sentences.clone(),
                    leaf_category: d.leaf_category,
                    day: d.day,
                })
                .collect(),
            clicks: self
                .log
                .records
                .iter()
                .map(|r| ClickEvent {
                    query: r.query.clone(),
                    doc: r.doc,
                    count: r.count,
                })
                .collect(),
            sessions: self.log.sessions.clone(),
            entities: self
                .world
                .entities
                .iter()
                .map(|e| (e.tokens.clone(), e.ner))
                .collect(),
        }
    }

    /// The pipeline-input view of this setup: the corpus stream replayed
    /// as one batch (identical to the historical direct construction —
    /// `build_click_graph` folded the records in the same order).
    pub fn pipeline_input(&self) -> PipelineInput {
        let stream = self.corpus_stream();
        union_input(
            stream.categories.clone(),
            stream.annotator.clone(),
            &[stream.as_one_batch()],
        )
    }

    /// The raw stream of a **scaled** world: `tiles` independently
    /// generated tile worlds (derived seeds — `giant_data::scale`),
    /// concatenated into one corpus with category- and doc-id offsets and
    /// one merged annotator. Tiles are generated one at a time and dropped
    /// after conversion, so peak memory is one tile plus the flat records —
    /// the path the shard-throughput bench uses to grow the corpus ~2
    /// orders of magnitude past a single world's template capacity.
    ///
    /// Each tile owns its own level-1 category roots, so the sharded
    /// pipeline's document-led partition aligns shards with tile groups,
    /// while repeated concept surfaces across tiles (the domain templates
    /// repeat) keep genuine cross-shard queries in the click graph.
    pub fn scaled_corpus_stream(
        base: WorldConfig,
        clicks: &ClickConfig,
        tiles: usize,
    ) -> CorpusStream {
        let mut categories: Vec<CategoryRecord> = Vec::new();
        let mut docs: Vec<DocRecord> = Vec::new();
        let mut click_events: Vec<ClickEvent> = Vec::new();
        let mut sessions: Vec<Vec<String>> = Vec::new();
        let mut entities: Vec<(Vec<String>, giant_text::NerTag)> = Vec::new();
        let mut lexicon = giant_text::Lexicon::with_closed_class();
        let mut gazetteer = giant_text::Gazetteer::new();
        for world in giant_data::tile_worlds(base, tiles.max(1)) {
            let corpus = generate_corpus(&world, &CorpusConfig::default());
            let log = generate_clicks(&world, &corpus, clicks);
            let cat_off = categories.len();
            let doc_off = docs.len();
            categories.extend(world.categories.iter().map(|c| CategoryRecord {
                id: cat_off + c.id,
                tokens: c.tokens.clone(),
                level: c.level,
                parent: c.parent.map(|p| p + cat_off),
            }));
            docs.extend(corpus.docs.iter().map(|d| DocRecord {
                id: doc_off + d.id,
                title: d.title.clone(),
                sentences: d.sentences.clone(),
                leaf_category: d.leaf_category + cat_off,
                day: d.day,
            }));
            click_events.extend(log.records.iter().map(|r| ClickEvent {
                query: r.query.clone(),
                doc: r.doc + doc_off,
                count: r.count,
            }));
            sessions.extend(log.sessions.iter().cloned());
            entities.extend(world.entities.iter().map(|e| (e.tokens.clone(), e.ner)));
            world.extend_lexicon(&mut lexicon);
            world.extend_gazetteer(&mut gazetteer);
            // `world`, `corpus`, `log` drop here — one tile in memory at a
            // time.
        }
        CorpusStream {
            categories,
            annotator: giant_text::Annotator::new(
                lexicon,
                gazetteer,
                giant_text::StopWords::standard(),
            ),
            docs,
            clicks: click_events,
            sessions,
            entities,
        }
    }

    /// Trains the phrase + role models on the CMD/EMD train splits.
    /// Returns the models and the pair of final-epoch losses.
    pub fn train_models(&self, cfg: &ModelTrainConfig) -> (GiantModels, (f64, f64)) {
        let annotator = self.world.annotator();
        let cmd_train = to_training_clusters(&self.cmd.train);
        let emd_train = to_training_clusters(&self.emd.train);
        let (phrase_model, l1) = train_phrase_model(&cmd_train, &annotator, cfg.phrase);
        // The binary phrase model must also see event clusters so the
        // pipeline can mine both kinds.
        let mut all_train = cmd_train;
        all_train.extend(emd_train.iter().cloned());
        let (phrase_model_full, _) = train_phrase_model(&all_train, &annotator, cfg.phrase);
        let (role_model, l2) = train_role_model(&emd_train, &annotator, cfg.role);
        // Keep the CMD-only loss for reporting, ship the full model.
        drop(phrase_model);
        (
            GiantModels {
                phrase_model: phrase_model_full,
                role_model,
            },
            (l1, l2),
        )
    }

    /// Trains models and runs the full pipeline.
    pub fn run_pipeline(&self, models: &GiantModels, cfg: &GiantConfig) -> GiantOutput {
        giant_core::run_pipeline(&self.pipeline_input(), models, cfg)
    }
}

/// A ready-to-serve bundle: the versioned [`OntologyService`] plus shared
/// handles to the trained text resources (kept for harness code that also
/// uses them outside the service, e.g. baseline evaluation).
pub struct ServingBuild {
    /// The serving endpoint, version 1 published.
    pub service: OntologyService,
    /// Frozen ontology of the published frame (same `Arc` the service holds).
    pub snapshot: Arc<OntologySnapshot>,
    /// Phrase encoder trained on the corpus.
    pub encoder: Arc<PhraseEncoder>,
    /// Vocabulary of the encoder.
    pub vocab: Arc<Vocab>,
    /// TF-IDF table over corpus titles.
    pub tfidf: Arc<TfIdf>,
}

/// Trains the Duet matcher on (mined event phrase, matching/non-matching
/// title) pairs from the pipeline output.
pub fn train_duet(
    output: &GiantOutput,
    encoder: &PhraseEncoder,
    vocab: &Vocab,
) -> DuetMatcher {
    let mut examples = Vec::new();
    let events = output.mined_of_kind(NodeKind::Event);
    for (i, m) in events.iter().enumerate() {
        let Some(pos_title) = m.top_titles.first() else {
            continue;
        };
        let pos = duet_features(&m.tokens, &giant_text::tokenize(pos_title), encoder, vocab);
        examples.push((pos, true));
        // Negative: another event's title.
        if let Some(other) = events.get((i + 1) % events.len()) {
            if other.node != m.node {
                if let Some(neg_title) = other.top_titles.first() {
                    let neg =
                        duet_features(&m.tokens, &giant_text::tokenize(neg_title), encoder, vocab);
                    examples.push((neg, false));
                }
            }
        }
    }
    DuetMatcher::train(&examples, DuetConfig::default())
}

/// The mined events as story-tree inputs, in mining order (thin wrapper
/// over the shared serving-metadata derivation in `giant_apps`).
pub fn story_events(output: &GiantOutput) -> Vec<StoryEvent> {
    giant_apps::incremental::mined_metadata(output).stories
}

/// Assembles and publishes the full serving stack for one pipeline product:
/// trains the corpus text resources (SGNS encoder, TF-IDF, Duet), derives
/// the tagging metadata (concept contexts, event phrases, support floor),
/// freezes the ontology into an [`OntologySnapshot`] and publishes
/// everything as version 1 of an [`OntologyService`].
pub fn build_serving(setup: &GiantSetup, output: &GiantOutput) -> ServingBuild {
    // Corpus-trained text resources.
    let mut vocab = Vocab::new();
    let sents = setup.corpus.embedding_corpus(&mut vocab);
    let encoder = Arc::new(PhraseEncoder::new(WordEmbeddings::train(
        &sents,
        vocab.len(),
        &SgnsConfig::default(),
    )));
    let vocab = Arc::new(vocab);
    let mut tfidf = TfIdf::new();
    for d in &setup.corpus.docs {
        let toks = giant_text::tokenize(&d.title);
        tfidf.add_doc(toks.iter().map(|s| s.as_str()));
    }
    let tfidf = Arc::new(tfidf);
    let duet = Arc::new(train_duet(output, &encoder, &vocab));

    // Per-version serving metadata — the same derivation the incremental
    // driver refreshes on every publish (`giant_apps::incremental`), so
    // batch and incremental serving can never drift apart.
    let meta = giant_apps::incremental::mined_metadata(output);

    let resources = ServeResources {
        tagging: TagResources {
            concept_contexts: meta.concept_contexts,
            event_phrases: meta.event_phrases,
            tfidf: Arc::clone(&tfidf),
            duet,
            encoder: Arc::clone(&encoder),
            vocab: Arc::clone(&vocab),
            config: TaggingConfig {
                min_concept_support: meta.min_concept_support,
                ..TaggingConfig::default()
            },
        },
        stories: meta.stories,
        story_config: StoryTreeConfig::default(),
        match_aliases: false,
        max_results: 5,
    };
    let service = OntologyService::new(OntologySnapshot::freeze(&output.ontology), resources);
    let snapshot = service.snapshot();
    ServingBuild {
        service,
        snapshot,
        encoder,
        vocab,
        tfidf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_generates_consistent_datasets() {
        let s = GiantSetup::generate(WorldConfig::tiny());
        assert_eq!(s.cmd.len(), s.world.concepts.len());
        assert_eq!(s.emd.len(), s.world.events.len());
        let input = s.pipeline_input();
        assert_eq!(input.docs.len(), s.corpus.docs.len());
        assert_eq!(input.categories.len(), s.world.categories.len());
        assert_eq!(input.entities.len(), s.world.entities.len());
        assert!(!input.sessions.is_empty());
    }
}

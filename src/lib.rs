//! # giant — a Rust reproduction of GIANT (SIGMOD 2020)
//!
//! *GIANT: Scalable Creation of a Web-scale Ontology* (Liu, Guo, Niu, Luo,
//! Wang, Wen, Xu; SIGMOD 2020) mines **user attention phrases** — concepts,
//! events and topics in the language of search users — from a search click
//! graph, and links them with categories and entities into the **Attention
//! Ontology**: a DAG with `isA`, `involve` and `correlate` edges that powers
//! document tagging, story trees, query conceptualization and feed
//! recommendation.
//!
//! This workspace is a from-scratch reproduction (see `DESIGN.md` for the
//! system inventory and the substitutions made for proprietary inputs):
//!
//! | crate | contents |
//! |-------|----------|
//! | [`text`] | tokenizer, POS/NER/dependency annotation, SGNS embeddings, TF-IDF |
//! | [`graph`] | click graph, random walk with restart, query–doc clustering |
//! | [`nn`] | matrices, R-GCN, LSTM/BiLSTM, CRF, GBDT — verified backward passes |
//! | [`tsp`] | exact + heuristic asymmetric-TSP path solvers |
//! | [`ontology`] | the Attention Ontology store (DAG invariants, stats, IO) |
//! | [`data`] | the synthetic world, corpus, click logs, CMD/EMD datasets |
//! | [`mining`] | QTIG, GCTSP-Net, ATSP decoding, the full pipeline (`giant-core`) |
//! | [`baselines`] | TextRank, AutoPhrase, Match/Align, LSTM-CRF, TextSummary + metrics |
//! | [`apps`] | story trees, document tagging, Duet, query understanding, feed simulator |
//! | [`incr`] | incremental ontology maintenance: delta batches, dirty-cluster re-mining, ontology deltas |
//! | [`net`] | network front door: checksummed binary wire protocol, request-coalescing server, bounded admission, latency stats |
//! | [`schema`] | typed schema layer: object/link types, validation, JSON interchange |
//! | [`obs`] | unified observability: metrics registry, structured spans, profiling hooks, text/JSON exposition |
//!
//! ## Quickstart
//!
//! ```no_run
//! use giant::adapter::{build_serving, GiantSetup};
//! use giant::apps::serving::ServeRequest;
//!
//! // Generate a synthetic world + click log, train the models, build the AO.
//! let setup = GiantSetup::generate(giant::data::WorldConfig::tiny());
//! let (models, _) = setup.train_models(&Default::default());
//! let output = setup.run_pipeline(&models, &Default::default());
//! let stats = output.ontology.stats();
//! println!("nodes: {:?}, edges: {:?}", stats.nodes_by_kind, stats.edges_by_kind);
//!
//! // Freeze the ontology and publish it behind the versioned serving API.
//! let serving = build_serving(&setup, &output);
//! let answer = serving.service.serve(&ServeRequest::Conceptualize {
//!     query: "best budget phones".into(),
//! });
//! println!("version {}: {answer:?}", serving.service.version());
//! ```

pub use giant_apps as apps;
pub use giant_baselines as baselines;
pub use giant_core as mining;
pub use giant_data as data;
pub use giant_graph as graph;
pub use giant_incr as incr;
pub use giant_net as net;
pub use giant_nn as nn;
pub use giant_obs as obs;
pub use giant_ontology as ontology;
pub use giant_schema as schema;
pub use giant_text as text;
pub use giant_tsp as tsp;

pub mod adapter;

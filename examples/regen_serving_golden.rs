//! Regenerates `tests/golden/serving_seed42.txt`: the canonical application
//! outputs (document tags, query rewrites, correlate recommendations, story
//! tree) on the seed-42 tiny world. The serving-equivalence suite asserts
//! that the versioned `OntologyService` reproduces this file byte-for-byte,
//! pinning the serving API to the pre-redesign application behaviour.
//!
//! ```text
//! cargo run --release --example regen_serving_golden
//! ```

use giant::adapter::ModelTrainConfig;
use giant::data::WorldConfig;
use giant_bench::{serving_golden_dump, Experiment, ExperimentConfig};

fn main() {
    let exp = Experiment::build(ExperimentConfig {
        world: WorldConfig::tiny(),
        train: ModelTrainConfig::small(),
        ..ExperimentConfig::default()
    });
    let golden = serving_golden_dump(&exp);
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serving_seed42.txt");
    std::fs::write(&path, &golden).expect("write golden");
    println!("wrote {} ({} bytes)", path.display(), golden.len());
    for l in golden.lines().take(4) {
        println!("  {l}");
    }
}

//! Regenerates the golden ontology snapshot used by `tests/golden_snapshot.rs`.
//!
//! Run from the repository root:
//!
//! ```sh
//! cargo run --release --example regen_golden
//! ```
//!
//! The snapshot pins the exact byte stream the seed-world pipeline produces
//! (tiny world, small models, default config, seed 42). Any intentional
//! change to pipeline output must regenerate it — and the diff of
//! `tests/golden/ontology_seed42.txt` then *is* the behavioural diff,
//! reviewable line by line.

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;

fn main() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    let dump = giant::ontology::io::dump(&output.ontology);
    let path = std::path::Path::new("tests/golden/ontology_seed42.txt");
    std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
    std::fs::write(path, &dump).expect("write golden snapshot");
    println!(
        "wrote {} ({} lines, {} bytes)",
        path.display(),
        dump.lines().count(),
        dump.len()
    );
}

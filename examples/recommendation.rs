//! Feed-recommendation simulation (paper §5.4): the A/B comparison behind
//! Figure 6 and the per-tag-kind channels behind Figure 7, on a small world
//! with oracle document tags.
//!
//! ```text
//! cargo run --release --example recommendation
//! ```

use giant::apps::recommend::{
    ground_truth_tags, simulate_by_kind, simulate_feed, FeedSimConfig, TagStrategy,
};
use giant::data::{generate_corpus, CorpusConfig, World, WorldConfig};
use giant::ontology::{NodeId, NodeKind};

fn node_of(kind: NodeKind, id: usize) -> NodeId {
    // Disjoint id spaces per kind (oracle tagging, no ontology needed here).
    NodeId((kind.index() * 100_000 + id) as u32)
}

fn main() {
    let world = World::generate(WorldConfig::default());
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let docs = ground_truth_tags(&world, &corpus, &node_of);
    let cfg = FeedSimConfig::default();

    let all = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::AllTags);
    let base = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::CategoryEntity);
    println!("=== A/B: all tags vs category+entity ===");
    println!("day   all-tags   cat+entity");
    for (d, (a, b)) in all.daily_ctr.iter().zip(&base.daily_ctr).enumerate() {
        println!("{d:<5} {a:>7.2}%   {b:>7.2}%");
    }
    println!(
        "\naverage CTR: all tags {:.2}% vs category+entity {:.2}%",
        all.avg_ctr, base.avg_ctr
    );

    println!("\n=== per-tag-kind channels ===");
    let kinds = simulate_by_kind(&world, &corpus, &docs, &cfg);
    for kind in [
        NodeKind::Topic,
        NodeKind::Event,
        NodeKind::Entity,
        NodeKind::Concept,
        NodeKind::Category,
    ] {
        println!("  {:<10}{:>7.2}%", kind.name(), kinds.avg[kind.index()]);
    }
    println!("\n(the paper's ordering: topic > event > entity > concept > category)");
}

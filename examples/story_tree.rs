//! Story-tree formation (paper §4, Figure 5) on a hand-built trade-war-style
//! story: retrieval of correlated events, eq. (8)–(11) similarity,
//! hierarchical clustering, time-ordered branches.
//!
//! ```text
//! cargo run --release --example story_tree
//! ```

use giant::apps::storytree::{
    build_story_tree, retrieve_related, EventSimilarity, StoryEvent, StoryTreeConfig,
};
use giant::ontology::{NodeKind, Ontology, OntologySnapshot, Phrase};
use giant::text::embedding::{PhraseEncoder, SgnsConfig, WordEmbeddings};
use giant::text::{TfIdf, Vocab};

fn main() {
    // Entities and events of a two-thread story (trade dispute + a concert
    // tour that shares a country entity but not the theme).
    let mut ontology = Ontology::new();
    let usa = ontology.add_node(NodeKind::Entity, Phrase::from_text("astora"), 1.0);
    let chn = ontology.add_node(NodeKind::Entity, Phrase::from_text("veymar"), 1.0);
    let band = ontology.add_node(NodeKind::Entity, Phrase::from_text("the lorex"), 1.0);

    let raw = [
        ("astora raises tariffs on veymar goods", "raises", vec![usa, chn], 2u32),
        ("veymar imposes new tariffs on astora products", "imposes", vec![chn, usa], 5),
        ("astora and veymar trade consultations joint statement", "state", vec![usa, chn], 12),
        ("astora raises tariffs again after talks stall", "raises", vec![usa, chn], 19),
        ("the lorex announces world tour in astora", "announces", vec![band, usa], 8),
    ];

    // Word vectors: train SGNS on sentences echoing the two themes (stands
    // in for the paper's BERT phrase encoder).
    let mut vocab = Vocab::new();
    let mut sents = Vec::new();
    for _ in 0..60 {
        for s in [
            "astora veymar tariffs trade war imposes raises talks goods",
            "the lorex tour concert announces stage album tickets",
        ] {
            sents.push(
                giant::text::tokenize(s)
                    .iter()
                    .map(|t| vocab.intern(t))
                    .collect::<Vec<_>>(),
            );
        }
    }
    let encoder = PhraseEncoder::new(WordEmbeddings::train(
        &sents,
        vocab.len(),
        &SgnsConfig::default(),
    ));
    let mut tfidf = TfIdf::new();
    tfidf.add_doc(["astora", "veymar", "tariffs"]);
    tfidf.add_doc(["the", "lorex", "tour"]);

    let mut events = Vec::new();
    for (text, trig, ents, day) in raw {
        let node = ontology.add_event(Phrase::from_text(text), 1.0, day);
        events.push(StoryEvent {
            node,
            tokens: giant::text::tokenize(text),
            trigger: Some(trig.to_owned()),
            entities: ents,
            day,
        });
    }

    // Freeze the hand-built ontology into the read-optimized snapshot the
    // serving layer uses.
    let snapshot = OntologySnapshot::freeze(&ontology);
    let sim = EventSimilarity {
        encoder: &encoder,
        vocab: &vocab,
        tfidf: &tfidf,
        snapshot: &snapshot,
    };
    let seed = events[0].clone();
    let related: Vec<StoryEvent> = retrieve_related(&seed, &events)
        .into_iter()
        .cloned()
        .collect();
    println!(
        "seed: {:?}\nretrieved {} correlated events",
        seed.tokens.join(" "),
        related.len()
    );
    let tree = build_story_tree(seed, related, &sim, &StoryTreeConfig::default());
    println!("\n{}", tree.render());
    println!(
        "{} events in {} branches — the concert thread should sit apart from the tariff thread",
        tree.n_events(),
        tree.branches.len()
    );
}

//! Quickstart: generate a synthetic click log, train the GCTSP models, build
//! the Attention Ontology, and poke at it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use giant::ontology::NodeKind;

fn main() {
    // 1. A small synthetic world: categories, entities, concepts, events,
    //    topics, plus a corpus and a click log with ground truth.
    println!("generating world + click log ...");
    let setup = GiantSetup::generate(WorldConfig::tiny());
    println!(
        "  {} concepts, {} events, {} entities, {} docs, {} click records",
        setup.world.concepts.len(),
        setup.world.events.len(),
        setup.world.entities.len(),
        setup.corpus.docs.len(),
        setup.log.records.len()
    );

    // 2. Train GCTSP-Net (binary phrase model + 4-class role model) on the
    //    automatically constructed CMD/EMD datasets.
    println!("training GCTSP-Net models ...");
    let (models, (phrase_loss, role_loss)) = setup.train_models(&ModelTrainConfig::small());
    println!("  phrase-model loss {phrase_loss:.4}, role-model loss {role_loss:.4}");

    // 3. Run the full pipeline: Algorithm 1 (mine) + §3.2 (link).
    println!("running the GIANT pipeline ...");
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    let stats = output.ontology.stats();
    println!("  nodes by kind:");
    for kind in NodeKind::ALL {
        println!("    {:<10}{}", kind.name(), stats.nodes_by_kind[kind.index()]);
    }
    println!(
        "  edges: isA {}, involve {}, correlate {}",
        stats.edges_by_kind[0], stats.edges_by_kind[1], stats.edges_by_kind[2]
    );

    // 4. Walk the ontology: show a mined concept with its instances.
    for m in output.mined_of_kind(NodeKind::Concept).iter().take(3) {
        let children = output.ontology.children_of(m.node);
        let instances: Vec<String> = children
            .iter()
            .filter(|&&c| output.ontology.node(c).kind == NodeKind::Entity)
            .map(|&c| output.ontology.node(c).phrase.surface())
            .collect();
        println!(
            "  concept {:?} (support {:.0}) -> instances {:?}",
            m.tokens.join(" "),
            m.support,
            instances
        );
    }

    // 5. Round-trip the ontology through the text format.
    let dump = giant::ontology::io::dump(&output.ontology);
    let reloaded = giant::ontology::io::load(&dump).expect("round trip");
    assert_eq!(reloaded.stats(), stats);
    println!("ontology round-trips through {} bytes of text", dump.len());
}

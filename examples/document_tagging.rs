//! Document tagging (paper §4): build a small ontology via the pipeline,
//! publish it behind the versioned `OntologyService`, then tag fresh
//! documents with concepts and events they never mention verbatim — the
//! "user-centered text understanding" the paper deploys.
//!
//! ```text
//! cargo run --release --example document_tagging
//! ```

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig};
use giant::apps::serving::{ServeRequest, ServeResponse};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use giant::ontology::NodeKind;

fn main() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    println!(
        "pipeline mined {} concepts, {} events",
        output.mined_of_kind(NodeKind::Concept).len(),
        output.mined_of_kind(NodeKind::Event).len()
    );

    // One call assembles and publishes the whole serving stack: frozen
    // snapshot, trained encoder/TF-IDF/Duet, tagging metadata.
    let serving = build_serving(&setup, &output);
    let service = &serving.service;
    let snapshot = &serving.snapshot;
    println!("serving version {}", service.version());

    let tag = |title: String, sentences: Vec<String>| {
        let ServeResponse::TagDocument(tags) = service
            .serve(&ServeRequest::TagDocument { title, sentences })
            .expect("TagDocument cannot fail")
        else {
            unreachable!("TagDocument answered with a different kind")
        };
        tags
    };

    // Tag a document that names entities but never the concept phrase —
    // the tagger must infer the concept from the entities' isA parents.
    let sample_concept = output
        .mined_of_kind(NodeKind::Concept)
        .into_iter()
        .find(|m| !snapshot.children(m.node).is_empty());
    if let Some(m) = sample_concept {
        let children: Vec<String> = snapshot
            .children(m.node)
            .iter()
            .filter(|&&c| snapshot.node(c).kind == NodeKind::Entity)
            .map(|&c| snapshot.node(c).phrase.surface())
            .collect();
        if children.len() >= 2 {
            let title = format!("{} and {} compared head to head", children[0], children[1]);
            let body = vec![format!("{} edges out {}", children[0], children[1])];
            let tags = tag(title.clone(), body);
            println!("\ndoc: {title:?}");
            println!("  expected concept: {:?}", m.tokens.join(" "));
            for (c, score) in &tags.concepts {
                println!(
                    "  tagged concept: {:?} (score {score:.3})",
                    snapshot.node(*c).phrase.surface()
                );
            }
        }
    }

    // Tag an event document.
    if let Some(ev) = output.mined_of_kind(NodeKind::Event).first() {
        let title = format!("breaking : {}", ev.tokens.join(" "));
        let tags = tag(title.clone(), vec!["details are emerging".to_owned()]);
        println!("\ndoc: {title:?}");
        for (e, score) in &tags.events {
            println!(
                "  tagged event: {:?} (lcs {score:.2})",
                snapshot.node(*e).phrase.surface()
            );
        }
    }
}

//! Document tagging (paper §4): build a small ontology via the pipeline,
//! then tag fresh documents with concepts and events they never mention
//! verbatim — the "user-centered text understanding" the paper deploys.
//!
//! ```text
//! cargo run --release --example document_tagging
//! ```

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::apps::duet::{DuetConfig, DuetMatcher};
use giant::apps::tagging::{DocumentTagger, TaggingConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use giant::ontology::{NodeId, NodeKind};
use giant::text::embedding::{PhraseEncoder, SgnsConfig, WordEmbeddings};
use giant::text::{TfIdf, Vocab};
use std::collections::HashMap;

fn main() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    println!(
        "pipeline mined {} concepts, {} events",
        output.mined_of_kind(NodeKind::Concept).len(),
        output.mined_of_kind(NodeKind::Event).len()
    );

    // Supporting resources for the tagger.
    let mut vocab = Vocab::new();
    let sents = setup.corpus.embedding_corpus(&mut vocab);
    let encoder = PhraseEncoder::new(WordEmbeddings::train(
        &sents,
        vocab.len(),
        &SgnsConfig::default(),
    ));
    let mut tfidf = TfIdf::new();
    for d in &setup.corpus.docs {
        let toks = giant::text::tokenize(&d.title);
        tfidf.add_doc(toks.iter().map(|s| s.as_str()));
    }
    let mut concept_contexts: HashMap<NodeId, Vec<String>> = HashMap::new();
    for m in output.mined_of_kind(NodeKind::Concept) {
        let mut ctx = m.tokens.clone();
        for t in &m.top_titles {
            ctx.extend(giant::text::tokenize(t));
        }
        concept_contexts.insert(m.node, ctx);
    }
    let event_phrases: Vec<(NodeId, Vec<String>)> = output
        .mined_of_kind(NodeKind::Event)
        .iter()
        .map(|m| (m.node, m.tokens.clone()))
        .collect();
    // A quick Duet matcher trained on separable features.
    let mut examples = Vec::new();
    for _ in 0..20 {
        examples.push((vec![0.95, 0.95, 0.9, 0.6, 0.5, 1.0], true));
        examples.push((vec![0.1, 0.15, 0.0, 0.1, 0.3, 0.0], false));
    }
    let duet = DuetMatcher::train(&examples, DuetConfig::default());

    let tagger = DocumentTagger {
        ontology: &output.ontology,
        entity_nodes: &output.entity_nodes,
        concept_contexts: &concept_contexts,
        event_phrases: &event_phrases,
        tfidf: &tfidf,
        duet: &duet,
        encoder: &encoder,
        vocab: &vocab,
        config: TaggingConfig::default(),
    };

    // Tag a document that names entities but never the concept phrase —
    // the tagger must infer the concept from the entities' isA parents.
    let sample_concept = output
        .mined_of_kind(NodeKind::Concept)
        .into_iter()
        .find(|m| !output.ontology.children_of(m.node).is_empty());
    if let Some(m) = sample_concept {
        let children: Vec<String> = output
            .ontology
            .children_of(m.node)
            .iter()
            .filter(|&&c| output.ontology.node(c).kind == NodeKind::Entity)
            .map(|&c| output.ontology.node(c).phrase.surface())
            .collect();
        if children.len() >= 2 {
            let title = format!("{} and {} compared head to head", children[0], children[1]);
            let body = vec![format!("{} edges out {}", children[0], children[1])];
            let tags = tagger.tag(&title, &body);
            println!("\ndoc: {title:?}");
            println!("  expected concept: {:?}", m.tokens.join(" "));
            for (c, score) in &tags.concepts {
                println!(
                    "  tagged concept: {:?} (score {score:.3})",
                    output.ontology.node(*c).phrase.surface()
                );
            }
        }
    }

    // Tag an event document.
    if let Some(ev) = output.mined_of_kind(NodeKind::Event).first() {
        let title = format!("breaking : {}", ev.tokens.join(" "));
        let tags = tagger.tag(&title, &["details are emerging".to_owned()]);
        println!("\ndoc: {title:?}");
        for (e, score) in &tags.events {
            println!(
                "  tagged event: {:?} (lcs {score:.2})",
                output.ontology.node(*e).phrase.surface()
            );
        }
    }
}

//! One cluster end to end: QTIG construction (Algorithm 2), R-GCN node
//! classification, ATSP decoding (Figure 3's worked example).
//!
//! ```text
//! cargo run --release --example concept_mining
//! ```

use giant::mining::gctsp::{GctspConfig, GctspNet};
use giant::mining::{build_cluster_qtig, decode_tokens};
use giant::text::Annotator;

fn main() {
    // A miniature of Figure 3: one query, three titles, the concept phrase
    // scattered across them with insertions and reorderings.
    let queries = vec!["what are the miyazaki animated films".to_owned()];
    let titles = vec![
        "review of miyazaki animated films".to_owned(),
        "the famous animated films of miyazaki".to_owned(),
        "what are the classic miyazaki movies ?".to_owned(),
    ];
    let annotator = Annotator::default();
    let qtig = build_cluster_qtig(&annotator, &queries, &titles);
    println!(
        "QTIG: {} nodes, {} directed edges from {} inputs",
        qtig.n_nodes(),
        qtig.edges.len(),
        qtig.inputs.len()
    );
    for (i, node) in qtig.nodes.iter().enumerate().take(12) {
        println!(
            "  node {i:>2}  {:<12} pos={:?} ner={:?} stop={} seq={}",
            node.token, node.pos, node.ner, node.is_stop, node.seq_id
        );
    }

    // Train a small binary model on a few synthetic wrapper clusters so it
    // learns "content tokens in, wrappers out".
    let train: Vec<(Vec<String>, Vec<String>, Vec<String>)> = [
        ("electric cars", "best electric cars", "top 10 electric cars of 2018"),
        ("budget phones", "what are the budget phones", "budget phones buying guide"),
        ("pop singers", "pop singers list", "the famous pop singers of 2018"),
        ("marathon runners", "best marathon runners", "review of marathon runners"),
    ]
    .iter()
    .map(|(gold, q, t)| {
        (
            giant::text::tokenize(gold),
            vec![q.to_string()],
            vec![t.to_string()],
        )
    })
    .collect();
    let examples: Vec<(giant::mining::Qtig, Vec<usize>)> = train
        .iter()
        .map(|(gold, qs, ts)| {
            let g = build_cluster_qtig(&annotator, qs, ts);
            let labels = g.binary_labels(gold);
            (g, labels)
        })
        .collect();
    let mut net = GctspNet::new(GctspConfig {
        hidden: 16,
        layers: 3,
        n_bases: 3,
        feat_dim: 6,
        epochs: 40,
        ..GctspConfig::default()
    });
    let loss = net.train(&examples);
    println!("\ntrained binary GCTSP-Net, final loss {loss:.4}");

    // Classify + decode the miyazaki cluster.
    let positives = net.predict_positive_nodes(&qtig);
    let positive_tokens: Vec<&str> = positives
        .iter()
        .map(|&i| qtig.nodes[i].token.as_str())
        .collect();
    println!("positive nodes: {positive_tokens:?}");
    let phrase = decode_tokens(&qtig, &positives);
    println!("ATSP-decoded phrase: {:?}", phrase.join(" "));
}

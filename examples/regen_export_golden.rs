//! Regenerates `tests/golden/export_seed42.json`: the schema-checked
//! interchange JSON of the seed-42 tiny-world ontology, as
//! `giant-export --world tiny --seed 42` emits it. The schema-interchange
//! suite asserts this file byte-for-byte and that importing it reproduces
//! `tests/golden/ontology_seed42.txt` exactly — pinning the JSON format
//! itself, not just the round-trip property.
//!
//! ```text
//! cargo run --release --example regen_export_golden
//! ```

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::schema::{export_json, Schema};

fn main() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &Default::default());
    let json = export_json(&output.ontology, &Schema::builtin()).expect("export");
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/export_seed42.json");
    std::fs::write(&path, &json).expect("write golden");
    println!("wrote {} ({} bytes)", path.display(), json.len());
    for l in json.lines().take(6) {
        println!("  {l}");
    }
}

//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the substrates the pipeline composes.
//!
//! Determinism: the vendored proptest runner derives every test's input
//! stream from a fixed workspace seed (`PROPTEST_RNG_SEED` overrides it,
//! `PROPTEST_CASES` overrides the case count), so CI runs are exactly
//! reproducible — a failure report's case index replays by itself.

use giant::mining::qtig::Qtig;
use giant::ontology::{NodeKind, Ontology, Phrase};
use giant::text::Annotator;
use giant::tsp::{held_karp_path, lin_kernighan_path, solve_path, CostMatrix};
use proptest::prelude::*;

fn arb_cost_matrix(n: usize) -> impl Strategy<Value = CostMatrix> {
    proptest::collection::vec(1.0f64..100.0, n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i] = 0.0;
        }
        CostMatrix::from_rows(v.chunks(n).map(|c| c.to_vec()).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heuristic never beats the exact solver, and both return valid
    /// permutations with matching reported costs.
    #[test]
    fn heuristic_dominated_by_exact(costs in arb_cost_matrix(8)) {
        let (exact_cost, exact_path) = held_karp_path(&costs, 0, 7);
        let (heur_cost, heur_path) = lin_kernighan_path(&costs, 0, 7);
        prop_assert!(heur_cost + 1e-9 >= exact_cost);
        for path in [&exact_path, &heur_path] {
            let mut sorted = path.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
        prop_assert!((costs.path_cost(&exact_path) - exact_cost).abs() < 1e-9);
        prop_assert!((costs.path_cost(&heur_path) - heur_cost).abs() < 1e-9);
        // The dispatcher agrees with the exact solver in the small regime.
        let (dispatch_cost, _) = solve_path(&costs, 0, 7);
        prop_assert!((dispatch_cost - exact_cost).abs() < 1e-9);
    }

    /// QTIG construction on arbitrary word soup: node/edge invariants.
    #[test]
    fn qtig_invariants(words in proptest::collection::vec("[a-z]{1,8}", 1..24)) {
        let ann = Annotator::default();
        let half = words.len() / 2;
        let q = words[..half.max(1)].join(" ");
        let t = words[half.max(1).min(words.len() - 1)..].join(" ");
        let inputs = vec![ann.annotate(&q), ann.annotate(&t)];
        let g = Qtig::build(&inputs);
        // sos/eos present; every node token unique.
        prop_assert!(g.n_nodes() >= 2);
        let mut tokens: Vec<&str> = g.nodes.iter().map(|n| n.token.as_str()).collect();
        tokens.sort_unstable();
        let before = tokens.len();
        tokens.dedup();
        prop_assert_eq!(tokens.len(), before, "duplicate token nodes");
        // No duplicate directed edges; all endpoints in range.
        let mut seen = std::collections::HashSet::new();
        for &(s, d, _) in &g.edges {
            prop_assert!(s < g.n_nodes() && d < g.n_nodes());
            prop_assert!(seen.insert((s, d)), "duplicate directed edge");
            prop_assert!(s != d, "self loop");
        }
        // Every input sequence starts at sos and ends at eos.
        for seq in &g.inputs {
            prop_assert_eq!(*seq.first().unwrap(), giant::mining::qtig::SOS);
            prop_assert_eq!(*seq.last().unwrap(), giant::mining::qtig::EOS);
        }
    }

    /// The ontology never accepts an isA cycle, no matter the insertion
    /// order, and node counts stay consistent.
    #[test]
    fn ontology_isa_stays_acyclic(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..60)) {
        let mut o = Ontology::new();
        let nodes: Vec<_> = (0..12)
            .map(|i| o.add_node(NodeKind::Concept, Phrase::from_text(&format!("c{i}")), 1.0))
            .collect();
        for (a, b) in edges {
            let _ = o.add_is_a(nodes[a], nodes[b], 1.0); // cycles rejected, fine
        }
        // Acyclicity: no node is its own ancestor.
        for &n in &nodes {
            let ancestors = o.ancestors(n);
            prop_assert!(ancestors.iter().all(|(a, _)| *a != n), "cycle via {n:?}");
        }
        // IO round trip preserves stats under arbitrary edge sets.
        let dumped = giant::ontology::io::dump(&o);
        let loaded = giant::ontology::io::load(&dumped).unwrap();
        prop_assert_eq!(loaded.stats(), o.stats());
    }

    /// Tokenize → join → tokenize is a fixed point (idempotent pipeline).
    #[test]
    fn tokenize_is_idempotent_on_join(text in "[a-zA-Z0-9,.!? ]{0,60}") {
        let once = giant::text::tokenize(&text);
        let twice = giant::text::tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    /// Phrase mining metrics stay in [0, 1] for arbitrary predictions.
    #[test]
    fn metrics_bounded(
        pred in proptest::collection::vec("[a-c]{1,2}", 0..6),
        gold in proptest::collection::vec("[a-c]{1,2}", 1..6),
    ) {
        let f1 = giant::baselines::token_f1(&pred, &gold);
        prop_assert!((0.0..=1.0).contains(&f1));
        let em = giant::baselines::exact_match(&pred, &gold);
        prop_assert!(em == 0.0 || em == 1.0);
        if em == 1.0 {
            prop_assert!((f1 - 1.0).abs() < 1e-12, "EM=1 implies F1=1");
        }
    }
}

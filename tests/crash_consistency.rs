//! Crash consistency of the durable ingestion loop: `kill -9` at any
//! instant, then `IncrementalDriver::restore_durable` (checkpoint + WAL
//! tail replay) converges **byte-identically** with the never-crashed
//! run.
//!
//! The harness drives `src/bin/wal_crash_child.rs` — a real child process
//! folding a deterministic corpus stream under WAL-backed durability —
//! and kills it two ways:
//!
//! * **armed crash points** (`GIANT_CRASH_POINT=<label>:<n>`):
//!   `std::process::abort()` at exact instants inside the durability
//!   machinery — mid-WAL-append (a genuinely torn frame on disk),
//!   mid-checkpoint-rename, between checkpoint and log rotation;
//! * **timing kills**: SIGKILL as soon as the child announces its k-th
//!   fold, landing at arbitrary instants of the following ingest.
//!
//! After each crash, a clean resume run recovers and folds the remaining
//! batches; its fingerprint (published version, fold count, one serving
//! probe, full ontology dump) must equal the reference run's byte for
//! byte — across all three [`giant::incr::SyncMode`]s and 1/2/4 mining
//! threads. WAL-level torn-tail/flipped-byte *unit* semantics (typed
//! errors, resume at last valid entry) live in `crates/incr/src/wal.rs`;
//! here the corruption test exercises the same path end-to-end through
//! `restore_durable`.
//!
//! Everything is release-gated (`--include-ignored` in CI): each child
//! invocation regenerates + retrains the tiny world, which is seconds in
//! release and minutes in debug.

use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Mutex, OnceLock};

const CHILD: &str = env!("CARGO_BIN_EXE_wal_crash_child");
const BATCHES: usize = 4;
const CHECKPOINT_EVERY: u64 = 2;

/// A scratch directory unique to one trial.
fn trial_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("giant-crash-consistency").join(tag);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir trial dir");
    dir
}

struct ChildOutcome {
    success: bool,
    stdout: String,
}

/// Runs the child to completion (or its armed abort), returning status +
/// captured stdout. `crash` arms `GIANT_CRASH_POINT`; the env var is
/// always cleared first so resume runs are clean.
#[allow(clippy::too_many_arguments)]
fn run_child(
    dir: &Path,
    emit: &Path,
    sync: &str,
    batches: usize,
    threads: usize,
    checkpoint_every: u64,
    extra: &[&str],
    crash: Option<&str>,
) -> ChildOutcome {
    let mut cmd = Command::new(CHILD);
    cmd.args([
        "--dir",
        dir.to_str().unwrap(),
        "--emit",
        emit.to_str().unwrap(),
        "--sync",
        sync,
        "--batches",
        &batches.to_string(),
        "--threads",
        &threads.to_string(),
        "--checkpoint-every",
        &checkpoint_every.to_string(),
    ])
    .args(extra)
    .env_remove("GIANT_CRASH_POINT")
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    if let Some(spec) = crash {
        cmd.env("GIANT_CRASH_POINT", spec);
    }
    let out = cmd.output().expect("spawn wal_crash_child");
    ChildOutcome {
        success: out.status.success(),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
    }
}

/// Runs the child and SIGKILLs it the moment it announces fold
/// `kill_after` — the literal `kill -9` the contract promises to survive.
/// Returns false if the child finished before the signal landed.
fn run_child_timing_kill(
    dir: &Path,
    sync: &str,
    batches: usize,
    threads: usize,
    kill_after: usize,
) -> bool {
    let emit = dir.join("never-written.txt");
    let mut child = Command::new(CHILD)
        .args([
            "--dir",
            dir.to_str().unwrap(),
            "--emit",
            emit.to_str().unwrap(),
            "--sync",
            sync,
            "--batches",
            &batches.to_string(),
            "--threads",
            &threads.to_string(),
            "--checkpoint-every",
            &CHECKPOINT_EVERY.to_string(),
        ])
        .env_remove("GIANT_CRASH_POINT")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn wal_crash_child");
    let marker = format!("FOLDED {kill_after}");
    let mut killed = false;
    let reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    for line in reader.lines() {
        let line = line.expect("child stdout");
        if line == marker {
            child.kill().expect("SIGKILL child");
            killed = true;
            break;
        }
    }
    child.wait().expect("reap child");
    killed
}

/// The never-crashed reference fingerprint, computed once per
/// (batches, threads) by the same binary and cached for the whole suite.
fn reference(batches: usize, threads: usize) -> String {
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&(batches, threads)) {
        return hit.clone();
    }
    let dir = trial_dir(&format!("reference-{batches}-{threads}"));
    let emit = dir.join("fingerprint.txt");
    let out = run_child(
        &dir,
        &emit,
        "strict",
        batches,
        threads,
        CHECKPOINT_EVERY,
        &["--reference"],
        None,
    );
    assert!(out.success, "reference run failed:\n{}", out.stdout);
    let fp = std::fs::read_to_string(&emit).expect("reference fingerprint");
    assert!(fp.contains("version"), "fingerprint looks empty");
    cache.lock().unwrap().insert((batches, threads), fp.clone());
    fp
}

/// One full trial: crash the durable run (armed spec or timing kill),
/// resume cleanly, byte-compare against the reference. Returns the
/// resume run's stdout for extra assertions.
fn crash_resume_compare(
    tag: &str,
    crash: Option<&str>,
    kill_after: Option<usize>,
    sync: &str,
    batches: usize,
    threads: usize,
) -> String {
    let dir = trial_dir(tag);
    let durable = dir.join("durable");
    let emit = dir.join("crashed.txt");
    let crashed = match kill_after {
        Some(k) => run_child_timing_kill(&durable, sync, batches, threads, k),
        None => {
            let out = run_child(
                &durable,
                &emit,
                sync,
                batches,
                threads,
                CHECKPOINT_EVERY,
                &[],
                crash,
            );
            // A spec whose label/count is never reached completes the
            // run; byte-compare that directly (still a valid trial).
            !out.success
        }
    };
    let emit = dir.join("resumed.txt");
    let resume = run_child(
        &durable,
        &emit,
        sync,
        batches,
        threads,
        CHECKPOINT_EVERY,
        &["--resume"],
        None,
    );
    assert!(
        resume.success,
        "resume after crash ({tag}, crashed={crashed}) failed:\n{}",
        resume.stdout
    );
    let recovered = std::fs::read_to_string(&emit).expect("resumed fingerprint");
    let expected = reference(batches, threads);
    assert_eq!(
        recovered, expected,
        "restore+replay diverged from the never-crashed run \
         (tag={tag}, sync={sync}, threads={threads}, crashed={crashed})"
    );
    std::fs::remove_dir_all(&dir).ok();
    resume.stdout
}

/// Every labeled instant the durability machinery can die at, each under
/// a different sync mode: mid-WAL-append (torn frame), pre/post the
/// checkpoint's atomic rename, between checkpoint and rotation, pre/post
/// the rotation's own rename.
#[test]
#[cfg_attr(debug_assertions, ignore = "child-process fault injection; run in release")]
fn labeled_crash_points_recover_byte_identically() {
    let specs: &[(&str, &str)] = &[
        ("wal.append.mid:1", "strict"),
        ("wal.append.mid:2", "none"),
        ("wal.append.pre-sync:1", "batched:2"),
        ("driver.post-append:1", "strict"),
        ("driver.pre-checkpoint:1", "none"),
        // write_file #1 is the enable-durability baseline checkpoint,
        // #2 the first periodic one.
        ("binio.write_file.pre-rename:1", "strict"),
        ("binio.write_file.pre-rename:2", "strict"),
        ("binio.write_file.post-rename:2", "batched:2"),
        ("driver.pre-rotate:1", "strict"),
        ("wal.rotate.pre-rename:1", "none"),
        ("wal.rotate.post-rename:1", "strict"),
        ("driver.post-rotate:1", "batched:2"),
    ];
    for (spec, sync) in specs {
        let tag = format!("label-{}", spec.replace([':', '.'], "-"));
        crash_resume_compare(&tag, Some(spec), None, sync, BATCHES, 1);
    }
}

/// A corrupt (not torn) WAL suffix: flip a byte inside the final
/// *complete* entry of a crashed log. Recovery must drop exactly the
/// corrupt suffix, report it, resume at the last valid entry — and the
/// re-ingested tail still converges byte-identically.
#[test]
#[cfg_attr(debug_assertions, ignore = "child-process fault injection; run in release")]
fn corrupt_wal_suffix_is_dropped_reported_and_reconverges() {
    let dir = trial_dir("flip");
    let durable = dir.join("durable");
    // checkpoint_every > batches: the WAL keeps every entry, no rotation.
    let out = run_child(
        &durable,
        &dir.join("first.txt"),
        "strict",
        BATCHES,
        1,
        99,
        &[],
        None,
    );
    assert!(out.success, "durable run failed:\n{}", out.stdout);
    let wal_path = durable.join("ingest.wal");
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    let n = bytes.len();
    assert!(n > 64, "wal unexpectedly small");
    bytes[n - 3] ^= 0x20; // inside the last entry's payload
    std::fs::write(&wal_path, &bytes).expect("write corrupted wal");

    let emit = dir.join("resumed.txt");
    let resume = run_child(&durable, &emit, "strict", BATCHES, 1, 99, &["--resume"], None);
    assert!(resume.success, "resume over corrupt wal failed:\n{}", resume.stdout);
    assert!(
        resume.stdout.contains("truncated=true"),
        "recovery must report the dropped suffix, got:\n{}",
        resume.stdout
    );
    let recovered = std::fs::read_to_string(&emit).expect("resumed fingerprint");
    assert_eq!(
        recovered,
        reference(BATCHES, 1),
        "recovery from a corrupt suffix diverged"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Extracts the child's `WALMETRICS ...` line.
fn wal_metrics_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("WALMETRICS "))
        .unwrap_or_else(|| panic!("child printed no WALMETRICS line:\n{stdout}"))
}

/// The `wal.*` obs counters against the harness's own ground truth, on a
/// clean durable run: 5 batches = bootstrap + 4 ingests, so 4 appends,
/// 4 strict fsyncs, and a rotation every 2 folds; nothing replayed or
/// truncated (`Wal::create`, never reopened).
#[test]
#[cfg_attr(debug_assertions, ignore = "child-process fault injection; run in release")]
fn wal_metrics_match_the_clean_run_ground_truth() {
    let dir = trial_dir("metrics-clean");
    let out = run_child(
        &dir.join("durable"),
        &dir.join("fp.txt"),
        "strict",
        5,
        1,
        2,
        &[],
        None,
    );
    assert!(out.success, "durable run failed:\n{}", out.stdout);
    assert_eq!(
        wal_metrics_line(&out.stdout),
        "WALMETRICS appends=4 syncs=4 rotations=2 replayed=0 truncations=0"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The same counters across a genuine torn-frame crash: the crashed run
/// dies mid-append of its second entry, so the resume's `Wal::recover`
/// decodes 1 entry, truncates the torn tail, replays the entry, rotates
/// (post-replay checkpoint), then ingests the two remaining batches.
#[test]
#[cfg_attr(debug_assertions, ignore = "child-process fault injection; run in release")]
fn wal_metrics_match_the_crash_resume_ground_truth() {
    let dir = trial_dir("metrics-crash");
    let durable = dir.join("durable");
    // checkpoint_every=99: no rotation before the crash, so the resume
    // sees exactly what the appends left behind.
    let out = run_child(
        &durable,
        &dir.join("crashed.txt"),
        "strict",
        4,
        1,
        99,
        &[],
        Some("wal.append.mid:2"),
    );
    assert!(!out.success, "armed crash point must abort the child");
    let resume = run_child(
        &durable,
        &dir.join("resumed.txt"),
        "strict",
        4,
        1,
        99,
        &["--resume"],
        None,
    );
    assert!(resume.success, "resume failed:\n{}", resume.stdout);
    assert_eq!(
        wal_metrics_line(&resume.stdout),
        "WALMETRICS appends=2 syncs=2 rotations=1 replayed=1 truncations=1"
    );
    let recovered = std::fs::read_to_string(dir.join("resumed.txt")).expect("fingerprint");
    assert_eq!(recovered, reference(4, 1), "metrics trial still converges");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized (kill point, sync mode, thread count, batch count):
    /// armed crash points and literal timing SIGKILLs, at 1/2/4 mining
    /// threads, all three sync modes, varying stream splits.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "child-process fault injection; run in release")]
    fn randomized_kill_points_converge(
        kill_choice in 0usize..8,
        sync_choice in 0usize..3,
        threads_choice in 0usize..3,
        batches in 3usize..6,
    ) {
        let sync = ["strict", "batched:2", "none"][sync_choice];
        let threads = [1usize, 2, 4][threads_choice];
        let labels = [
            "wal.append.mid:1",
            "wal.append.mid:2",
            "wal.append.pre-sync:2",
            "driver.post-append:2",
            "binio.write_file.pre-rename:2",
            "driver.pre-rotate:1",
        ];
        let tag = format!(
            "prop-{kill_choice}-{sync_choice}-{threads}-{batches}"
        );
        if kill_choice < labels.len() {
            crash_resume_compare(&tag, Some(labels[kill_choice]), None, sync, batches, threads);
        } else {
            // Timing kill right after fold 1 or 2 completes.
            let k = kill_choice - labels.len() + 1;
            crash_resume_compare(&tag, None, Some(k.min(batches - 1)), sync, batches, threads);
        }
    }
}

//! The schema + interchange contract (DESIGN.md §12), end to end:
//!
//! * the builtin GIANT schema validates what the pipeline, serving and
//!   incremental stacks actually build — with zero rejections on clean
//!   streams;
//! * `dump(import_json(export_json(o))) == dump(o)` **byte-identical**,
//!   in-process, through the committed golden, and through real
//!   `giant-export` / `giant-import` child processes;
//! * the schema-off paths are byte-identical to the pre-schema repo
//!   (seed-42 goldens, 1/2/4 threads);
//! * schema-checked ingestion rejects invalid `DeltaBatch` items with
//!   typed per-item errors while the accepted-path fold stays
//!   byte-identical to the unvalidated run;
//! * malformed / truncated / type-confused JSON yields typed errors,
//!   never a panic (the `wire_fuzz` discipline);
//! * the `ExportSubgraph` wire request is gated off by default and
//!   byte-identical to the in-process export when enabled.
//!
//! Tests marked `#[ignore]` re-run whole pipelines several times; CI's
//! release step runs them via `-- --include-ignored`.

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig};
use giant::apps::incremental::IncrementalDriver;
use giant::apps::serving::{OntologyService, ServeError, ServeRequest, ServeResponse};
use giant::data::WorldConfig;
use giant::incr::{BatchItem, ClickEvent, IncrementalState, RejectReason};
use giant::mining::pipeline::DocRecord;
use giant::mining::{GiantConfig, GiantOutput};
use giant::net::{NetClient, Server, ServerConfig};
use giant::ontology::{io, NodeId, OntologySnapshot};
use giant::schema::{export_json, import_json, Schema, Validator};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

mod common;

const ONTOLOGY_GOLDEN: &str = include_str!("golden/ontology_seed42.txt");
const SERVING_GOLDEN: &str = include_str!("golden/serving_seed42.txt");
const EXPORT_GOLDEN: &str = include_str!("golden/export_seed42.json");

/// The shared seed-42 tiny world: pipeline output + published serving
/// stack, built once per test binary.
struct Fixture {
    output: GiantOutput,
    service: Arc<OntologyService>,
    snapshot: Arc<OntologySnapshot>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let setup = GiantSetup::generate(WorldConfig::tiny());
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let output = setup.run_pipeline(&models, &GiantConfig::default());
        let serving = build_serving(&setup, &output);
        Fixture {
            output,
            service: Arc::new(serving.service),
            snapshot: serving.snapshot,
        }
    })
}

// ---------------------------------------------------------------------------
// The builtin schema describes what the stack actually builds.

#[test]
fn builtin_schema_validates_the_pipeline_ontology() {
    let f = fixture();
    let schema = Schema::builtin();
    if let Err(violations) = Validator::new(&schema).validate(&f.output.ontology) {
        panic!(
            "builtin schema rejected the pipeline's own output: {} violations, first: {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn frame_export_covers_the_served_snapshot() {
    // The serving-layer export runs every node and edge of the frozen
    // snapshot through the builtin schema — it succeeding at all is the
    // serving half of the validation claim.
    let f = fixture();
    let frame = f.service.frame();
    let ServeResponse::ExportSubgraph(json) = frame
        .serve(&ServeRequest::ExportSubgraph { root: None })
        .expect("full frame export must pass the builtin schema")
    else {
        panic!("ExportSubgraph answered with a different kind")
    };
    // The frame export walks the snapshot's per-kind adjacency, so its
    // edge *order* may differ from `Ontology::edges_iter`; the edge *set*
    // and all nodes must match the direct export exactly.
    let direct = export_json(&f.output.ontology, &Schema::builtin()).expect("export");
    let sorted = |s: &str| {
        let mut lines: Vec<&str> = s.lines().collect();
        lines.sort_unstable();
        lines.join("\n")
    };
    assert_eq!(
        sorted(&json),
        sorted(&direct),
        "frame export and direct export disagree on content"
    );

    // A rooted export is the isA closure: strictly smaller here, every
    // node id it names also present in the full export.
    let root = f
        .output
        .category_nodes
        .values()
        .min_by_key(|n| n.0)
        .copied()
        .expect("tiny world has categories");
    let ServeResponse::ExportSubgraph(sub) = frame
        .serve(&ServeRequest::ExportSubgraph { root: Some(root) })
        .expect("rooted export")
    else {
        panic!("ExportSubgraph answered with a different kind")
    };
    assert!(
        sub.len() < json.len(),
        "a rooted export must be a strict subgraph of the full one"
    );

    // Unknown roots are a typed error, not a panic or an empty document.
    let bogus = NodeId(f.snapshot.n_nodes() as u32);
    assert_eq!(
        frame
            .serve(&ServeRequest::ExportSubgraph { root: Some(bogus) })
            .unwrap_err(),
        ServeError::UnknownExportRoot(bogus)
    );
}

// ---------------------------------------------------------------------------
// Round-trip byte-identity and the pinned golden.

#[test]
fn export_import_round_trip_is_byte_identical() {
    let f = fixture();
    let schema = Schema::builtin();
    let before = io::dump(&f.output.ontology);
    let json = export_json(&f.output.ontology, &schema).expect("export");
    let back = import_json(&json, &schema).expect("own export must import");
    assert_eq!(
        before,
        io::dump(&back),
        "dump(import(export(o))) must equal dump(o) byte for byte"
    );
    // And the export itself is canonical: re-exporting the imported
    // ontology reproduces the same JSON bytes.
    assert_eq!(json, export_json(&back, &schema).expect("re-export"));
}

#[test]
fn export_golden_is_pinned_and_imports_back_to_the_ontology_golden() {
    // Two assertions pin the *format*, not just the round-trip property:
    // the seed-42 export reproduces the committed JSON byte-for-byte
    // (regen: `cargo run --release --example regen_export_golden`), and
    // importing that committed JSON reproduces the committed text dump.
    let f = fixture();
    let json = export_json(&f.output.ontology, &Schema::builtin()).expect("export");
    if json != EXPORT_GOLDEN {
        let diverged = common::first_divergence(EXPORT_GOLDEN, &json, "golden", "fresh");
        panic!("seed-42 export drifted from tests/golden/export_seed42.json; {diverged}");
    }
    let imported = import_json(EXPORT_GOLDEN, &Schema::builtin()).expect("golden must import");
    let dump = io::dump(&imported);
    if dump != ONTOLOGY_GOLDEN {
        let diverged = common::first_divergence(ONTOLOGY_GOLDEN, &dump, "golden", "imported");
        panic!("import(export_seed42.json) drifted from ontology_seed42.txt; {diverged}");
    }
}

/// The full `giant-export` → `giant-import` pipeline as real child
/// processes: the JSON crosses a process boundary and still reproduces
/// the committed seed-42 dump byte-for-byte.
#[test]
fn export_import_bins_round_trip_through_child_processes() {
    let dir = std::env::temp_dir().join("giant-schema-bin-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("export42.json");
    let dump_path = dir.join("import42.txt");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_giant_export"))
        .args(["--world", "tiny", "--seed", "42", "--out"])
        .arg(&json_path)
        .output()
        .expect("spawn giant_export");
    assert!(
        out.status.success(),
        "giant_export failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&json_path).unwrap(),
        EXPORT_GOLDEN,
        "child-process export drifted from the committed golden"
    );

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_giant_import"))
        .arg("--in")
        .arg(&json_path)
        .arg("--dump")
        .arg(&dump_path)
        .output()
        .expect("spawn giant_import");
    assert!(
        out.status.success(),
        "giant_import failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&dump_path).unwrap(),
        ONTOLOGY_GOLDEN,
        "child-process import drifted from the committed dump golden"
    );

    // A document that violates the schema exits 1 with a typed message —
    // no panic, no partial output.
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, EXPORT_GOLDEN.replacen("\"type\": \"category\"", "\"type\": \"starship\"", 1)).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_giant_import"))
        .arg("--in")
        .arg(&bad_path)
        .output()
        .expect("spawn giant_import");
    assert!(!out.status.success(), "schema-violating import must exit nonzero");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("import:"),
        "stderr must carry the typed import error"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// The schema-off fast paths are byte-identical to the pre-schema repo.

/// Heavy (three full pipeline runs): CI release runs it via
/// `--include-ignored`.
#[test]
#[ignore]
fn schema_off_pipeline_matches_the_golden_at_every_thread_count() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    for threads in [1, 2, 4] {
        let cfg = GiantConfig {
            threads,
            ..GiantConfig::default()
        };
        let dump = io::dump(&setup.run_pipeline(&models, &cfg).ontology);
        if dump != ONTOLOGY_GOLDEN {
            let diverged = common::first_divergence(
                ONTOLOGY_GOLDEN,
                &dump,
                "golden",
                &format!("threads={threads}"),
            );
            panic!("schema-off pipeline drifted from the seed-42 golden; {diverged}");
        }
    }
}

/// Heavy (two full incremental streams): CI release runs it via
/// `--include-ignored`.
#[test]
#[ignore]
fn schema_on_ingestion_is_byte_identical_to_schema_off_on_clean_batches() {
    let f = fixture();
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let stream = setup.corpus_stream();
    let batches = stream.split(&[0.55, 0.8]);
    let base = (*f.service.resources()).clone();

    let drive = |schema: Option<Arc<Schema>>| {
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let state = IncrementalState::new(
            stream.categories.clone(),
            stream.annotator.clone(),
            models,
            GiantConfig::default(),
        );
        let (mut driver, _) =
            IncrementalDriver::bootstrap(state, base.clone(), batches[0].clone(), 2).unwrap();
        driver.set_schema(schema);
        for batch in &batches[1..] {
            let report = driver.ingest(batch.clone()).unwrap();
            assert!(
                report.rejections.is_empty(),
                "clean pipeline batches must screen clean, got: {:?}",
                report.rejections
            );
        }
        driver
    };

    let with_schema = drive(Some(Arc::new(Schema::builtin())));
    let without = drive(None);
    assert_eq!(
        io::dump(with_schema.state().ontology()),
        io::dump(without.state().ontology()),
        "an armed schema must not change the accepted-path fold by one byte"
    );
    let probe = ServeRequest::Conceptualize {
        query: "best phones".into(),
    };
    assert_eq!(
        format!("{:?}", with_schema.service().serve(&probe)),
        format!("{:?}", without.service().serve(&probe)),
    );
}

// ---------------------------------------------------------------------------
// Schema-checked ingestion: typed per-item rejection, untouched fold.

#[test]
fn driver_screens_invalid_batch_items_and_folds_the_rest_identically() {
    let f = fixture();
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let stream = setup.corpus_stream();
    let batches = stream.split(&[0.7]);
    let base = (*f.service.resources()).clone();

    let bootstrap = |models| {
        let state = IncrementalState::new(
            stream.categories.clone(),
            stream.annotator.clone(),
            models,
            GiantConfig::default(),
        );
        IncrementalDriver::bootstrap(state, base.clone(), batches[0].clone(), 2)
            .unwrap()
            .0
    };

    // Screened driver: the clean delta plus three invalid riders.
    let mut screened = bootstrap(setup.train_models(&ModelTrainConfig::small()).0);
    screened.set_schema(Some(Arc::new(Schema::builtin())));
    let mut bad = batches[1].clone();
    let n_docs = bad.docs.len();
    let n_clicks = bad.clicks.len();
    let n_sessions = bad.sessions.len();
    bad.docs.push(DocRecord {
        id: screened.state().input().docs.len() + n_docs,
        title: String::new(), // violates the builtin schema: empty phrase
        sentences: vec!["orphaned body".into()],
        leaf_category: 0,
        day: 1,
    });
    bad.clicks.push(ClickEvent {
        query: "negative click".into(),
        doc: 0,
        count: -2.0,
    });
    bad.sessions.push(Vec::new());
    let report = screened.ingest(bad).unwrap();

    // Exactly the three riders rejected, each with its typed reason.
    assert_eq!(report.rejections.len(), 3, "got: {:?}", report.rejections);
    assert_eq!(report.rejections[0].item, BatchItem::Doc(n_docs));
    assert!(matches!(report.rejections[0].reason, RejectReason::EmptyTitle));
    assert_eq!(report.rejections[1].item, BatchItem::Click(n_clicks));
    assert!(matches!(report.rejections[1].reason, RejectReason::NegativeCount));
    assert_eq!(report.rejections[2].item, BatchItem::Session(n_sessions));
    assert!(matches!(report.rejections[2].reason, RejectReason::EmptySession));

    // Control driver folds the clean batch with no schema at all: the
    // screened driver's accepted path must be byte-identical to it.
    let mut control = bootstrap(setup.train_models(&ModelTrainConfig::small()).0);
    let clean_report = control.ingest(batches[1].clone()).unwrap();
    assert!(clean_report.rejections.is_empty());
    assert_eq!(
        io::dump(screened.state().ontology()),
        io::dump(control.state().ontology()),
        "rejected riders must leave the accepted-path fold untouched"
    );
    assert_eq!(screened.service().version(), control.service().version());
}

// ---------------------------------------------------------------------------
// Serving the import: the JSON is a real, servable ontology.

/// Heavy (full `Experiment` + corpus-wide tagging): CI release runs it
/// via `--include-ignored`.
#[test]
#[ignore]
fn imported_ontology_serves_byte_identically_to_the_golden() {
    use giant_bench::{serving_golden_dump, Experiment, ExperimentConfig};
    let mut exp = Experiment::build(ExperimentConfig {
        world: WorldConfig::tiny(),
        train: ModelTrainConfig::small(),
        ..ExperimentConfig::default()
    });
    // Round-trip the ontology through JSON in a fresh process-like swap:
    // everything served afterwards comes from the imported graph.
    let json = export_json(&exp.output.ontology, &Schema::builtin()).expect("export");
    exp.output.ontology = import_json(&json, &Schema::builtin()).expect("import");
    let serving = build_serving(&exp.setup, &exp.output);
    exp.service = serving.service;
    exp.snapshot = serving.snapshot;
    exp.encoder = serving.encoder;
    exp.vocab = serving.vocab;
    exp.tfidf = serving.tfidf;
    let dump = serving_golden_dump(&exp);
    if dump != SERVING_GOLDEN {
        let diverged = common::first_divergence(SERVING_GOLDEN, &dump, "golden", "imported");
        panic!("serving from the imported ontology drifted from the golden; {diverged}");
    }
}

// ---------------------------------------------------------------------------
// The network gate.

#[test]
fn wire_export_is_gated_off_by_default_and_identical_when_enabled() {
    use giant::net::wire::Reply;
    let f = fixture();

    // Default config: the request is refused with a typed error before
    // ever touching the admission queue.
    let server = Server::start(
        Arc::clone(&f.service),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("start server");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let reply = client
        .serve(ServeRequest::ExportSubgraph { root: None })
        .expect("call");
    assert!(
        matches!(reply, Reply::Err(ServeError::ExportDisabled)),
        "expected ExportDisabled, got {reply:?}"
    );
    // The connection survives the refusal: the next request answers.
    let reply = client
        .serve(ServeRequest::Conceptualize {
            query: "best phones".into(),
        })
        .expect("call after refusal");
    assert!(matches!(reply, Reply::Ok(_)), "connection must survive the gate");
    server.shutdown();

    // Opt-in config: the bytes over the wire are the in-process bytes.
    let server = Server::start(
        Arc::clone(&f.service),
        "127.0.0.1:0",
        ServerConfig {
            allow_export: true,
            ..ServerConfig::default()
        },
    )
    .expect("start export-enabled server");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let reply = client
        .serve(ServeRequest::ExportSubgraph { root: None })
        .expect("call");
    let Reply::Ok(ServeResponse::ExportSubgraph(wire_json)) = reply else {
        panic!("expected an export reply, got {reply:?}")
    };
    let ServeResponse::ExportSubgraph(local_json) = f
        .service
        .serve(&ServeRequest::ExportSubgraph { root: None })
        .expect("in-process export")
    else {
        panic!("in-process export answered with a different kind")
    };
    assert_eq!(wire_json, local_json, "wire export must be byte-identical");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Hostile documents: typed errors, never panics (wire_fuzz discipline).

#[test]
fn type_confused_documents_fail_typed() {
    // Each mutation breaks the golden document one way; import must
    // return Err — the *kind* of error is pinned by the interchange unit
    // tests, here we prove the end-to-end path stays typed.
    let schema = Schema::builtin();
    let mutations: Vec<String> = vec![
        EXPORT_GOLDEN.replacen("\"type\": \"category\"", "\"type\": \"starship\"", 1),
        EXPORT_GOLDEN.replacen("\"support\": ", "\"support\": \"lots\", \"x\": ", 1),
        EXPORT_GOLDEN.replacen("\"id\": \"n1\"", "\"id\": \"n0\"", 1),
        EXPORT_GOLDEN.replacen("\"source\": \"n", "\"source\": \"n9999", 1),
        EXPORT_GOLDEN.replacen("\"weight\": ", "\"weight\": null, \"w\": ", 1),
        EXPORT_GOLDEN.replacen("\"nodes\"", "\"knots\"", 1),
        EXPORT_GOLDEN.replacen("\"version\": 1", "\"version\": 2", 1),
    ];
    for (i, doc) in mutations.iter().enumerate() {
        assert_ne!(doc, EXPORT_GOLDEN, "mutation {i} did not apply");
        assert!(
            import_json(doc, &schema).is_err(),
            "mutation {i} must fail typed, not import"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the golden document anywhere yields a typed error (or,
    /// at the full length, the golden import) — never a panic.
    #[test]
    fn truncated_documents_never_panic(frac in 0.0f64..1.0) {
        let mut cut = (EXPORT_GOLDEN.len() as f64 * frac) as usize;
        while cut > 0 && !EXPORT_GOLDEN.is_char_boundary(cut) {
            cut -= 1;
        }
        let doc = &EXPORT_GOLDEN[..cut];
        prop_assert!(
            import_json(doc, &Schema::builtin()).is_err(),
            "a strict prefix of {} bytes must not import",
            cut
        );
    }

    /// Flipping any byte of the golden document never panics the
    /// importer: it fails typed, or — when the flip lands in a value and
    /// stays valid — imports an ontology that still round-trips.
    #[test]
    fn byte_flipped_documents_never_panic(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = EXPORT_GOLDEN.as_bytes().to_vec();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let Ok(doc) = String::from_utf8(bytes) else {
            return Ok(()); // not UTF-8 → never reaches the parser
        };
        if let Ok(o) = import_json(&doc, &Schema::builtin()) {
            // A surviving flip produced a valid document; it must still
            // obey the round-trip contract.
            let json = export_json(&o, &Schema::builtin()).expect("valid import must re-export");
            let back = import_json(&json, &Schema::builtin()).expect("re-import");
            prop_assert_eq!(io::dump(&o), io::dump(&back));
        }
    }

    /// Random tiny worlds round-trip byte-identically under the builtin
    /// schema. Heavy (one full pipeline per case): CI release runs it via
    /// `--include-ignored`.
    #[test]
    #[ignore]
    fn random_worlds_round_trip_byte_identically(seed in 0u64..1000) {
        let setup = GiantSetup::generate(WorldConfig {
            seed,
            ..WorldConfig::tiny()
        });
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let o = setup.run_pipeline(&models, &GiantConfig::default()).ontology;
        let schema = Schema::builtin();
        let json = export_json(&o, &schema).expect("pipeline output must export");
        let back = import_json(&json, &schema).expect("own export must import");
        prop_assert_eq!(io::dump(&o), io::dump(&back), "round trip drifted at seed {}", seed);
    }
}

//! Golden-snapshot regression: the seed-world pipeline must reproduce the
//! checked-in ontology dump **byte for byte**.
//!
//! `tests/golden/ontology_seed42.txt` pins the exact output of the pipeline
//! on the tiny world (small models, default config, seed 42). It was first
//! serialised from the sequential pre-refactor pipeline to prove the
//! plan→execute→merge refactor output-neutral, and regenerated when the
//! walk kernel gained its `min_mass` frontier prune (an intentional,
//! reviewed semantic change — see `giant_graph::WalkConfig::min_mass`).
//! Any behavioural drift — reordered nodes, changed supports, lost edges —
//! shows up here as a line-level diff, not as a statistics-level blur.
//!
//! To regenerate after an *intentional* output change:
//! `cargo run --release --example regen_golden` (then review the diff).

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;

mod common;

const GOLDEN: &str = include_str!("golden/ontology_seed42.txt");

#[test]
fn pipeline_reproduces_golden_ontology_byte_for_byte() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    let dump = giant::ontology::io::dump(&output.ontology);
    assert!(!dump.is_empty(), "pipeline produced an empty dump");
    if dump != GOLDEN {
        let mismatch = common::first_divergence(&dump, GOLDEN, "got", "golden");
        panic!(
            "pipeline output diverged from tests/golden/ontology_seed42.txt; \
             first divergence at {mismatch}\n\
             (if the change is intentional: cargo run --release --example regen_golden)"
        );
    }
    // The golden world also pins the load path: a reload of the golden text
    // must re-serialise to the same bytes.
    let reloaded = giant::ontology::io::load(GOLDEN).expect("golden snapshot loads");
    assert_eq!(
        giant::ontology::io::dump(&reloaded),
        GOLDEN,
        "golden snapshot is not a fixed point of dump∘load"
    );
}

//! Bit-level reproducibility: the whole stack — world generation, model
//! training, pipeline, ontology construction and its plain-text IO — must
//! produce *byte-identical* output for identical seeds. Statistics-level
//! equality (covered in `pipeline_end_to_end`) can mask nondeterministic
//! orderings that IO serialisation exposes; this suite closes that gap and
//! guards the vendored RNG stream, which is frozen by contract
//! (`vendor/rand`).

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;

/// One fresh end-to-end run, serialised.
fn pipeline_dump() -> String {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    giant::ontology::io::dump(&output.ontology)
}

#[test]
fn pipeline_ontology_serialization_is_byte_identical_across_runs() {
    let first = pipeline_dump();
    let second = pipeline_dump();
    assert!(!first.is_empty(), "dump produced no output");
    if first != second {
        // Locate the first divergent line to make failures actionable.
        let diverged = first
            .lines()
            .zip(second.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "line {}: {:?} vs {:?}",
                    i + 1,
                    first.lines().nth(i).unwrap(),
                    second.lines().nth(i).unwrap()
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "lengths differ: {} vs {} bytes",
                    first.len(),
                    second.len()
                )
            });
        panic!("pipeline output is not byte-identical across runs; first divergence at {diverged}");
    }
}

#[test]
fn serialization_round_trip_is_a_fixed_point() {
    // dump → load → dump must reproduce the exact byte stream: guarantees
    // the IO layer itself introduces no ordering or formatting drift.
    let first = pipeline_dump();
    let reloaded = giant::ontology::io::load(&first).expect("load of fresh dump");
    let second = giant::ontology::io::dump(&reloaded);
    assert_eq!(
        first, second,
        "dump→load→dump is not a fixed point; IO serialisation is lossy or order-unstable"
    );
}

//! Bit-level reproducibility: the whole stack — world generation, model
//! training, pipeline, ontology construction and its plain-text IO — must
//! produce *byte-identical* output for identical seeds. Statistics-level
//! equality (covered in `pipeline_end_to_end`) can mask nondeterministic
//! orderings that IO serialisation exposes; this suite closes that gap and
//! guards the vendored RNG stream, which is frozen by contract
//! (`vendor/rand`).

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;

mod common;

/// One fresh end-to-end run at `threads` mining workers, serialised.
fn pipeline_dump_with_threads(threads: usize) -> String {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let cfg = GiantConfig {
        threads,
        ..GiantConfig::default()
    };
    let output = setup.run_pipeline(&models, &cfg);
    giant::ontology::io::dump(&output.ontology)
}

/// One fresh end-to-end run, serialised.
fn pipeline_dump() -> String {
    pipeline_dump_with_threads(1)
}

#[test]
fn pipeline_ontology_serialization_is_byte_identical_across_runs() {
    let first = pipeline_dump();
    let second = pipeline_dump();
    assert!(!first.is_empty(), "dump produced no output");
    if first != second {
        let diverged = common::first_divergence(&first, &second, "run 1", "run 2");
        panic!("pipeline output is not byte-identical across runs; first divergence at {diverged}");
    }
}

#[test]
fn pipeline_output_is_thread_count_invariant() {
    // The plan → execute → merge architecture promises that worker count
    // changes wall-clock only, never the ontology. 7 is deliberately not a
    // power of two and not a divisor of the work-item count: uneven shard
    // boundaries must not leak into the merge. World generation and model
    // training are thread-independent, so they are built once and only
    // the pipeline re-runs per thread count.
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let dump_at = |threads: usize| {
        let cfg = GiantConfig {
            threads,
            ..GiantConfig::default()
        };
        giant::ontology::io::dump(&setup.run_pipeline(&models, &cfg).ontology)
    };
    let baseline = dump_at(1);
    assert!(!baseline.is_empty(), "dump produced no output");
    for threads in [2, 4, 7] {
        let dump = dump_at(threads);
        if dump != baseline {
            let diverged = common::first_divergence(
                &baseline,
                &dump,
                "threads=1",
                &format!("threads={threads}"),
            );
            panic!("pipeline output depends on thread count; first divergence at {diverged}");
        }
    }
}

#[test]
fn serialization_round_trip_is_a_fixed_point() {
    // dump → load → dump must reproduce the exact byte stream: guarantees
    // the IO layer itself introduces no ordering or formatting drift.
    let first = pipeline_dump();
    let reloaded = giant::ontology::io::load(&first).expect("load of fresh dump");
    let second = giant::ontology::io::dump(&reloaded);
    assert_eq!(
        first, second,
        "dump→load→dump is not a fixed point; IO serialisation is lossy or order-unstable"
    );
}

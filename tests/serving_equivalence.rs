//! Serving-equivalence suite: the read-optimized `OntologySnapshot` must
//! answer every query *identically* to the legacy linear-scan/traversal
//! answers on the mutable `Ontology`, and the applications must produce
//! byte-identical output through the versioned `OntologyService`.
//!
//! Three layers of evidence:
//!
//! 1. **Proptests on random worlds** — phrase lookup (canonical and alias),
//!    ranked children/correlates, ancestors/descendants, adjacency rows and
//!    stats, each compared against a reference implementation that scans
//!    the mutable store the way the pre-redesign applications did.
//! 2. **Pipeline-world spot equivalence** — key-entity detection and query
//!    conceptualization on the seed-42 world, snapshot vs the legacy
//!    `entity_nodes`-map / `nodes_of_kind` scans.
//! 3. **The golden file** — `tests/golden/serving_seed42.txt` was captured
//!    from the pre-redesign per-app code paths; `serving_golden_dump` now
//!    produces it entirely through `ServeRequest`s and must reproduce it
//!    byte for byte.

use giant::ontology::{NodeId, NodeKind, Ontology, OntologySnapshot, Phrase};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Reference (pre-redesign) implementations.
// ---------------------------------------------------------------------------

/// The legacy contained-phrase scan: every canonical phrase of the kind, in
/// id order, longest match wins, first (= smallest id) at equal length.
fn ref_find_contained(o: &Ontology, query_tokens: &[String], kind: NodeKind) -> Option<NodeId> {
    let mut best: Option<(usize, NodeId)> = None;
    for node in o.nodes_of_kind(kind) {
        let toks = &node.phrase.tokens;
        if toks.is_empty() || toks.len() > query_tokens.len() {
            continue;
        }
        let contained = (0..=query_tokens.len() - toks.len())
            .any(|i| &query_tokens[i..i + toks.len()] == toks.as_slice());
        if contained && best.map(|(l, _)| toks.len() > l).unwrap_or(true) {
            best = Some((toks.len(), node.id));
        }
    }
    best.map(|(_, id)| id)
}

/// Every surface (canonical + alias) of `kind` the registration table
/// resolves to its node, as `(tokens, node)` pairs.
fn ref_surfaces(o: &Ontology, kind: NodeKind) -> Vec<(Vec<String>, NodeId)> {
    let mut out = Vec::new();
    for node in o.nodes_of_kind(kind) {
        out.push((node.phrase.tokens.clone(), node.id));
        for a in &node.aliases {
            // Ownership check: only surfaces the lookup table actually maps
            // to this node compete (first-registration-wins).
            if o.find(kind, &a.surface()) == Some(node.id) {
                out.push((a.tokens.clone(), node.id));
            }
        }
    }
    out
}

/// Alias-aware contained-phrase reference: longest surface wins, smallest
/// node id at equal length.
fn ref_find_contained_aliases(
    o: &Ontology,
    query_tokens: &[String],
    kind: NodeKind,
) -> Option<NodeId> {
    let mut best: Option<(usize, NodeId)> = None;
    for (toks, node) in ref_surfaces(o, kind) {
        if toks.is_empty() || toks.len() > query_tokens.len() {
            continue;
        }
        let contained = (0..=query_tokens.len() - toks.len())
            .any(|i| &query_tokens[i..i + toks.len()] == toks.as_slice());
        if !contained {
            continue;
        }
        let better = match best {
            None => true,
            Some((bl, bn)) => toks.len() > bl || (toks.len() == bl && node < bn),
        };
        if better {
            best = Some((toks.len(), node));
        }
    }
    best.map(|(_, id)| id)
}

/// Legacy ranking of a concept's children: sort on demand by
/// `(support desc, id asc)`.
fn ref_ranked_children(o: &Ontology, id: NodeId) -> Vec<NodeId> {
    let mut children = o.children_of(id);
    children.sort_by(|a, b| {
        o.node(*b)
            .support
            .total_cmp(&o.node(*a).support)
            .then(a.0.cmp(&b.0))
    });
    children
}

/// Legacy ranking of correlates: sort on demand by `(weight desc, id asc)`.
fn ref_ranked_correlates(o: &Ontology, id: NodeId) -> Vec<(NodeId, f64)> {
    let mut correlates = o.correlates_of(id);
    correlates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    correlates
}

// ---------------------------------------------------------------------------
// Random-world generation.
// ---------------------------------------------------------------------------

/// Small token alphabet so phrases collide, nest and alias aggressively.
const TOKENS: [&str; 6] = ["ax", "bo", "cu", "dim", "el", "fy"];

type NodeSpec = (usize, Vec<usize>, i32);
type AliasSpec = (usize, Vec<usize>);
type EdgeSpec = (usize, usize, usize, i32);

fn phrase_of(token_ids: &[usize]) -> Phrase {
    Phrase::new(token_ids.iter().map(|&t| TOKENS[t % TOKENS.len()].to_owned()))
}

/// Builds an ontology from generated specs; invalid edges are skipped the
/// way the pipeline skips them (cycle/self-loop rejections).
fn build_world(nodes: &[NodeSpec], aliases: &[AliasSpec], edges: &[EdgeSpec]) -> Ontology {
    let mut o = Ontology::new();
    let mut ids = Vec::new();
    for (kind_idx, toks, support) in nodes {
        let kind = NodeKind::ALL[kind_idx % 5];
        let id = o.add_node(kind, phrase_of(toks), f64::from(*support % 17) + 0.5);
        ids.push(id);
    }
    for (node_idx, toks) in aliases {
        let id = ids[node_idx % ids.len()];
        let _ = o.add_alias(id, phrase_of(toks));
    }
    for (a, b, kind_idx, w) in edges {
        let (a, b) = (ids[a % ids.len()], ids[b % ids.len()]);
        let w = f64::from(*w % 11) * 0.1 + 0.05;
        let _ = match kind_idx % 3 {
            0 => o.add_is_a(a, b, w),
            1 => o.add_involve(a, b, w),
            _ => o.add_correlate(a, b, w),
        };
    }
    o
}

fn arb_specs() -> impl Strategy<Value = (Vec<NodeSpec>, Vec<AliasSpec>, Vec<EdgeSpec>)> {
    (
        proptest::collection::vec(
            (0usize..5, proptest::collection::vec(0usize..6, 1..4), 0i32..100),
            1..18,
        ),
        proptest::collection::vec(
            (0usize..18, proptest::collection::vec(0usize..6, 1..4)),
            0..12,
        ),
        proptest::collection::vec((0usize..18, 0usize..18, 0usize..3, 0i32..100), 0..50),
    )
}

fn arb_query() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..6, 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Phrase lookup: the inverted index answers exactly what the legacy
    /// linear scans answer, for every kind, with and without aliases.
    #[test]
    fn contained_phrase_lookup_matches_linear_scan(
        specs in arb_specs(),
        query in arb_query(),
    ) {
        let (nodes, aliases, edges) = specs;
        let o = build_world(&nodes, &aliases, &edges);
        let snap = OntologySnapshot::freeze(&o);
        let query_tokens: Vec<String> =
            query.iter().map(|&t| TOKENS[t % TOKENS.len()].to_owned()).collect();
        for kind in NodeKind::ALL {
            prop_assert_eq!(
                snap.find_contained(&query_tokens, kind, false),
                ref_find_contained(&o, &query_tokens, kind),
                "canonical lookup diverged for {:?} on {:?}", kind, query_tokens
            );
            prop_assert_eq!(
                snap.find_contained(&query_tokens, kind, true),
                ref_find_contained_aliases(&o, &query_tokens, kind),
                "alias lookup diverged for {:?} on {:?}", kind, query_tokens
            );
            // contained_nodes == every distinct canonically-contained node.
            let mut expected: Vec<NodeId> = o
                .nodes_of_kind(kind)
                .filter(|n| {
                    let toks = &n.phrase.tokens;
                    !toks.is_empty()
                        && toks.len() <= query_tokens.len()
                        && (0..=query_tokens.len() - toks.len())
                            .any(|i| &query_tokens[i..i + toks.len()] == toks.as_slice())
                })
                .map(|n| n.id)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(
                snap.contained_nodes(&query_tokens, kind, false),
                expected,
                "contained_nodes diverged for {:?}", kind
            );
        }
    }

    /// Rankings, traversals, adjacency and stats are identical to the
    /// mutable store's answers on every node.
    #[test]
    fn traversals_and_rankings_match_source(specs in arb_specs()) {
        let (nodes, aliases, edges) = specs;
        let o = build_world(&nodes, &aliases, &edges);
        let snap = OntologySnapshot::freeze(&o);
        prop_assert_eq!(snap.n_nodes(), o.n_nodes());
        prop_assert_eq!(snap.stats(), &o.stats());
        for kind in NodeKind::ALL {
            let legacy: Vec<NodeId> = o.nodes_of_kind(kind).map(|n| n.id).collect();
            prop_assert_eq!(snap.ids_of_kind(kind), legacy.as_slice());
        }
        for i in 0..o.n_nodes() {
            let id = NodeId(i as u32);
            let children = o.children_of(id);
            prop_assert_eq!(snap.children(id), children.as_slice());
            let parents = o.parents_of(id);
            prop_assert_eq!(snap.parents(id), parents.as_slice());
            let involved = o.involved_in(id);
            prop_assert_eq!(snap.involved_in(id), involved.as_slice());
            let involving = o.involving(id);
            prop_assert_eq!(snap.involving(id), involving.as_slice());
            prop_assert_eq!(snap.ancestors(id), o.ancestors(id));
            prop_assert_eq!(snap.descendants(id), o.descendants(id));
            let ranked = ref_ranked_children(&o, id);
            prop_assert_eq!(snap.ranked_children(id), ranked.as_slice());
            let (ts, ws) = snap.ranked_correlates(id);
            let reference = ref_ranked_correlates(&o, id);
            prop_assert_eq!(ts.len(), reference.len());
            for (j, (t, w)) in reference.iter().enumerate() {
                prop_assert_eq!(ts[j], *t);
                prop_assert!((ws[j] - w).abs() == 0.0, "weight mismatch at {}", j);
            }
            // Unordered surface lookup agrees everywhere it is defined.
            let node = snap.node(id);
            prop_assert_eq!(
                snap.find(node.kind, &node.phrase.surface()),
                o.find(node.kind, &node.phrase.surface())
            );
        }
    }

    /// The concept-token posting lists equal the per-call index the legacy
    /// tagging fallback rebuilt (duplicates preserved, id order).
    #[test]
    fn concept_token_postings_match_legacy_rebuild(specs in arb_specs()) {
        let (nodes, aliases, edges) = specs;
        let o = build_world(&nodes, &aliases, &edges);
        let snap = OntologySnapshot::freeze(&o);
        let mut legacy: std::collections::HashMap<&str, Vec<NodeId>> =
            std::collections::HashMap::new();
        for c in o.nodes_of_kind(NodeKind::Concept) {
            for t in &c.phrase.tokens {
                legacy.entry(t.as_str()).or_default().push(c.id);
            }
        }
        for t in TOKENS {
            let expected = legacy.get(t).cloned().unwrap_or_default();
            prop_assert_eq!(snap.concepts_with_token(t), expected.as_slice());
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline-world equivalence + the golden byte-identity test.
// ---------------------------------------------------------------------------

mod pipeline_world {
    use super::*;
    use giant_bench::{golden_queries, serving_golden_dump, Experiment, ExperimentConfig};
    use giant::adapter::ModelTrainConfig;
    use giant::apps::serving::{ServeRequest, ServeResponse};
    use giant::data::WorldConfig;
    use std::sync::OnceLock;

    fn experiment() -> &'static Experiment {
        static EXP: OnceLock<Experiment> = OnceLock::new();
        EXP.get_or_init(|| {
            Experiment::build(ExperimentConfig {
                world: WorldConfig::tiny(),
                train: ModelTrainConfig::small(),
                ..ExperimentConfig::default()
            })
        })
    }

    /// Key-entity detection through the snapshot equals the legacy scan
    /// over the pipeline's `entity_nodes` surface map, on every corpus doc.
    #[test]
    fn key_entities_match_entity_nodes_scan() {
        let exp = experiment();
        let snap = &*exp.snapshot;
        fn contains_seq(haystack: &[String], needle: &[String]) -> bool {
            !needle.is_empty()
                && haystack.len() >= needle.len()
                && (0..=haystack.len() - needle.len())
                    .any(|i| &haystack[i..i + needle.len()] == needle)
        }
        for d in &exp.setup.corpus.docs {
            let title = giant::text::tokenize(&d.title);
            let sentences: Vec<Vec<String>> =
                d.sentences.iter().map(|s| giant::text::tokenize(s)).collect();
            // Legacy: scan every surface in the pipeline's entity map.
            let mut legacy: Vec<NodeId> = Vec::new();
            let mut seen = HashSet::new();
            for (surface, &node) in &exp.output.entity_nodes {
                let toks = giant::text::tokenize(surface);
                let hit = contains_seq(&title, &toks)
                    || sentences.iter().any(|s| contains_seq(s, &toks));
                if hit && seen.insert(node) {
                    legacy.push(node);
                }
            }
            legacy.sort_by_key(|n| n.0);
            // Snapshot: inverted-index lookup over canonical entity phrases.
            let mut found: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
            found.extend(snap.contained_nodes(&title, NodeKind::Entity, false));
            for s in &sentences {
                found.extend(snap.contained_nodes(s, NodeKind::Entity, false));
            }
            let snapshot_found: Vec<NodeId> = found.into_iter().collect();
            assert_eq!(snapshot_found, legacy, "key entities diverged on doc {}", d.id);
        }
    }

    /// Query understanding through the service equals the legacy
    /// linear-scan + sort-on-demand implementation on every probe query.
    #[test]
    fn conceptualize_matches_legacy_understander() {
        let exp = experiment();
        let o = &exp.output.ontology;
        let max_results = exp.service.resources().max_results;
        for q in golden_queries(exp) {
            let ServeResponse::Conceptualize(u) = exp
                .service
                .serve(&ServeRequest::Conceptualize { query: q.clone() })
                .expect("Conceptualize cannot fail")
            else {
                panic!("Conceptualize answered with a different kind")
            };
            let tokens = giant::text::tokenize(&q);
            let concept = ref_find_contained(o, &tokens, NodeKind::Concept);
            let entity = ref_find_contained(o, &tokens, NodeKind::Entity);
            assert_eq!(u.concept, concept, "concept diverged on {q:?}");
            assert_eq!(u.entity, entity, "entity diverged on {q:?}");
            let rewrites: Vec<String> = concept
                .map(|c| {
                    ref_ranked_children(o, c)
                        .into_iter()
                        .filter(|&n| o.node(n).kind == NodeKind::Entity)
                        .take(max_results)
                        .map(|e| format!("{q} {}", o.node(e).phrase.surface()))
                        .collect()
                })
                .unwrap_or_default();
            assert_eq!(u.rewrites, rewrites, "rewrites diverged on {q:?}");
            let recs: Vec<NodeId> = entity
                .map(|e| {
                    ref_ranked_correlates(o, e)
                        .into_iter()
                        .take(max_results)
                        .map(|(n, _)| n)
                        .collect()
                })
                .unwrap_or_default();
            assert_eq!(u.recommendations, recs, "recommendations diverged on {q:?}");
        }
    }

    /// The committed golden file — captured from the pre-redesign app code
    /// paths on the seed-42 world — must be reproduced byte-for-byte
    /// through the `OntologyService`.
    #[test]
    fn app_outputs_byte_identical_to_pre_redesign_golden() {
        let exp = experiment();
        let dump = serving_golden_dump(exp);
        let golden = include_str!("golden/serving_seed42.txt");
        if dump != golden {
            let diverged = dump
                .lines()
                .zip(golden.lines())
                .position(|(a, b)| a != b)
                .map(|i| format!("line {}: now {:?} vs golden {:?}",
                    i + 1,
                    dump.lines().nth(i).unwrap(),
                    golden.lines().nth(i).unwrap()))
                .unwrap_or_else(|| format!(
                    "lengths differ: now {} vs golden {} bytes", dump.len(), golden.len()));
            panic!("serving output drifted from the pre-redesign golden; first divergence at {diverged}");
        }
    }
}

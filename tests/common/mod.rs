//! Helpers shared by the integration suites (`mod common;` per binary).

/// Formats the first line where two multi-line dumps diverge, or the
/// length mismatch when one is a prefix of the other. Labels name the two
/// sides in the report (e.g. `"threads=1"` vs `"threads=4"`).
pub fn first_divergence(a: &str, b: &str, label_a: &str, label_b: &str) -> String {
    a.lines()
        .zip(b.lines())
        .position(|(x, y)| x != y)
        .map(|i| {
            format!(
                "line {}: {label_a} {:?} vs {label_b} {:?}",
                i + 1,
                a.lines().nth(i).unwrap(),
                b.lines().nth(i).unwrap()
            )
        })
        .unwrap_or_else(|| {
            format!(
                "lengths differ: {label_a} {} vs {label_b} {} bytes",
                a.len(),
                b.len()
            )
        })
}

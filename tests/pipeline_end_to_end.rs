//! End-to-end integration: synthetic world → trained models → Algorithm 1 +
//! linking → Attention Ontology. Verifies the pipeline against the
//! generating ground truth.

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use giant::ontology::NodeKind;
use std::sync::OnceLock;

struct Fixture {
    setup: GiantSetup,
    output: giant::mining::GiantOutput,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let setup = GiantSetup::generate(WorldConfig::tiny());
        let (models, losses) = setup.train_models(&ModelTrainConfig::small());
        assert!(
            losses.0.is_finite() && losses.1.is_finite(),
            "training diverged: {losses:?}"
        );
        let output = setup.run_pipeline(&models, &GiantConfig::default());
        Fixture { setup, output }
    })
}

#[test]
fn pipeline_mines_concepts_and_events() {
    let f = fixture();
    let stats = f.output.ontology.stats();
    // Every kind of node must exist.
    assert!(
        stats.nodes_by_kind[NodeKind::Concept.index()] > 0,
        "no concepts mined: {stats:?}"
    );
    assert!(
        stats.nodes_by_kind[NodeKind::Event.index()] > 0,
        "no events mined: {stats:?}"
    );
    assert_eq!(
        stats.nodes_by_kind[NodeKind::Category.index()],
        f.setup.world.categories.len()
    );
    assert!(stats.nodes_by_kind[NodeKind::Entity.index()] >= f.setup.world.entities.len());
}

#[test]
fn mined_concepts_match_ground_truth_mostly() {
    let f = fixture();
    let truth: Vec<String> = f
        .setup
        .world
        .concepts
        .iter()
        .map(|c| c.tokens.join(" "))
        .collect();
    let mined: Vec<String> = f
        .output
        .mined_of_kind(NodeKind::Concept)
        .iter()
        .map(|m| m.tokens.join(" "))
        .collect();
    let hit = truth.iter().filter(|t| mined.contains(t)).count();
    // The tiny world has few training examples; demand a majority, not
    // perfection.
    assert!(
        hit * 2 >= truth.len(),
        "only {hit}/{} ground-truth concepts recovered; mined: {mined:?}",
        truth.len()
    );
}

#[test]
fn mined_events_match_ground_truth_mostly() {
    let f = fixture();
    let truth: Vec<String> = f
        .setup
        .world
        .events
        .iter()
        .map(|e| e.tokens.join(" "))
        .collect();
    let mined: Vec<String> = f
        .output
        .mined_of_kind(NodeKind::Event)
        .iter()
        .map(|m| m.tokens.join(" "))
        .collect();
    let hit = truth.iter().filter(|t| mined.contains(t)).count();
    assert!(
        hit * 2 >= truth.len(),
        "only {hit}/{} ground-truth events recovered; mined: {mined:?}",
        truth.len()
    );
}

#[test]
fn edges_exist_for_all_three_kinds() {
    let f = fixture();
    let stats = f.output.ontology.stats();
    assert!(stats.edges_by_kind[0] > 0, "no isA edges: {stats:?}");
    assert!(stats.edges_by_kind[1] > 0, "no involve edges: {stats:?}");
    assert!(stats.edges_by_kind[2] > 0, "no correlate edges: {stats:?}");
}

#[test]
fn category_links_point_to_true_categories() {
    let f = fixture();
    let o = &f.output.ontology;
    // For mined concepts that exactly match a ground-truth concept, check
    // that a linked category is an ancestor-or-self of the true category.
    let mut checked = 0;
    let mut correct = 0;
    for m in f.output.mined_of_kind(NodeKind::Concept) {
        let surface = m.tokens.join(" ");
        let Some(truth) = f
            .setup
            .world
            .concepts
            .iter()
            .find(|c| c.tokens.join(" ") == surface)
        else {
            continue;
        };
        let true_cats: Vec<String> = [truth.sub_category, f.setup.world.domain_of_sub(truth.sub_category)]
            .iter()
            .map(|&c| f.setup.world.categories[c].tokens.join(" "))
            .collect();
        for p in o.parents_of(m.node) {
            let parent = o.node(p);
            if parent.kind != NodeKind::Category {
                continue;
            }
            checked += 1;
            let name = parent.phrase.surface();
            // Accept the leaf facets too ("<sub> news"/"<sub> reviews").
            if true_cats.iter().any(|t| name.starts_with(t.as_str()) || t.starts_with(&name)) {
                correct += 1;
            }
        }
    }
    assert!(checked > 0, "no category links to check");
    assert!(
        correct * 10 >= checked * 8,
        "category link accuracy too low: {correct}/{checked}"
    );
}

#[test]
fn concept_entity_links_respect_membership() {
    let f = fixture();
    let o = &f.output.ontology;
    let mut checked = 0;
    let mut correct = 0;
    for m in f.output.mined_of_kind(NodeKind::Concept) {
        let surface = m.tokens.join(" ");
        let Some(truth) = f
            .setup
            .world
            .concepts
            .iter()
            .find(|c| c.tokens.join(" ") == surface)
        else {
            continue;
        };
        for child in o.children_of(m.node) {
            let node = o.node(child);
            if node.kind != NodeKind::Entity {
                continue;
            }
            checked += 1;
            let ent_surface = node.phrase.surface();
            let is_member = truth
                .members
                .iter()
                .any(|&e| f.setup.world.entities[e].tokens.join(" ") == ent_surface);
            if is_member {
                correct += 1;
            }
        }
    }
    if checked > 0 {
        assert!(
            correct * 10 >= checked * 7,
            "concept-entity precision too low: {correct}/{checked}"
        );
    }
}

#[test]
fn correlate_edges_connect_related_entities() {
    let f = fixture();
    let o = &f.output.ontology;
    let mut checked = 0;
    let mut correct = 0;
    for (src, dst, kind, _) in o.edges_iter() {
        if kind != giant::ontology::EdgeKind::Correlate {
            continue;
        }
        let a = o.node(src);
        let b = o.node(dst);
        if a.kind != NodeKind::Entity || b.kind != NodeKind::Entity {
            continue;
        }
        let find = |surface: &str| {
            f.setup
                .world
                .entities
                .iter()
                .position(|e| e.tokens.join(" ") == surface)
        };
        let (Some(ea), Some(eb)) = (find(&a.phrase.surface()), find(&b.phrase.surface())) else {
            continue;
        };
        checked += 1;
        if f.setup.world.correlated_entities(ea).contains(&eb) {
            correct += 1;
        }
    }
    if checked > 0 {
        assert!(
            correct * 10 >= checked * 6,
            "correlate precision too low: {correct}/{checked}"
        );
    }
}

#[test]
fn ontology_round_trips_through_io() {
    let f = fixture();
    let text = giant::ontology::io::dump(&f.output.ontology);
    let loaded = giant::ontology::io::load(&text).expect("round trip");
    assert_eq!(loaded.stats(), f.output.ontology.stats());
}

#[test]
fn pipeline_is_deterministic() {
    // Two fresh runs with the same seeds give identical stats.
    let s1 = GiantSetup::generate(WorldConfig::tiny());
    let (m1, _) = s1.train_models(&ModelTrainConfig::small());
    let o1 = s1.run_pipeline(&m1, &GiantConfig::default());
    let s2 = GiantSetup::generate(WorldConfig::tiny());
    let (m2, _) = s2.train_models(&ModelTrainConfig::small());
    let o2 = s2.run_pipeline(&m2, &GiantConfig::default());
    assert_eq!(o1.ontology.stats(), o2.ontology.stats());
    assert_eq!(o1.mined.len(), o2.mined.len());
}

//! The incremental subsystem's headline contract: for **any** split of a
//! corpus into an initial batch plus arbitrary delta batches, the
//! incrementally maintained ontology (dirty-cluster re-mining + delta
//! application) is **byte-identical** — via `giant::ontology::io::dump` —
//! to a full `run_pipeline` over the union of the batches, at every thread
//! count.
//!
//! Two proof layers:
//!
//! * proptests over random cut points of random tiny worlds (different
//!   world seeds change the corpus, the click topology and the models);
//! * a golden on the seed-42 experiment world (the exact world every other
//!   golden in this repo pins), split 95/5 like the throughput bench.

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::incr::{union_input, Checkpoint, DeltaBatch, IncrementalState};
use giant::mining::GiantConfig;
use giant::ontology::binio::SectionFile;
use proptest::prelude::*;

mod common;

/// Folds `batches` incrementally and returns the live ontology's dump plus
/// the fold reports' cache stats for inspection.
fn incremental_dump(
    setup: &GiantSetup,
    models: &giant::mining::GiantModels,
    cfg: &GiantConfig,
    batches: Vec<DeltaBatch>,
) -> (String, usize, usize) {
    let stream = setup.corpus_stream();
    let mut state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        *cfg,
    );
    // Cache stats of the *last* fold (the delta; the bootstrap fold
    // necessarily mines everything).
    let (mut reused, mut mined) = (0usize, 0usize);
    for batch in batches {
        let report = state.fold(batch).expect("split batches always validate");
        reused = report.cache.clusters_reused;
        mined = report.cache.clusters_mined;
    }
    (
        giant::ontology::io::dump(state.ontology()),
        reused,
        mined,
    )
}

/// The full-rebuild reference over the union of the same batches.
fn full_dump(
    setup: &GiantSetup,
    models: &giant::mining::GiantModels,
    cfg: &GiantConfig,
    batches: &[DeltaBatch],
) -> String {
    let stream = setup.corpus_stream();
    let input = union_input(stream.categories.clone(), stream.annotator.clone(), batches);
    let output = giant_core::run_pipeline(&input, models, cfg);
    giant::ontology::io::dump(&output.ontology)
}

fn check_convergence(world_seed: u64, cuts: &[f64], threads: usize) {
    let setup = GiantSetup::generate(WorldConfig {
        seed: world_seed,
        ..WorldConfig::tiny()
    });
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let cfg = GiantConfig {
        threads,
        ..GiantConfig::default()
    };
    let batches = setup.corpus_stream().split(cuts);
    let full = full_dump(&setup, &models, &cfg, &batches);
    let (incr, _, _) = incremental_dump(&setup, &models, &cfg, batches);
    if full != incr {
        let at = common::first_divergence(&full, &incr, "full rebuild", "incremental");
        panic!(
            "convergence violated (world_seed={world_seed}, cuts={cuts:?}, \
             threads={threads}); first divergence at {at}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random worlds × random 2-way or 3-way splits, sequential mining.
    #[test]
    fn incremental_equals_full_rebuild_on_random_splits(
        world_seed in 0u64..1_000,
        first in 0.05f64..0.9,
        second_frac in 0.0f64..1.0,
    ) {
        // Derive an optional second cut above the first.
        let cuts = if second_frac > 0.5 {
            let second = first + (1.0 - first) * (second_frac - 0.5);
            vec![first, second]
        } else {
            vec![first]
        };
        check_convergence(world_seed, &cuts, 1);
    }

    /// Thread-count invariance of the incremental path itself: warm caches
    /// must be consumed identically at any worker count. Fewer cases than
    /// the split test — each case runs two full convergence checks.
    #[test]
    fn incremental_is_thread_count_invariant(
        world_seed in 0u64..1_000,
        cut in 0.2f64..0.9,
        threads in 2usize..8,
    ) {
        check_convergence(world_seed, &[cut], threads);
    }
}

/// Many tiny batches: the cache survives long fold chains, not just one
/// delta.
#[test]
fn long_fold_chain_converges() {
    check_convergence(7, &[0.3, 0.45, 0.6, 0.7, 0.8, 0.9, 0.95], 1);
}

/// Folds `batches`, checkpointing after batch `restart_after` and pushing
/// the checkpoint through the full binary container (bytes, checksums and
/// all — not just an in-memory clone) before folding the rest on the
/// restored state. Returns the restored state's final dump.
fn restored_dump(
    setup: &GiantSetup,
    models: &giant::mining::GiantModels,
    cfg: &GiantConfig,
    batches: &[DeltaBatch],
    restart_after: usize,
) -> String {
    let stream = setup.corpus_stream();
    let mut state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        *cfg,
    );
    for batch in &batches[..=restart_after] {
        state.fold(batch.clone()).expect("pre-restart batches fold");
    }
    // "Process restart": serialise → bytes → parse → restore.
    let mut file = SectionFile::new();
    state.checkpoint().add_sections(&mut file);
    drop(state);
    let reread = SectionFile::from_bytes(&file.to_bytes()).expect("container round trip");
    let mut state = Checkpoint::from_sections(&reread)
        .expect("checkpoint sections parse")
        .restore(stream.annotator.clone(), models.clone());
    for batch in &batches[restart_after + 1..] {
        state.fold(batch.clone()).expect("post-restart batches fold");
    }
    giant::ontology::io::dump(state.ontology())
}

/// The restore contract of the checkpoint subsystem: a state restored
/// from a binary checkpoint mid-stream folds the remaining deltas to a
/// byte-identical ontology — against the never-restarted fold chain *and*
/// the full rebuild — at 1, 2 and 4 threads.
#[test]
fn restored_state_converges_byte_identically_at_1_2_4_threads() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let cuts = [0.5, 0.75];
    for threads in [1usize, 2, 4] {
        let cfg = GiantConfig {
            threads,
            ..GiantConfig::default()
        };
        let batches = setup.corpus_stream().split(&cuts);
        let full = full_dump(&setup, &models, &cfg, &batches);
        let (never_restarted, _, _) =
            incremental_dump(&setup, &models, &cfg, batches.clone());
        assert_eq!(
            never_restarted, full,
            "baseline convergence violated (threads={threads})"
        );
        for restart_after in 0..batches.len() - 1 {
            let restored = restored_dump(&setup, &models, &cfg, &batches, restart_after);
            assert_eq!(
                restored, never_restarted,
                "restored state diverged (threads={threads}, restart_after={restart_after})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Restore-mid-stream over random worlds and random cut points: the
    /// checkpointed-and-restored fold chain equals the full rebuild.
    #[test]
    fn restored_state_converges_on_random_splits(
        world_seed in 0u64..1_000,
        first in 0.1f64..0.7,
        second_off in 0.05f64..0.25,
    ) {
        let setup = GiantSetup::generate(WorldConfig {
            seed: world_seed,
            ..WorldConfig::tiny()
        });
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let cfg = GiantConfig::default();
        let batches = setup.corpus_stream().split(&[first, (first + second_off).min(0.95)]);
        let full = full_dump(&setup, &models, &cfg, &batches);
        let restored = restored_dump(&setup, &models, &cfg, &batches, 0);
        prop_assert_eq!(
            restored, full,
            "restored fold chain diverged (world_seed={}, first={})", world_seed, first
        );
    }
}

/// Folding an explicitly empty batch is a no-op version (identity delta).
#[test]
fn empty_batch_is_an_identity_fold() {
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let stream = setup.corpus_stream();
    let mut state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models,
        GiantConfig::default(),
    );
    state.fold(stream.as_one_batch()).unwrap();
    let before = giant::ontology::io::dump(state.ontology());
    let report = state.fold(DeltaBatch::new()).unwrap();
    assert!(report.delta.is_identity(), "empty batch must produce an identity delta");
    assert_eq!(report.cache.clusters_mined, 0, "nothing may be re-mined");
    assert_eq!(report.evicted_walks, 0);
    assert_eq!(giant::ontology::io::dump(state.ontology()), before);
}

/// The golden convergence: seed-42 experiment world (the same world every
/// other golden pins), three delta shapes at 1, 2 and 4 threads:
///
/// * the **positional 95/5 stream split** — a worst-case delta (the
///   generated log appends its uniform noise clicks at the end, so the
///   tail batch touches every component of the click graph). Convergence
///   must hold even though almost nothing is reusable;
/// * the **doc-arrival 95/5 split** — clicks ride with their documents; a
///   tail-of-corpus delta can still legitimately dirty most clusters;
/// * the **new-topics 5% split** — the realistic freshness regime, where
///   the planner must both converge *and* reuse most cached clusters.
///
/// Reuse-rate assertions are deliberately confined to the new-topics
/// shape: on the stream-tail shapes (positional, doc-arrival) evicting
/// most cached walks is *correct* behaviour — the tail touches every
/// component — so asserting reuse there pins an accident of the
/// generator, not a contract (the PR-4 flake note). Stream-tail shapes
/// assert convergence only.
///
/// Ignored in debug builds (the experiment world is a release-scale
/// workload); CI runs it in the release convergence step with
/// `--include-ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-world golden; run in release")]
fn seed42_experiment_world_converges_on_a_5pct_delta() {
    let setup = GiantSetup::generate(WorldConfig::experiment());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let stream = setup.corpus_stream();
    for (shape, batches, want_reuse) in [
        ("positional 95/5", stream.split(&[0.95]), false),
        ("doc-arrival 95/5", stream.split_on_doc_arrival(&[0.95]), false),
        ("new-topics 5%", stream.split_new_topics(0.05), true),
    ] {
        for threads in [1usize, 2, 4] {
            let cfg = GiantConfig {
                threads,
                ..GiantConfig::default()
            };
            let full = full_dump(&setup, &models, &cfg, &batches);
            let (incr, reused, mined) = incremental_dump(&setup, &models, &cfg, batches.clone());
            if full != incr {
                let at = common::first_divergence(&full, &incr, "full rebuild", "incremental");
                panic!(
                    "seed-42 convergence violated ({shape}, threads={threads}); \
                     first divergence at {at}"
                );
            }
            if want_reuse {
                assert!(
                    reused > mined,
                    "a new-topics 5% delta must reuse more clusters than it re-mines \
                     ({shape}: reused={reused}, mined={mined})"
                );
            }
        }
    }
}

/// Fold validation: the state must reject malformed batches untouched.
#[test]
fn fold_validation_rejects_malformed_batches() {
    use giant::incr::{ClickEvent, FoldError};
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let stream = setup.corpus_stream();
    let mut state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models,
        GiantConfig::default(),
    );
    state.fold(stream.as_one_batch()).unwrap();
    let folds_before = state.folds();
    let dump_before = giant::ontology::io::dump(state.ontology());

    // Click to a doc that does not exist yet.
    let mut bad = DeltaBatch::new();
    bad.clicks.push(ClickEvent {
        query: "phantom".into(),
        doc: 1_000_000,
        count: 1.0,
    });
    assert!(matches!(
        state.fold(bad),
        Err(FoldError::ClickToMissingDoc { .. })
    ));

    // Doc id that skips ahead.
    let mut bad = DeltaBatch::new();
    bad.docs.push(giant::mining::DocRecord {
        id: state.input().docs.len() + 7,
        title: "orphan".into(),
        sentences: vec![],
        leaf_category: 0,
        day: 0,
    });
    assert!(matches!(state.fold(bad), Err(FoldError::NonContiguousDoc { .. })));

    // Negative click mass.
    let mut bad = DeltaBatch::new();
    bad.clicks.push(ClickEvent {
        query: "antimatter".into(),
        doc: 0,
        count: -1.0,
    });
    assert!(matches!(state.fold(bad), Err(FoldError::NegativeClicks { .. })));

    // State untouched by the failures.
    assert_eq!(state.folds(), folds_before);
    assert_eq!(giant::ontology::io::dump(state.ontology()), dump_before);
}

//! Network-equivalence suite for the `giant-net` front door.
//!
//! The contract under test: putting a socket, worker pool, and batch
//! coalescing between a client and the `OntologyService` changes
//! **nothing** about the answers. For the same request stream:
//!
//! * socket-served reply bytes equal in-process reply bytes at every
//!   server thread count (1/2/4) and coalescing limit (1/3/32), from one
//!   connection or two concurrent ones;
//! * under overload the server sheds with a typed reply — every request
//!   gets exactly one answer, the admission queue never exceeds its
//!   bound, and the stats endpoint keeps answering;
//! * a malformed frame gets a typed protocol rejection and a connection
//!   close — the server survives and keeps serving other clients.

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig};
use giant::apps::serving::{OntologyService, ServeRequest};
use giant::data::WorldConfig;
use giant::net::wire::{encode_reply_payload, read_frame, Reply, Request};
use giant::net::{NetClient, Server, ServerConfig};
use giant::ontology::NodeId;
use std::sync::{Arc, OnceLock};

/// The shared test world: built once (generate → train → mine → publish),
/// served by every test in the suite. The service is never re-published,
/// so each test sees the same frame.
fn world() -> &'static (Arc<OntologyService>, Vec<ServeRequest>) {
    static WORLD: OnceLock<(Arc<OntologyService>, Vec<ServeRequest>)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let setup = GiantSetup::generate(WorldConfig::tiny());
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let output = setup.run_pipeline(&models, &Default::default());
        let service = build_serving(&setup, &output).service;

        let mut requests = Vec::new();
        for e in &setup.world.entities {
            requests.push(ServeRequest::Conceptualize {
                query: format!("best {}", e.tokens.join(" ")),
            });
            requests.push(ServeRequest::Recommend {
                query: format!("{} news", e.tokens.join(" ")),
            });
        }
        for d in setup.corpus.docs.iter().take(12) {
            requests.push(ServeRequest::TagDocument {
                title: d.title.clone(),
                sentences: d.sentences.clone(),
            });
        }
        for s in service.resources().stories.iter().take(8) {
            requests.push(ServeRequest::StoryTree { seed: s.node });
        }
        // The error path must round-trip too.
        requests.push(ServeRequest::StoryTree {
            seed: NodeId(u32::MAX),
        });
        assert!(requests.len() >= 30, "request stream too small to exercise batching");
        (Arc::new(service), requests)
    })
}

/// The in-process ground truth: each request served against the live
/// frame, rendered to canonical reply bytes.
fn expected_reply_bytes(svc: &OntologyService, requests: &[ServeRequest]) -> Vec<Vec<u8>> {
    let frame = svc.frame();
    requests
        .iter()
        .map(|r| {
            let reply = match frame.serve(r) {
                Ok(resp) => Reply::Ok(resp),
                Err(e) => Reply::Err(e),
            };
            encode_reply_payload(&reply).expect("encode expected reply")
        })
        .collect()
}

/// Sends the whole stream pipelined over one connection and returns the
/// reply bytes in request order.
fn served_reply_bytes(addr: std::net::SocketAddr, requests: &[ServeRequest]) -> Vec<Vec<u8>> {
    let mut client = NetClient::connect(addr).expect("connect");
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| client.send(&Request::Serve(r.clone())).expect("send"))
        .collect();
    ids.iter()
        .map(|&id| {
            let reply = client.recv(id).expect("recv");
            encode_reply_payload(&reply).expect("encode served reply")
        })
        .collect()
}

#[test]
fn socket_replies_are_byte_identical_to_in_process_at_any_concurrency() {
    let (svc, requests) = world();
    let expected = expected_reply_bytes(svc, requests);

    for workers in [1usize, 2, 4] {
        for batch_max in [1usize, 3, 32] {
            let server = Server::start(
                Arc::clone(svc),
                "127.0.0.1:0",
                ServerConfig {
                    workers,
                    exec_threads: workers, // vary the executor too
                    batch_max,
                    queue_cap: 4096,
                    debug_batch_delay_us: 0,
                    allow_export: false,
                },
            )
            .expect("start server");

            // Two concurrent clients: requests from both connections
            // coalesce into shared batches, and both must still see
            // exactly the in-process bytes.
            let addr = server.local_addr();
            let reqs2 = requests.clone();
            let second = std::thread::spawn(move || served_reply_bytes(addr, &reqs2));
            let first = served_reply_bytes(addr, requests);
            let second = second.join().expect("second client");

            assert_eq!(
                first, expected,
                "workers={workers} batch_max={batch_max}: client 1 diverged from in-process"
            );
            assert_eq!(
                second, expected,
                "workers={workers} batch_max={batch_max}: client 2 diverged from in-process"
            );
            // Coalescing actually happened when allowed (smoke check that
            // the equivalence above tested something non-trivial).
            let stats = server.stats_report();
            assert_eq!(stats.served, 2 * requests.len() as u64);
            if batch_max >= 32 && workers == 1 {
                assert!(
                    stats.max_batch > 1,
                    "expected some coalescing with a pipelined stream, max_batch = {}",
                    stats.max_batch
                );
            }
            server.shutdown();
        }
    }
}

#[test]
fn overload_sheds_typed_replies_and_keeps_the_queue_bounded() {
    let (svc, requests) = world();
    let queue_cap = 8usize;
    let server = Server::start(
        Arc::clone(svc),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            exec_threads: 1,
            batch_max: 4,
            queue_cap,
            // Slow the lone worker so the blast overruns the queue
            // deterministically even on a fast machine.
            debug_batch_delay_us: 5000,
            allow_export: false,
        },
    )
    .expect("start server");

    let n = 200usize;
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            let req = requests[i % requests.len()].clone();
            client.send(&Request::Serve(req)).expect("send")
        })
        .collect();

    // While the queue is saturated, stats must still answer (it is
    // handled inline by the read thread, not queued).
    let mid_report = client.stats().expect("stats under load");
    assert_eq!(mid_report.queue_cap, queue_cap as u32);

    let mut ok = 0usize;
    let mut shed = 0usize;
    for id in ids {
        match client.recv(id).expect("recv") {
            Reply::Ok(_) | Reply::Err(_) => ok += 1,
            Reply::Shed { depth, cap } => {
                shed += 1;
                assert_eq!(cap, queue_cap as u32);
                assert!(depth >= queue_cap as u32, "shed below the bound: {depth}");
            }
            other => panic!("unexpected reply under overload: {other:?}"),
        }
    }
    assert_eq!(ok + shed, n, "every request gets exactly one typed answer");
    assert!(shed > 0, "the blast must overflow an {queue_cap}-deep queue");

    let report = client.stats().expect("stats after load");
    assert_eq!(report.served, ok as u64);
    assert_eq!(report.shed, shed as u64);
    assert!(
        report.queue_max_depth <= report.queue_cap,
        "admission bound violated: {} > {}",
        report.queue_max_depth,
        report.queue_cap
    );
    server.shutdown();
}

#[test]
fn malformed_frames_are_rejected_without_killing_the_server() {
    use std::io::Write as _;
    let (svc, requests) = world();
    let server = Server::start(Arc::clone(svc), "127.0.0.1:0", ServerConfig::default())
        .expect("start server");

    // A frame with a valid header shape but a wrong checksum.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect raw");
    let payload = [4u8]; // would be Request::Stats if the checksum held
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&9u64.to_le_bytes());
    frame.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame).expect("write corrupt frame");

    // The server answers with a typed protocol rejection, then closes.
    let (_, reply_payload) = read_frame(&mut stream).expect("read rejection");
    match giant::net::wire::decode_reply(&reply_payload).expect("decode rejection") {
        Reply::Bad { reason } => assert!(
            reason.contains("checksum"),
            "rejection should name the checksum, got: {reason}"
        ),
        other => panic!("expected Reply::Bad, got {other:?}"),
    }
    assert!(
        read_frame(&mut stream).is_err(),
        "connection must be closed after a protocol rejection"
    );

    // ...and other clients are entirely unaffected.
    let mut client = NetClient::connect(server.local_addr()).expect("connect healthy client");
    let reply = client
        .serve(requests[0].clone())
        .expect("serve after another client's corruption");
    assert!(matches!(reply, Reply::Ok(_)));
    server.shutdown();
}

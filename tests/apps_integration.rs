//! Integration of the applications (§4) on top of a real pipeline output,
//! all consuming the same constructed ontology through the versioned
//! `OntologyService`: story trees, query understanding, tagging and the
//! feed simulator.

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig, ServingBuild};
use giant::apps::recommend::{simulate_feed, FeedSimConfig, TagStrategy};
use giant::apps::serving::{ServeRequest, ServeResponse};
use giant::apps::storytree::retrieve_related;
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use giant::ontology::NodeKind;
use std::sync::OnceLock;

struct Fixture {
    setup: GiantSetup,
    output: giant::mining::GiantOutput,
    serving: ServingBuild,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let setup = GiantSetup::generate(WorldConfig::tiny());
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let output = setup.run_pipeline(&models, &GiantConfig::default());
        let serving = build_serving(&setup, &output);
        Fixture {
            setup,
            output,
            serving,
        }
    })
}

#[test]
fn story_tree_from_mined_events() {
    let f = fixture();
    let resources = f.serving.service.resources();
    let events = &resources.stories;
    assert!(!events.is_empty(), "pipeline mined no events");
    let seed_idx = (0..events.len())
        .max_by_key(|&i| retrieve_related(&events[i], events).len())
        .unwrap();
    let ServeResponse::StoryTree(tree) = f
        .serving
        .service
        .serve(&ServeRequest::StoryTree { seed: events[seed_idx].node })
        .expect("seed is a mined event")
    else {
        panic!("StoryTree answered with a different kind")
    };
    assert!(tree.n_events() >= 1);
    // Events sorted by day, every event in exactly one branch.
    let days: Vec<u32> = tree.events.iter().map(|e| e.day).collect();
    let mut sorted = days.clone();
    sorted.sort_unstable();
    assert_eq!(days, sorted);
    let mut covered: Vec<usize> = tree.branches.iter().flatten().copied().collect();
    covered.sort_unstable();
    assert_eq!(covered, (0..tree.n_events()).collect::<Vec<_>>());
    // Rendering is non-empty and mentions a day marker.
    assert!(tree.render().contains("[day"));
    // An unknown seed is a typed error, not a panic.
    assert!(f
        .serving
        .service
        .serve(&ServeRequest::StoryTree { seed: giant::ontology::NodeId(u32::MAX) })
        .is_err());
}

#[test]
fn query_understanding_on_constructed_ontology() {
    let f = fixture();
    let snapshot = &f.serving.snapshot;
    let serve_conceptualize = |query: String| {
        let ServeResponse::Conceptualize(u) = f
            .serving
            .service
            .serve(&ServeRequest::Conceptualize { query })
            .expect("Conceptualize cannot fail")
        else {
            panic!("Conceptualize answered with a different kind")
        };
        u
    };
    // A concept query: find a mined concept with entity children.
    let with_children = f
        .output
        .mined_of_kind(NodeKind::Concept)
        .into_iter()
        .find(|m| {
            snapshot
                .children(m.node)
                .iter()
                .any(|&c| snapshot.node(c).kind == NodeKind::Entity)
        });
    if let Some(m) = with_children {
        let u = serve_conceptualize(format!("best {}", m.tokens.join(" ")));
        assert_eq!(u.concept, Some(m.node));
        assert!(!u.rewrites.is_empty(), "expected query rewrites");
        for r in &u.rewrites {
            assert!(r.starts_with("best "));
        }
    }
    // An entity query over a correlate-connected entity, through both the
    // Conceptualize and the dedicated Recommend request kinds.
    let entity_with_correlates = f
        .setup
        .world
        .entities
        .iter()
        .map(|e| e.tokens.join(" "))
        .find(|s| {
            snapshot
                .find(NodeKind::Entity, s)
                .map(|n| !snapshot.ranked_correlates(n).0.is_empty())
                .unwrap_or(false)
        });
    if let Some(surface) = entity_with_correlates {
        let u = serve_conceptualize(format!("{surface} review"));
        assert!(u.entity.is_some());
        assert!(!u.recommendations.is_empty());
        let ServeResponse::Recommend(r) = f
            .serving
            .service
            .serve(&ServeRequest::Recommend { query: format!("{surface} review") })
            .expect("Recommend cannot fail")
        else {
            panic!("Recommend answered with a different kind")
        };
        assert_eq!(r.entity, u.entity);
        assert_eq!(r.items, u.recommendations);
    }
}

#[test]
fn feed_simulation_with_ground_truth_tags() {
    let f = fixture();
    let docs = giant::apps::ground_truth_tags(&f.setup.world, &f.setup.corpus, &|kind, id| {
        giant::ontology::NodeId((kind.index() * 100_000 + id) as u32)
    });
    let cfg = FeedSimConfig {
        n_users: 60,
        ..FeedSimConfig::default()
    };
    let all = simulate_feed(&f.setup.world, &f.setup.corpus, &docs, &cfg, TagStrategy::AllTags);
    let base = simulate_feed(
        &f.setup.world,
        &f.setup.corpus,
        &docs,
        &cfg,
        TagStrategy::CategoryEntity,
    );
    assert!(all.impressions > 0);
    assert!(
        all.avg_ctr > base.avg_ctr,
        "all-tags {:.2} must beat category+entity {:.2}",
        all.avg_ctr,
        base.avg_ctr
    );
}

#[test]
fn derived_nodes_have_valid_structure() {
    let f = fixture();
    let o = &*f.serving.snapshot;
    // Every topic (CPD output) must isA-parent at least one event and
    // involve a concept whose phrase is contained in the topic phrase.
    for t in o.nodes_of_kind(NodeKind::Topic) {
        let children = o.children(t.id);
        assert!(
            children
                .iter()
                .any(|&c| o.node(c).kind == NodeKind::Event),
            "topic {:?} has no event instances",
            t.phrase.surface()
        );
        let involved = o.involved_in(t.id);
        assert!(
            involved
                .iter()
                .any(|&c| o.node(c).kind == NodeKind::Concept),
            "topic {:?} involves no concept",
            t.phrase.surface()
        );
    }
    // CSD parents: child phrase ends with parent phrase.
    for c in o.nodes_of_kind(NodeKind::Concept) {
        for &child in o.children(c.id) {
            let child_node = o.node(child);
            if child_node.kind == NodeKind::Concept {
                assert!(
                    child_node.phrase.has_proper_suffix(&c.phrase),
                    "CSD edge violates suffix rule: {:?} -> {:?}",
                    c.phrase.surface(),
                    child_node.phrase.surface()
                );
            }
        }
    }
}

#[test]
fn service_versioning_over_pipeline_worlds() {
    // Publish a second pipeline build into the same service and check the
    // version counter + snapshot swap semantics on real data.
    let f = fixture();
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    let fresh = build_serving(&setup, &output);
    assert_eq!(fresh.service.version(), 1);
    let v2 = fresh.service.publish(
        (*f.serving.snapshot).clone(),
        (*f.serving.service.resources()).clone(),
    );
    assert_eq!(v2, 2);
    assert_eq!(fresh.service.version(), 2);
    // The republished frame serves the same answers as the original service.
    let q = "best phones".to_owned();
    let a = format!("{:?}", fresh.service.serve(&ServeRequest::Conceptualize { query: q.clone() }));
    let b = format!("{:?}", f.serving.service.serve(&ServeRequest::Conceptualize { query: q }));
    assert_eq!(a, b);
}

#[test]
fn incremental_driver_checkpoints_on_publish_and_restores_mid_stream() {
    // Durable-checkpoint loop: bootstrap + first ingest write checkpoints;
    // a "restarted process" (a driver restored from the file) folds the
    // remaining batch and must converge byte-identically with the driver
    // that never restarted — and its restored service must answer
    // byte-identically at the checkpointed version, immediately.
    use giant::apps::incremental::IncrementalDriver;
    use giant::incr::IncrementalState;

    let f = fixture();
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let stream = setup.corpus_stream();
    let batches = stream.split(&[0.6, 0.85]);
    let state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        GiantConfig::default(),
    );
    let base = (*f.serving.service.resources()).clone();
    let (mut driver, _) =
        IncrementalDriver::bootstrap(state, base, batches[0].clone(), 2).unwrap();
    let dir = std::env::temp_dir().join("giant-driver-ckpt-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("driver.ckpt");
    driver.set_checkpoint_path(Some(path.clone()));

    let report = driver.ingest(batches[1].clone()).unwrap();
    assert_eq!(report.version, 2);
    assert!(report.checkpoint_secs.is_some(), "checkpoint-on-publish must run");
    assert!(path.exists(), "checkpoint file must exist after ingest");

    // "Restart": restore from the file with the same annotator + models.
    let mut restored =
        IncrementalDriver::restore(&path, stream.annotator.clone(), models, 2).unwrap();
    assert_eq!(restored.service().version(), 2, "restore resumes the version sequence");
    assert_eq!(restored.state().folds(), driver.state().folds());
    assert_eq!(
        restored.state().cache_sizes(),
        driver.state().cache_sizes(),
        "warm caches must survive the restart"
    );
    // The restored frame answers byte-identically before any new fold.
    let probe = ServeRequest::Conceptualize { query: "best phones".into() };
    assert_eq!(
        format!("{:?}", driver.service().serve(&probe)),
        format!("{:?}", restored.service().serve(&probe)),
    );

    // Both drivers fold the final batch; live ontologies must agree byte
    // for byte (restored == never-restarted).
    driver.ingest(batches[2].clone()).unwrap();
    let report = restored.ingest(batches[2].clone()).unwrap();
    assert_eq!(report.version, 3);
    // Durability survives the restart it exists for: restore re-armed
    // checkpoint-on-publish to the same path, so this ingest re-wrote it.
    assert!(
        report.checkpoint_secs.is_some(),
        "restored driver must keep checkpointing on publish"
    );
    assert_eq!(
        giant::ontology::io::dump(driver.state().ontology()),
        giant::ontology::io::dump(restored.state().ontology()),
        "restored driver diverged from the never-restarted one"
    );
    assert_eq!(
        format!("{:?}", driver.service().serve(&probe)),
        format!("{:?}", restored.service().serve(&probe)),
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn failed_checkpoint_carries_the_report_and_does_not_lose_the_batch() {
    // Regression: a checkpoint failure fires *after* the fold has
    // published, so the error must carry the successful `IngestReport`
    // (the publish stands) rather than inviting the caller to retry and
    // double-fold the batch.
    use giant::apps::incremental::{IncrementalDriver, IngestError};
    use giant::incr::IncrementalState;

    let f = fixture();
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let stream = setup.corpus_stream();
    let batches = stream.split(&[0.6, 0.85]);
    let state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models,
        GiantConfig::default(),
    );
    let base = (*f.serving.service.resources()).clone();
    let (mut driver, _) =
        IncrementalDriver::bootstrap(state, base, batches[0].clone(), 2).unwrap();

    // A checkpoint path whose parent directory does not exist: the write
    // fails, the fold+publish do not.
    let bad = std::env::temp_dir()
        .join("giant-no-such-dir-for-ckpt")
        .join("missing")
        .join("driver.ckpt");
    driver.set_checkpoint_path(Some(bad));
    let folds_before = driver.state().folds();
    let err = driver.ingest(batches[1].clone()).unwrap_err();
    let IngestError::Checkpoint { report, source: _ } = err else {
        panic!("expected IngestError::Checkpoint, got a different variant")
    };
    // The report describes the ingest that *succeeded*: version 2 is
    // published and being served, the fold counter advanced exactly once.
    assert_eq!(report.version, 2);
    assert_eq!(driver.service().version(), 2, "the publish stands");
    assert_eq!(driver.state().folds(), folds_before + 1, "folded exactly once");

    // The batch is not lost and must not be retried: the *next* batch
    // folds normally once the checkpoint path is fixed, and the stream
    // converges as if the failure never happened.
    let good = std::env::temp_dir().join("giant-ckpt-after-failure.ckpt");
    driver.set_checkpoint_path(Some(good.clone()));
    let report = driver.ingest(batches[2].clone()).unwrap();
    assert_eq!(report.version, 3);
    assert!(report.checkpoint_secs.is_some());
    assert_eq!(driver.state().folds(), folds_before + 2);

    // Byte-identity with a never-failing control driver over the same
    // stream: the failed checkpoint neither lost nor re-applied batch 1.
    let state2 = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        setup.train_models(&ModelTrainConfig::small()).0,
        GiantConfig::default(),
    );
    let base2 = (*f.serving.service.resources()).clone();
    let (mut control, _) =
        IncrementalDriver::bootstrap(state2, base2, batches[0].clone(), 2).unwrap();
    control.ingest(batches[1].clone()).unwrap();
    control.ingest(batches[2].clone()).unwrap();
    assert_eq!(
        giant::ontology::io::dump(driver.state().ontology()),
        giant::ontology::io::dump(control.state().ontology()),
        "checkpoint failure perturbed the fold stream"
    );
    std::fs::remove_file(&good).ok();
}

#[test]
fn incremental_driver_streams_batches_into_fresh_versions() {
    // The end-to-end "log stream in, fresh versioned answers out" loop:
    // bootstrap the driver from the first half of a tiny world's corpus
    // stream, then ingest the remaining batches and watch versions, delta
    // stats and history depth behave.
    use giant::apps::incremental::IncrementalDriver;
    use giant::incr::IncrementalState;

    let f = fixture();
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let stream = setup.corpus_stream();
    let all_batches = stream.split(&[0.55, 0.8]);
    let mut batches = all_batches.clone().into_iter();
    let state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models,
        GiantConfig::default(),
    );
    // Base resources: borrow the fixture's trained serving models — the
    // driver refreshes all mined metadata per publish anyway.
    let base = (*f.serving.service.resources()).clone();
    let (mut driver, boot) =
        IncrementalDriver::bootstrap(state, base, batches.next().unwrap(), 2).unwrap();
    assert_eq!(boot.version, 1);
    assert!(boot.delta.added > 0, "bootstrap adds every node");
    assert_eq!(boot.delta.removed, 0);

    let service = std::sync::Arc::clone(driver.service());
    let before = service.version();
    for batch in batches {
        let report = driver.ingest(batch).unwrap();
        assert_eq!(report.version, service.version());
        assert!(report.retained_frames <= 2, "history must stay bounded");
        let nodes = driver.state().ontology().n_nodes();
        assert!(nodes > 0, "live ontology must never be empty mid-stream");
    }
    assert_eq!(service.version(), before + 2);

    // The final published frame answers from the full-corpus ontology:
    // byte-identical to a batch rebuild over the union of the batches (the
    // split may defer clicks across batches, so the union — not the
    // original stream order — is the reference).
    let union = giant::incr::union_input(
        stream.categories.clone(),
        stream.annotator.clone(),
        &all_batches,
    );
    let (models2, _) = setup.train_models(&ModelTrainConfig::small());
    let full = giant_core::run_pipeline(&union, &models2, &GiantConfig::default());
    assert_eq!(
        giant::ontology::io::dump(&full.ontology),
        giant::ontology::io::dump(driver.state().ontology()),
        "driver's live ontology must converge to the batch rebuild"
    );
    // And the service serves from it.
    let r = service.serve(&ServeRequest::Conceptualize {
        query: "best phones".into(),
    });
    assert!(r.is_ok());
}

//! Integration of the applications (§4) on top of a real pipeline output:
//! story trees, query understanding, and the feed simulator all consuming
//! the same constructed ontology.

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::apps::recommend::{simulate_feed, FeedSimConfig, TagStrategy};
use giant::apps::storytree::{build_story_tree, retrieve_related, EventSimilarity, StoryTreeConfig};
use giant::apps::QueryUnderstander;
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use giant::ontology::NodeKind;
use giant::text::embedding::{PhraseEncoder, SgnsConfig, WordEmbeddings};
use giant::text::{TfIdf, Vocab};
use std::sync::OnceLock;

struct Fixture {
    setup: GiantSetup,
    output: giant::mining::GiantOutput,
    vocab: Vocab,
    encoder: PhraseEncoder,
    tfidf: TfIdf,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let setup = GiantSetup::generate(WorldConfig::tiny());
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        let output = setup.run_pipeline(&models, &GiantConfig::default());
        let mut vocab = Vocab::new();
        let sents = setup.corpus.embedding_corpus(&mut vocab);
        let encoder = PhraseEncoder::new(WordEmbeddings::train(
            &sents,
            vocab.len(),
            &SgnsConfig::default(),
        ));
        let mut tfidf = TfIdf::new();
        for d in &setup.corpus.docs {
            let toks = giant::text::tokenize(&d.title);
            tfidf.add_doc(toks.iter().map(|s| s.as_str()));
        }
        Fixture {
            setup,
            output,
            vocab,
            encoder,
            tfidf,
        }
    })
}

fn story_events(f: &Fixture) -> Vec<giant::apps::StoryEvent> {
    f.output
        .mined_of_kind(NodeKind::Event)
        .into_iter()
        .map(|m| giant::apps::StoryEvent {
            node: m.node,
            tokens: m.tokens.clone(),
            trigger: m.trigger.clone(),
            entities: m.entities.clone(),
            day: m.day.unwrap_or(0),
        })
        .collect()
}

#[test]
fn story_tree_from_mined_events() {
    let f = fixture();
    let events = story_events(f);
    assert!(!events.is_empty(), "pipeline mined no events");
    let seed_idx = (0..events.len())
        .max_by_key(|&i| retrieve_related(&events[i], &events).len())
        .unwrap();
    let seed = events[seed_idx].clone();
    let related: Vec<_> = retrieve_related(&seed, &events)
        .into_iter()
        .cloned()
        .collect();
    let sim = EventSimilarity {
        encoder: &f.encoder,
        vocab: &f.vocab,
        tfidf: &f.tfidf,
        ontology: &f.output.ontology,
    };
    let tree = build_story_tree(seed, related, &sim, &StoryTreeConfig::default());
    assert!(tree.n_events() >= 1);
    // Events sorted by day, every event in exactly one branch.
    let days: Vec<u32> = tree.events.iter().map(|e| e.day).collect();
    let mut sorted = days.clone();
    sorted.sort_unstable();
    assert_eq!(days, sorted);
    let mut covered: Vec<usize> = tree.branches.iter().flatten().copied().collect();
    covered.sort_unstable();
    assert_eq!(covered, (0..tree.n_events()).collect::<Vec<_>>());
    // Rendering is non-empty and mentions a day marker.
    assert!(tree.render().contains("[day"));
}

#[test]
fn query_understanding_on_constructed_ontology() {
    let f = fixture();
    let qu = QueryUnderstander {
        ontology: &f.output.ontology,
        entity_nodes: &f.output.entity_nodes,
        max_results: 5,
    };
    // A concept query: find a mined concept with entity children.
    let with_children = f
        .output
        .mined_of_kind(NodeKind::Concept)
        .into_iter()
        .find(|m| {
            f.output
                .ontology
                .children_of(m.node)
                .iter()
                .any(|&c| f.output.ontology.node(c).kind == NodeKind::Entity)
        });
    if let Some(m) = with_children {
        let u = qu.understand(&format!("best {}", m.tokens.join(" ")));
        assert_eq!(u.concept, Some(m.node));
        assert!(!u.rewrites.is_empty(), "expected query rewrites");
        for r in &u.rewrites {
            assert!(r.starts_with("best "));
        }
    }
    // An entity query over a correlate-connected entity.
    let entity_with_correlates = f
        .setup
        .world
        .entities
        .iter()
        .map(|e| e.tokens.join(" "))
        .find(|s| {
            f.output
                .entity_nodes
                .get(s)
                .map(|n| !f.output.ontology.correlates_of(*n).is_empty())
                .unwrap_or(false)
        });
    if let Some(surface) = entity_with_correlates {
        let u = qu.understand(&format!("{surface} review"));
        assert!(u.entity.is_some());
        assert!(!u.recommendations.is_empty());
    }
}

#[test]
fn feed_simulation_with_ground_truth_tags() {
    let f = fixture();
    let docs = giant::apps::ground_truth_tags(&f.setup.world, &f.setup.corpus, &|kind, id| {
        giant::ontology::NodeId((kind.index() * 100_000 + id) as u32)
    });
    let cfg = FeedSimConfig {
        n_users: 60,
        ..FeedSimConfig::default()
    };
    let all = simulate_feed(&f.setup.world, &f.setup.corpus, &docs, &cfg, TagStrategy::AllTags);
    let base = simulate_feed(
        &f.setup.world,
        &f.setup.corpus,
        &docs,
        &cfg,
        TagStrategy::CategoryEntity,
    );
    assert!(all.impressions > 0);
    assert!(
        all.avg_ctr > base.avg_ctr,
        "all-tags {:.2} must beat category+entity {:.2}",
        all.avg_ctr,
        base.avg_ctr
    );
}

#[test]
fn derived_nodes_have_valid_structure() {
    let f = fixture();
    let o = &f.output.ontology;
    // Every topic (CPD output) must isA-parent at least one event and
    // involve a concept whose phrase is contained in the topic phrase.
    for t in o.nodes_of_kind(NodeKind::Topic) {
        let children = o.children_of(t.id);
        assert!(
            children
                .iter()
                .any(|&c| o.node(c).kind == NodeKind::Event),
            "topic {:?} has no event instances",
            t.phrase.surface()
        );
        let involved = o.involved_in(t.id);
        assert!(
            involved
                .iter()
                .any(|&c| o.node(c).kind == NodeKind::Concept),
            "topic {:?} involves no concept",
            t.phrase.surface()
        );
    }
    // CSD parents: child phrase ends with parent phrase.
    for c in o.nodes_of_kind(NodeKind::Concept) {
        for child in o.children_of(c.id) {
            let child_node = o.node(child);
            if child_node.kind == NodeKind::Concept {
                assert!(
                    child_node.phrase.has_proper_suffix(&c.phrase),
                    "CSD edge violates suffix rule: {:?} -> {:?}",
                    c.phrase.surface(),
                    child_node.phrase.surface()
                );
            }
        }
    }
}

//! Persistence-surface hardening: round-trip properties for both
//! serialisations of the ontology — the text dump (`giant::ontology::io`,
//! now with token escaping) and the binary checkpoint format
//! (`giant::ontology::binio`) — over **adversarial** random ontologies
//! whose phrases contain tabs, newlines, CRs, spaces-in-token, empty
//! tokens and backslashes.
//!
//! The headline contracts:
//!
//! * `dump(load(dump(o))) == dump(o)` and phrases survive token-exactly
//!   (the unescaped format silently corrupted framing on `\t`/`\n`);
//! * `dump(restore(checkpoint(o))) == dump(o)` for the binio codec;
//! * a restored `OntologySnapshot` answers every traversal and lookup
//!   identically to the freshly frozen one;
//! * any single corrupted byte in a checkpoint container is *detected*
//!   (typed error), never silently served.

use giant::ontology::binio::{
    read_ontology, read_snapshot, write_ontology, write_snapshot, Reader, SectionFile, Writer,
};
use giant::ontology::{io, NodeId, NodeKind, Ontology, OntologySnapshot, Phrase};
use proptest::prelude::*;

/// Characters that attack the text format's framing: field separator,
/// record separator, token separator, the escape character itself, plus
/// ordinary letters and the escape-alphabet letters as literals.
const PALETTE: [&str; 10] = ["a", "bc", "\t", "\n", "\r", " ", "\\", "e", "_", "x"];

/// One adversarial token: 0–3 palette pieces concatenated (may be empty).
fn arb_token() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..3)
        .prop_map(|ixs| ixs.into_iter().map(|i| PALETTE[i]).collect())
}

/// One adversarial phrase: 1–3 tokens.
fn arb_phrase() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_token(), 1..3)
}

/// Recipe for a random ontology: nodes with adversarial phrases, aliases,
/// and edges of every kind (cycle-rejected edges are simply skipped).
#[derive(Debug, Clone)]
struct OntologyRecipe {
    nodes: Vec<(usize, Vec<String>, u32)>,
    aliases: Vec<(usize, Vec<String>)>,
    edges: Vec<(usize, usize, usize, u32)>,
}

fn arb_ontology() -> impl Strategy<Value = Ontology> {
    (
        proptest::collection::vec((0usize..5, arb_phrase(), 1u32..100), 1..12),
        proptest::collection::vec((0usize..12, arb_phrase()), 0..6),
        proptest::collection::vec((0usize..12, 0usize..12, 0usize..3, 1u32..10), 0..16),
    )
        .prop_map(|(nodes, aliases, edges)| build_ontology(OntologyRecipe { nodes, aliases, edges }))
}

fn build_ontology(recipe: OntologyRecipe) -> Ontology {
    let mut o = Ontology::new();
    let mut ids: Vec<NodeId> = Vec::new();
    for (kind, tokens, support) in recipe.nodes {
        let kind = NodeKind::ALL[kind];
        let id = if kind == NodeKind::Event {
            o.add_event(Phrase::new(tokens), f64::from(support) * 0.5, support)
        } else {
            o.add_node(kind, Phrase::new(tokens), f64::from(support) * 0.5)
        };
        ids.push(id);
    }
    for (node, tokens) in recipe.aliases {
        let id = ids[node % ids.len()];
        o.add_alias(id, Phrase::new(tokens));
    }
    for (a, b, kind, w) in recipe.edges {
        let (a, b) = (ids[a % ids.len()], ids[b % ids.len()]);
        let w = f64::from(w) * 0.25;
        // Cycles / self-loops are legitimately rejected; skip them.
        let _ = match kind {
            0 => o.add_is_a(a, b, w),
            1 => o.add_involve(a, b, w),
            _ => o.add_correlate(a, b, w),
        };
    }
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Text dump/load round trip over adversarial surfaces: framing
    /// survives, phrases survive token-exactly, and the round trip is a
    /// fixed point.
    #[test]
    fn text_dump_round_trips_adversarial_ontologies(o in arb_ontology()) {
        let text = io::dump(&o);
        let o2 = io::load(&text).expect("escaped dump must always parse");
        prop_assert_eq!(o.n_nodes(), o2.n_nodes());
        for (a, b) in o.nodes().iter().zip(o2.nodes()) {
            prop_assert_eq!(&a.phrase, &b.phrase, "phrase tokens must survive exactly");
            prop_assert_eq!(&a.aliases, &b.aliases);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.support.to_bits(), b.support.to_bits());
        }
        prop_assert_eq!(&o.stats(), &o2.stats());
        prop_assert_eq!(text, io::dump(&o2), "round trip must be a fixed point");
    }

    /// The tentpole contract: `dump(restore(checkpoint(o))) == dump(o)`
    /// byte-identically, through the binary codec.
    #[test]
    fn binio_ontology_round_trips_dump_identically(o in arb_ontology()) {
        let mut w = Writer::new();
        write_ontology(&o, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let o2 = read_ontology(&mut r).expect("binio round trip must parse");
        r.expect_exhausted().expect("no trailing bytes");
        prop_assert_eq!(io::dump(&o), io::dump(&o2));
        // Adjacency is structurally identical, both directions.
        for i in 0..o.n_nodes() {
            let id = NodeId(i as u32);
            prop_assert_eq!(o.out_edges(id), o2.out_edges(id));
            prop_assert_eq!(o.in_edges(id), o2.in_edges(id));
        }
        // Deterministic bytes: same ontology, same serialisation.
        let mut w2 = Writer::new();
        write_ontology(&o2, &mut w2);
        prop_assert_eq!(bytes, w2.into_bytes());
    }

    /// A restored snapshot answers every traversal, ranking and lookup
    /// identically to the freshly frozen one — warm start can skip the
    /// freeze without changing a single served byte.
    #[test]
    fn restored_snapshot_answers_identically(o in arb_ontology()) {
        let s = OntologySnapshot::freeze(&o);
        let mut w = Writer::new();
        write_snapshot(&s, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let s2 = read_snapshot(&mut r).expect("snapshot round trip must parse");
        r.expect_exhausted().expect("no trailing bytes");
        prop_assert_eq!(s.n_nodes(), s2.n_nodes());
        for i in 0..s.n_nodes() {
            let id = NodeId(i as u32);
            prop_assert_eq!(s.children(id), s2.children(id));
            prop_assert_eq!(s.parents(id), s2.parents(id));
            prop_assert_eq!(s.involved_in(id), s2.involved_in(id));
            prop_assert_eq!(s.involving(id), s2.involving(id));
            prop_assert_eq!(s.correlates(id), s2.correlates(id));
            prop_assert_eq!(s.ranked_children(id), s2.ranked_children(id));
            prop_assert_eq!(s.ranked_correlates(id), s2.ranked_correlates(id));
            prop_assert_eq!(s.ancestors(id), s2.ancestors(id));
            prop_assert_eq!(s.descendants(id), s2.descendants(id));
            let node = s.node(id);
            prop_assert_eq!(
                s.find(node.kind, &node.phrase.surface()),
                s2.find(node.kind, &node.phrase.surface())
            );
            // Contained-phrase lookup through the inverted index, with a
            // window that embeds this node's surface.
            let mut window = vec!["zzz".to_owned()];
            window.extend(node.phrase.tokens.iter().cloned());
            window.push("zzz".to_owned());
            for kind in NodeKind::ALL {
                prop_assert_eq!(
                    s.find_contained(&window, kind, true),
                    s2.find_contained(&window, kind, true)
                );
                prop_assert_eq!(
                    s.contained_nodes(&window, kind, false),
                    s2.contained_nodes(&window, kind, false)
                );
            }
        }
        prop_assert_eq!(s.stats(), s2.stats());
        for kind in NodeKind::ALL {
            prop_assert_eq!(s.ids_of_kind(kind), s2.ids_of_kind(kind));
        }
    }

    /// Corruption detection: flipping any single byte of a checkpoint
    /// container makes reading it fail with a typed error — never a
    /// silently different ontology.
    #[test]
    fn any_single_byte_flip_is_detected(o in arb_ontology(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut file = SectionFile::new();
        let mut w = Writer::new();
        write_ontology(&o, &mut w);
        file.add_writer("ontology", w);
        let mut bytes = file.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        match SectionFile::from_bytes(&bytes) {
            Err(_) => {} // detected at the container layer
            Ok(parsed) => {
                // A flip inside a stored length that still frames
                // consistently is impossible (checksums cover name +
                // payload; trailing bytes are rejected) — reaching here
                // would mean silent corruption.
                let mut r = parsed.section("ontology").expect("section exists if parse succeeded");
                let _ = read_ontology(&mut r);
                prop_assert!(false, "byte flip at {} went undetected", pos);
            }
        }
    }
}

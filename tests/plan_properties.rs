//! Property tests for the cluster-planning pass (`giant_graph::plan`):
//! on arbitrary click graphs, the work items' owned query sets form a
//! **partition** of the query space — pairwise disjoint, jointly covering
//! every query id. This is the invariant that makes the execute phase safe
//! to parallelize: each query's attention is attributed by exactly one
//! work item, in plan order.
//!
//! Determinism: the vendored proptest runner derives every case from a
//! fixed workspace seed, so CI replays the same stream.

use giant::graph::{plan_clusters, plan_clusters_parallel, ClickGraph, ClusterConfig, DocId};
use giant::text::StopWords;
use proptest::prelude::*;

/// Builds a click graph from raw (query word-pair, doc, clicks) triples.
/// Query texts are drawn from a small vocabulary so clusters genuinely
/// overlap, which is where coverage bugs would hide.
fn build_graph(triples: &[(usize, usize, usize, f64)]) -> ClickGraph {
    const WORDS: [&str; 8] = [
        "miyazaki", "films", "electric", "cars", "budget", "phones", "travel", "guide",
    ];
    let mut g = ClickGraph::new();
    for &(w1, w2, doc, clicks) in triples {
        let query = format!("{} {}", WORDS[w1 % WORDS.len()], WORDS[w2 % WORDS.len()]);
        g.add_clicks(&query, DocId((doc % 12) as u32), clicks);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Owned sets are pairwise disjoint and cover every query id.
    #[test]
    fn owned_sets_partition_the_query_space(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..40,
        )
    ) {
        let g = build_graph(&triples);
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        let mut owned_by = vec![usize::MAX; g.n_queries()];
        for (i, item) in plan.items.iter().enumerate() {
            for q in &item.owned {
                prop_assert_eq!(
                    owned_by[q.index()],
                    usize::MAX,
                    "query {} owned by items {} and {}",
                    q.index(),
                    owned_by[q.index()],
                    i
                );
                owned_by[q.index()] = i;
            }
        }
        for (qi, owner) in owned_by.iter().enumerate() {
            prop_assert!(*owner != usize::MAX, "query {} never owned", qi);
        }
        prop_assert_eq!(plan.owned_queries(), g.n_queries());
    }

    /// Every item's seed owns itself, owned ⊆ cluster, and seeds ascend in
    /// id order (the deterministic plan/merge order).
    #[test]
    fn items_are_well_formed_and_plan_ordered(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..40,
        )
    ) {
        let g = build_graph(&triples);
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        let mut prev_seed = None;
        for item in &plan.items {
            prop_assert_eq!(item.owned.first(), Some(&item.seed));
            prop_assert_eq!(item.cluster.seed, item.seed);
            let cluster_qs: std::collections::HashSet<_> =
                item.cluster.query_ids().into_iter().collect();
            for q in &item.owned {
                prop_assert!(cluster_qs.contains(q), "owned query outside its cluster");
            }
            if let Some(p) = prev_seed {
                prop_assert!(p < item.seed.index(), "seeds must ascend in plan order");
            }
            prev_seed = Some(item.seed.index());
        }
    }

    /// Planning is a pure function of the graph: two plans over the same
    /// graph are identical item by item.
    #[test]
    fn planning_is_deterministic(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..30,
        )
    ) {
        let g = build_graph(&triples);
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let a = plan_clusters(&g, &sw, &cfg);
        let b = plan_clusters(&g, &sw, &cfg);
        prop_assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            prop_assert_eq!(x.seed, y.seed);
            prop_assert_eq!(&x.owned, &y.owned);
            prop_assert_eq!(x.cluster.query_ids(), y.cluster.query_ids());
            prop_assert_eq!(x.cluster.doc_ids(), y.cluster.doc_ids());
        }
    }

    /// The speculative parallel planner emits the sequential plan exactly,
    /// at every worker count — discarded speculation never leaks.
    #[test]
    fn parallel_planning_equals_sequential(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..30,
        ),
        threads in 2usize..8,
    ) {
        let g = build_graph(&triples);
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let seq = plan_clusters(&g, &sw, &cfg);
        let par = plan_clusters_parallel(&g, &sw, &cfg, threads);
        prop_assert_eq!(par.items.len(), seq.items.len());
        for (x, y) in par.items.iter().zip(&seq.items) {
            prop_assert_eq!(x.seed, y.seed);
            prop_assert_eq!(&x.owned, &y.owned);
            prop_assert_eq!(x.cluster.query_ids(), y.cluster.query_ids());
            prop_assert_eq!(x.cluster.doc_ids(), y.cluster.doc_ids());
        }
    }
}

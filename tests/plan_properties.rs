//! Property tests for the cluster-planning pass (`giant_graph::plan`):
//! on arbitrary click graphs, the work items' owned query sets form a
//! **partition** of the query space — pairwise disjoint, jointly covering
//! every query id. This is the invariant that makes the execute phase safe
//! to parallelize: each query's attention is attributed by exactly one
//! work item, in plan order.
//!
//! The same file covers the K-way *shard* partition (`giant_graph::shard`),
//! which makes the sharded pipeline safe: shards disjointly cover queries
//! **and** docs, the boundary report accounts for every severed edge
//! exactly, and the whole split is independent of click/intern order.
//!
//! Determinism: the vendored proptest runner derives every case from a
//! fixed workspace seed, so CI replays the same stream.

use giant::graph::{
    partition, plan_clusters, plan_clusters_parallel, ClickGraph, ClusterConfig, DocId,
};
use giant::text::StopWords;
use proptest::prelude::*;

/// Builds a click graph from raw (query word-pair, doc, clicks) triples.
/// Query texts are drawn from a small vocabulary so clusters genuinely
/// overlap, which is where coverage bugs would hide.
fn build_graph(triples: &[(usize, usize, usize, f64)]) -> ClickGraph {
    const WORDS: [&str; 8] = [
        "miyazaki", "films", "electric", "cars", "budget", "phones", "travel", "guide",
    ];
    let mut g = ClickGraph::new();
    for &(w1, w2, doc, clicks) in triples {
        let query = format!("{} {}", WORDS[w1 % WORDS.len()], WORDS[w2 % WORDS.len()]);
        g.add_clicks(&query, DocId((doc % 12) as u32), clicks);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Owned sets are pairwise disjoint and cover every query id.
    #[test]
    fn owned_sets_partition_the_query_space(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..40,
        )
    ) {
        let g = build_graph(&triples);
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        let mut owned_by = vec![usize::MAX; g.n_queries()];
        for (i, item) in plan.items.iter().enumerate() {
            for q in &item.owned {
                prop_assert_eq!(
                    owned_by[q.index()],
                    usize::MAX,
                    "query {} owned by items {} and {}",
                    q.index(),
                    owned_by[q.index()],
                    i
                );
                owned_by[q.index()] = i;
            }
        }
        for (qi, owner) in owned_by.iter().enumerate() {
            prop_assert!(*owner != usize::MAX, "query {} never owned", qi);
        }
        prop_assert_eq!(plan.owned_queries(), g.n_queries());
    }

    /// Every item's seed owns itself, owned ⊆ cluster, and seeds ascend in
    /// id order (the deterministic plan/merge order).
    #[test]
    fn items_are_well_formed_and_plan_ordered(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..40,
        )
    ) {
        let g = build_graph(&triples);
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        let mut prev_seed = None;
        for item in &plan.items {
            prop_assert_eq!(item.owned.first(), Some(&item.seed));
            prop_assert_eq!(item.cluster.seed, item.seed);
            let cluster_qs: std::collections::HashSet<_> =
                item.cluster.query_ids().into_iter().collect();
            for q in &item.owned {
                prop_assert!(cluster_qs.contains(q), "owned query outside its cluster");
            }
            if let Some(p) = prev_seed {
                prop_assert!(p < item.seed.index(), "seeds must ascend in plan order");
            }
            prev_seed = Some(item.seed.index());
        }
    }

    /// Planning is a pure function of the graph: two plans over the same
    /// graph are identical item by item.
    #[test]
    fn planning_is_deterministic(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..30,
        )
    ) {
        let g = build_graph(&triples);
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let a = plan_clusters(&g, &sw, &cfg);
        let b = plan_clusters(&g, &sw, &cfg);
        prop_assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            prop_assert_eq!(x.seed, y.seed);
            prop_assert_eq!(&x.owned, &y.owned);
            prop_assert_eq!(x.cluster.query_ids(), y.cluster.query_ids());
            prop_assert_eq!(x.cluster.doc_ids(), y.cluster.doc_ids());
        }
    }

    /// The speculative parallel planner emits the sequential plan exactly,
    /// at every worker count — discarded speculation never leaks.
    #[test]
    fn parallel_planning_equals_sequential(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..30,
        ),
        threads in 2usize..8,
    ) {
        let g = build_graph(&triples);
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let seq = plan_clusters(&g, &sw, &cfg);
        let par = plan_clusters_parallel(&g, &sw, &cfg, threads);
        prop_assert_eq!(par.items.len(), seq.items.len());
        for (x, y) in par.items.iter().zip(&seq.items) {
            prop_assert_eq!(x.seed, y.seed);
            prop_assert_eq!(&x.owned, &y.owned);
            prop_assert_eq!(x.cluster.query_ids(), y.cluster.query_ids());
            prop_assert_eq!(x.cluster.doc_ids(), y.cluster.doc_ids());
        }
    }
}

// ---------------------------------------------------------------------------
// K-way shard partition (`giant_graph::shard::partition`).
// ---------------------------------------------------------------------------

/// Doc-shard hints for a 12-doc universe, folded into `0..k`.
fn fold_hints(raw: &[usize], k: usize) -> Vec<usize> {
    raw.iter().map(|&h| h % k).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The K shards disjointly cover every query and every doc of the
    /// universe, with strictly ascending id maps, and each shard graph
    /// contains only edges whose endpoints were both assigned to it.
    #[test]
    fn shards_disjointly_cover_queries_and_docs(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..40,
        ),
        raw_hints in proptest::collection::vec(0usize..4, 12),
        k in 1usize..5,
    ) {
        let g = build_graph(&triples);
        let hints = fold_hints(&raw_hints, k);
        let plan = partition(&g, &hints, k);
        prop_assert_eq!(plan.shards.len(), k);

        let mut query_owner = vec![usize::MAX; g.n_queries()];
        let mut doc_owner = vec![usize::MAX; hints.len()];
        for (s, shard) in plan.shards.iter().enumerate() {
            prop_assert!(shard.query_map.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(shard.doc_map.windows(2).all(|w| w[0] < w[1]));
            for &q in &shard.query_map {
                prop_assert_eq!(query_owner[q as usize], usize::MAX,
                    "query {} in two shards", q);
                query_owner[q as usize] = s;
            }
            for &d in &shard.doc_map {
                prop_assert_eq!(doc_owner[d as usize], usize::MAX,
                    "doc {} in two shards", d);
                doc_owner[d as usize] = s;
            }
        }
        for (q, &owner) in query_owner.iter().enumerate() {
            prop_assert!(owner != usize::MAX, "query {} unassigned", q);
            prop_assert_eq!(owner, plan.query_shard[q]);
        }
        for (d, &owner) in doc_owner.iter().enumerate() {
            prop_assert!(owner != usize::MAX, "doc {} unassigned", d);
            prop_assert_eq!(owner, plan.doc_shard[d]);
        }

        // Every edge of a shard graph stays inside the shard, and maps back
        // to an edge of the global graph with the exact same weight.
        for (s, shard) in plan.shards.iter().enumerate() {
            for lq in shard.graph.query_ids() {
                let gq = shard.query_map[lq.index()] as usize;
                prop_assert_eq!(plan.query_shard[gq], s);
                prop_assert_eq!(
                    shard.graph.query_text(lq),
                    g.query_text(giant::graph::QueryId(gq as u32))
                );
                for &(ld, c) in shard.graph.docs_of(lq) {
                    let gd = shard.doc_map[ld.index()];
                    prop_assert_eq!(plan.doc_shard[gd as usize], s);
                    let global_row = g.docs_of(giant::graph::QueryId(gq as u32));
                    prop_assert!(
                        global_row.iter().any(|&(d, gc)|
                            d == DocId(gd) && gc.to_bits() == c.to_bits()),
                        "shard edge not found in global graph"
                    );
                }
            }
        }
    }

    /// The boundary report is exact: a global edge is reported iff its
    /// endpoints landed on different shards, every edge is either kept by
    /// exactly one shard or reported (never both, never neither), and the
    /// severed mass is the sum of reported clicks.
    #[test]
    fn boundary_report_accounts_for_every_severed_edge(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..40,
        ),
        raw_hints in proptest::collection::vec(0usize..4, 12),
        k in 1usize..5,
    ) {
        let g = build_graph(&triples);
        let hints = fold_hints(&raw_hints, k);
        let plan = partition(&g, &hints, k);

        let reported: std::collections::HashSet<(u32, u32)> = plan
            .boundary
            .edges
            .iter()
            .map(|e| (e.query.0, e.doc.0))
            .collect();
        prop_assert_eq!(reported.len(), plan.boundary.edges.len(),
            "boundary edges must be unique");

        let mut total_edges = 0usize;
        for q in g.query_ids() {
            for &(d, c) in g.docs_of(q) {
                total_edges += 1;
                let spans = plan.query_shard[q.index()] != plan.doc_shard[d.index()];
                prop_assert_eq!(
                    reported.contains(&(q.0, d.0)),
                    spans,
                    "edge ({}, {}) misreported", q.0, d.0
                );
                if spans {
                    let e = plan.boundary.edges.iter()
                        .find(|e| e.query == q && e.doc == d).unwrap();
                    prop_assert_eq!(e.clicks.to_bits(), c.to_bits());
                    prop_assert_eq!(e.query_shard, plan.query_shard[q.index()]);
                    prop_assert_eq!(e.doc_shard, plan.doc_shard[d.index()]);
                }
            }
        }
        let kept: usize = plan.shards.iter()
            .map(|s| s.graph.query_ids().map(|q| s.graph.docs_of(q).len()).sum::<usize>())
            .sum();
        prop_assert_eq!(kept + plan.boundary.edges.len(), total_edges,
            "every edge is kept by one shard xor severed");
        // fold from 0.0, not `.sum()`: f64's Sum identity is -0.0, which
        // differs bit-wise from the report's 0.0-seeded accumulation when
        // no edge was severed.
        let mass: f64 = plan.boundary.edges.iter().fold(0.0, |a, e| a + e.clicks);
        prop_assert_eq!(mass.to_bits(), plan.boundary.mass.to_bits());
        prop_assert!(plan.boundary.severed_fraction() <= 1.0 + f64::EPSILON);
    }

    /// Assignment is a pure function of graph *content*: building the same
    /// distinct (query, doc, clicks) set in reverse order — different
    /// intern ids, different edge-row orders, different f64 accumulation
    /// orders — yields the same shard per query text and the same severed
    /// edge multiset.
    #[test]
    fn partition_is_click_order_independent(
        triples in proptest::collection::vec(
            (0usize..8, 0usize..8, 0usize..12, 1.0f64..50.0),
            1..30,
        ),
        raw_hints in proptest::collection::vec(0usize..4, 12),
        k in 1usize..5,
    ) {
        // Distinct (query, doc) pairs so both insertion orders produce the
        // same graph content (duplicate pairs would accumulate weight in
        // arrival order and change the content itself).
        let mut seen = std::collections::HashSet::new();
        let distinct: Vec<_> = triples
            .into_iter()
            .filter(|&(w1, w2, d, _)| seen.insert((w1 % 8, w2 % 8, d % 12)))
            .collect();
        let reversed: Vec<_> = distinct.iter().rev().copied().collect();
        let g1 = build_graph(&distinct);
        let g2 = build_graph(&reversed);
        let hints = fold_hints(&raw_hints, k);
        let p1 = partition(&g1, &hints, k);
        let p2 = partition(&g2, &hints, k);

        for q in g1.query_ids() {
            let text = g1.query_text(q);
            let q2 = g2.query_id(text).expect("same content");
            prop_assert_eq!(
                p1.query_shard[q.index()],
                p2.query_shard[q2.index()],
                "assignment of {:?} depends on click order", text
            );
        }
        let severed = |p: &giant::graph::ShardPlan, g: &ClickGraph| {
            let mut v: Vec<(String, u32, u64)> = p.boundary.edges.iter()
                .map(|e| (g.query_text(e.query).to_owned(), e.doc.0, e.clicks.to_bits()))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(severed(&p1, &g1), severed(&p2, &g2));
    }
}

//! The sharded-build contract (`GiantConfig::shards`, DESIGN.md §14):
//!
//! * **K = 1 is the identity**: an explicit single-shard config runs the
//!   classic pipeline path and reproduces the committed golden byte for
//!   byte — sharding at K=1 is structurally not a behaviour change.
//! * **K > 1 is deterministic**: for a fixed K the federated ontology is
//!   byte-identical across runs and across worker counts (the shared
//!   worker budget reshapes scheduling only).
//! * **Cached ≡ uncached**: a sharded `run_pipeline_cached` — cold or
//!   warm — produces the same bytes as the uncached sharded run, and
//!   populates one cache slot per shard.
//! * **Serving equivalence at any K**: the read-optimized snapshot of a
//!   federated ontology answers exactly like the legacy linear scans over
//!   the mutable store (the same invariant `serving_equivalence` pins for
//!   K=1).
//! * **Incremental convergence at K > 1**: folding a split stream under
//!   `shards = 2` — including through a full binary checkpoint
//!   restart — converges byte-identically to the sharded full rebuild.

use giant::adapter::{GiantSetup, ModelTrainConfig};
use giant::data::WorldConfig;
use giant::incr::{union_input, Checkpoint, IncrementalState};
use giant::mining::{GiantConfig, GiantModels, PipelineCaches};
use giant::ontology::binio::SectionFile;
use giant::ontology::{NodeId, NodeKind, Ontology, OntologySnapshot};
use std::sync::OnceLock;

mod common;

/// World + trained models, built once per test binary (training dominates
/// the suite's wall-clock; every test reruns only the pipeline).
fn harness() -> &'static (GiantSetup, GiantModels) {
    static H: OnceLock<(GiantSetup, GiantModels)> = OnceLock::new();
    H.get_or_init(|| {
        let setup = GiantSetup::generate(WorldConfig::tiny());
        let (models, _) = setup.train_models(&ModelTrainConfig::small());
        (setup, models)
    })
}

fn dump_at(shards: usize, threads: usize) -> String {
    let (setup, models) = harness();
    let cfg = GiantConfig {
        shards,
        threads,
        ..GiantConfig::default()
    };
    giant::ontology::io::dump(&setup.run_pipeline(models, &cfg).ontology)
}

/// An explicit `shards: 1` (and the degenerate `shards: 0`) must travel
/// the classic code path and reproduce the committed golden exactly.
#[test]
fn explicit_single_shard_reproduces_the_golden_ontology() {
    let golden = include_str!("golden/ontology_seed42.txt");
    for shards in [0usize, 1] {
        let dump = dump_at(shards, 1);
        if dump != golden {
            let at = common::first_divergence(&dump, golden, "sharded cfg", "golden");
            panic!("shards={shards} diverged from the golden; first divergence at {at}");
        }
    }
}

/// For each K > 1 the federated output is byte-stable across repeated runs
/// and across thread counts — and genuinely non-empty.
#[test]
fn sharded_output_is_deterministic_and_thread_invariant() {
    for k in [2usize, 4] {
        let base = dump_at(k, 1);
        assert!(!base.is_empty(), "K={k} produced an empty ontology dump");
        assert_eq!(base, dump_at(k, 1), "K={k} not reproducible at threads=1");
        for threads in [2usize, 4] {
            let dump = dump_at(k, threads);
            if dump != base {
                let at = common::first_divergence(
                    &base,
                    &dump,
                    "threads=1",
                    &format!("threads={threads}"),
                );
                panic!("K={k} output depends on thread count; first divergence at {at}");
            }
        }
    }
}

/// The cached sharded run — cold caches, then warm — equals the uncached
/// sharded run byte for byte, and maintains one slot per shard.
#[test]
fn sharded_cached_run_equals_uncached() {
    let (setup, models) = harness();
    let cfg = GiantConfig {
        shards: 2,
        ..GiantConfig::default()
    };
    let input = setup.pipeline_input();
    let uncached =
        giant::ontology::io::dump(&giant::mining::run_pipeline(&input, models, &cfg).ontology);
    let mut caches = PipelineCaches::new();
    let cold = giant::ontology::io::dump(
        &giant::mining::run_pipeline_cached(&input, models, &cfg, &mut caches).ontology,
    );
    assert_eq!(cold, uncached, "cold cached sharded run diverged");
    assert_eq!(caches.shard_slots().len(), 2, "one cache slot per shard");
    assert!(
        caches.cached_plans() > 0 && caches.cached_minings() > 0,
        "sharded run must fill the per-shard caches"
    );
    let warm = giant::ontology::io::dump(
        &giant::mining::run_pipeline_cached(&input, models, &cfg, &mut caches).ontology,
    );
    assert_eq!(warm, uncached, "warm cached sharded run diverged");
}

/// The legacy contained-phrase scan (the reference the serving-equivalence
/// suite uses), applied to a federated ontology.
fn ref_find_contained(o: &Ontology, query_tokens: &[String], kind: NodeKind) -> Option<NodeId> {
    let mut best: Option<(usize, NodeId)> = None;
    for node in o.nodes_of_kind(kind) {
        let toks = &node.phrase.tokens;
        if toks.is_empty() || toks.len() > query_tokens.len() {
            continue;
        }
        let contained = (0..=query_tokens.len() - toks.len())
            .any(|i| &query_tokens[i..i + toks.len()] == toks.as_slice());
        if contained && best.map(|(l, _)| toks.len() > l).unwrap_or(true) {
            best = Some((toks.len(), node.id));
        }
    }
    best.map(|(_, id)| id)
}

/// Serving equivalence holds at every K: the frozen snapshot of a
/// federated ontology answers phrase lookups, kind listings and stats
/// exactly like the mutable store.
#[test]
fn federated_snapshot_serves_equivalently_at_k2_and_k4() {
    let (setup, models) = harness();
    for k in [2usize, 4] {
        let cfg = GiantConfig {
            shards: k,
            ..GiantConfig::default()
        };
        let output = setup.run_pipeline(models, &cfg);
        let snap = OntologySnapshot::freeze(&output.ontology);
        assert_eq!(snap.n_nodes(), output.ontology.n_nodes());
        assert_eq!(snap.stats(), &output.ontology.stats(), "stats diverged at K={k}");
        for kind in NodeKind::ALL {
            let legacy: Vec<NodeId> =
                output.ontology.nodes_of_kind(kind).map(|n| n.id).collect();
            assert_eq!(snap.ids_of_kind(kind), legacy.as_slice());
        }
        // Probe with real surfaces: every doc title plus every mined phrase.
        let mut probes: Vec<Vec<String>> = setup
            .corpus
            .docs
            .iter()
            .map(|d| giant::text::tokenize(&d.title))
            .collect();
        probes.extend(output.mined.iter().map(|m| m.tokens.clone()));
        for tokens in &probes {
            for kind in [NodeKind::Concept, NodeKind::Entity, NodeKind::Event] {
                assert_eq!(
                    snap.find_contained(tokens, kind, false),
                    ref_find_contained(&output.ontology, tokens, kind),
                    "lookup diverged at K={k} for {kind:?} on {tokens:?}"
                );
            }
        }
    }
}

/// Incremental folding under `shards = 2` converges byte-identically to
/// the sharded full rebuild, with and without a binary checkpoint restart
/// between the folds — the K>1 extension of the incremental-convergence
/// and crash-recovery contracts.
#[test]
fn incremental_fold_converges_and_restores_at_k2() {
    let (setup, models) = harness();
    let cfg = GiantConfig {
        shards: 2,
        ..GiantConfig::default()
    };
    let stream = setup.corpus_stream();
    let batches = stream.split(&[0.6]);

    let full_input = union_input(stream.categories.clone(), stream.annotator.clone(), &batches);
    let full = giant::ontology::io::dump(
        &giant::mining::run_pipeline(&full_input, models, &cfg).ontology,
    );

    let mut state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        cfg,
    );
    for batch in &batches {
        state.fold(batch.clone()).expect("split batches fold");
    }
    let folded = giant::ontology::io::dump(state.ontology());
    if folded != full {
        let at = common::first_divergence(&full, &folded, "full rebuild", "incremental");
        panic!("K=2 incremental fold diverged from sharded rebuild; first divergence at {at}");
    }

    // Checkpoint restart between the folds: serialise → bytes → restore.
    let mut state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        cfg,
    );
    state.fold(batches[0].clone()).expect("bootstrap batch folds");
    assert_eq!(
        state.caches().shard_slots().len(),
        2,
        "sharded fold must leave one warm slot per shard"
    );
    let mut file = SectionFile::new();
    state.checkpoint().add_sections(&mut file);
    drop(state);
    let reread = SectionFile::from_bytes(&file.to_bytes()).expect("container round trip");
    let mut state = Checkpoint::from_sections(&reread)
        .expect("sharded checkpoint parses")
        .restore(stream.annotator.clone(), models.clone());
    assert_eq!(state.caches().shard_slots().len(), 2, "slots survive restore");
    state.fold(batches[1].clone()).expect("post-restart batch folds");
    let restored = giant::ontology::io::dump(state.ontology());
    if restored != full {
        let at = common::first_divergence(&full, &restored, "full rebuild", "restored fold");
        panic!("K=2 restored fold diverged; first divergence at {at}");
    }
}

/// The apps-layer loop under sharding: an `IncrementalDriver` whose state
/// folds with `shards = 2` keeps the WAL/checkpoint/restore contract — a
/// "restarted process" (`restore_durable` over the baseline checkpoint +
/// WAL tail) replays the logged batch through the sharded fold path and
/// converges byte-identically with the driver that never restarted, warm
/// per-shard slots included.
#[test]
fn sharded_driver_restores_durably_and_converges() {
    use giant::adapter::build_serving;
    use giant::apps::incremental::{DurabilityConfig, IncrementalDriver};
    use giant::apps::serving::ServeRequest;

    let (setup, models) = harness();
    let stream = setup.corpus_stream();
    let batches = stream.split(&[0.6, 0.85]);
    let cfg = GiantConfig {
        shards: 2,
        ..GiantConfig::default()
    };
    // Base serving resources come from a sharded batch build, like any
    // host bootstrapping the loop would derive them.
    let output = setup.run_pipeline(models, &cfg);
    let base = (*build_serving(setup, &output).service.resources()).clone();

    let state = IncrementalState::new(
        stream.categories.clone(),
        stream.annotator.clone(),
        models.clone(),
        cfg,
    );
    let (mut driver, _) =
        IncrementalDriver::bootstrap(state, base, batches[0].clone(), 2).expect("bootstrap folds");
    let dir = std::env::temp_dir().join("giant-shard-driver-test");
    std::fs::remove_dir_all(&dir).ok();
    // Baseline checkpoint (format v2: per-shard slots) + fresh WAL.
    let dcfg = DurabilityConfig::new(&dir);
    driver.enable_durability(dcfg.clone()).expect("durability enables");
    let report = driver.ingest(batches[1].clone()).expect("durable ingest folds");
    assert_eq!(report.version, 2);
    assert!(report.wal_secs.is_some(), "durable ingest must hit the WAL");

    // "Restart": checkpoint_every=8 means the logged batch is only in the
    // WAL, so recovery must replay it through a sharded fold.
    let (restored, rr) =
        IncrementalDriver::restore_durable(dcfg, stream.annotator.clone(), models.clone(), 2)
            .expect("durable restore");
    assert_eq!(rr.replayed, 1, "the logged batch must replay");
    assert_eq!(restored.service().version(), 2);
    assert_eq!(
        restored.state().caches().shard_slots().len(),
        2,
        "replayed sharded folds must rebuild one warm slot per shard"
    );
    let live = giant::ontology::io::dump(driver.state().ontology());
    let back = giant::ontology::io::dump(restored.state().ontology());
    if live != back {
        let at = common::first_divergence(&live, &back, "never-restarted", "restored");
        panic!("sharded durable restore diverged; first divergence at {at}");
    }
    let probe = ServeRequest::Conceptualize {
        query: "best phones".into(),
    };
    assert_eq!(
        format!("{:?}", driver.service().serve(&probe)),
        format!("{:?}", restored.service().serve(&probe)),
        "restored sharded frame must answer byte-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

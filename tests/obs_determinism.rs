//! Observability must be a pure observer: arming `giant-obs` span
//! recording (and the profiler) can never change a single output byte.
//!
//! The hard contract (ISSUE: armed goldens): the seed-42 golden dump is
//! reproduced byte-for-byte **with spans armed and profiling on**, and
//! armed vs disarmed runs agree on the ontology dump *and* the serving
//! answers at 1, 2 and 4 threads. A proptest widens the same check to
//! random worlds (marked `#[ignore]` for the debug-mode tier-1 run; the
//! CI release step runs it via `--include-ignored`).
//!
//! The arm flag is process-global, so every test here serialises on one
//! mutex — otherwise a disarmed arm of one test could race another
//! test's armed arm.

use giant::adapter::{build_serving, GiantSetup, ModelTrainConfig};
use giant::apps::serving::ServeRequest;
use giant::data::WorldConfig;
use giant::mining::GiantConfig;
use proptest::prelude::*;
use std::sync::Mutex;

mod common;

const GOLDEN: &str = include_str!("golden/ontology_seed42.txt");

/// Serialises tests that flip the process-global arm flag.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed mixed serving workload derived from the world's own corpus.
fn requests_of(setup: &GiantSetup) -> Vec<ServeRequest> {
    setup
        .corpus_stream()
        .docs
        .iter()
        .take(12)
        .enumerate()
        .map(|(i, d)| match i % 3 {
            0 => ServeRequest::Conceptualize {
                query: d.title.clone(),
            },
            1 => ServeRequest::Recommend {
                query: d.title.clone(),
            },
            _ => ServeRequest::TagDocument {
                title: d.title.clone(),
                sentences: d.sentences.clone(),
            },
        })
        .collect()
}

/// One full run (pipeline dump + serving answers) at `threads`, with span
/// recording armed or disarmed. World generation and training happen
/// under the same arm state as the run — nothing upstream may depend on
/// it either.
fn run(world_seed: u64, threads: usize, armed: bool) -> (String, String) {
    giant::obs::arm(armed);
    let setup = GiantSetup::generate(WorldConfig {
        seed: world_seed,
        ..WorldConfig::tiny()
    });
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let cfg = GiantConfig {
        threads,
        ..GiantConfig::default()
    };
    let output = setup.run_pipeline(&models, &cfg);
    let dump = giant::ontology::io::dump(&output.ontology);
    let serving = build_serving(&setup, &output);
    let answers = format!(
        "{:?}",
        serving.service.serve_batch(&requests_of(&setup), threads)
    );
    giant::obs::arm(false);
    (dump, answers)
}

#[test]
fn armed_pipeline_reproduces_the_golden_byte_for_byte() {
    let _g = lock();
    // Worst case: spans armed AND the profiler sampling self-times.
    giant::obs::set_profiling(true);
    giant::obs::arm(true);
    let setup = GiantSetup::generate(WorldConfig::tiny());
    let (models, _) = setup.train_models(&ModelTrainConfig::small());
    let output = setup.run_pipeline(&models, &GiantConfig::default());
    let dump = giant::ontology::io::dump(&output.ontology);
    giant::obs::set_profiling(false);
    giant::obs::arm(false);
    if dump != GOLDEN {
        let mismatch = common::first_divergence(&dump, GOLDEN, "armed", "golden");
        panic!("armed pipeline diverged from the golden dump; first divergence at {mismatch}");
    }
    // The armed run also left evidence that it really recorded: stage
    // spans are in the registry and the profiler accumulated stacks.
    let snap = giant::obs::registry().snapshot();
    assert!(
        snap.get("span.pipeline").is_some(),
        "armed golden run recorded no pipeline span"
    );
    assert!(
        giant::obs::folded_stacks().contains("pipeline"),
        "profiling golden run accumulated no stacks"
    );
}

#[test]
fn armed_and_disarmed_agree_at_1_2_4_threads() {
    let _g = lock();
    for threads in [1, 2, 4] {
        let (dump_off, answers_off) = run(7, threads, false);
        let (dump_on, answers_on) = run(7, threads, true);
        if dump_off != dump_on {
            let mismatch =
                common::first_divergence(&dump_off, &dump_on, "disarmed", "armed");
            panic!("arming changed the dump at threads={threads}; first divergence at {mismatch}");
        }
        assert_eq!(
            answers_off, answers_on,
            "arming changed serving answers at threads={threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random worlds, random thread counts: arming is output-neutral
    /// everywhere, not just on the pinned seeds. Heavy (two full runs per
    /// case), so ignored in the debug tier-1 sweep; CI's release obs step
    /// runs it with `--include-ignored`.
    #[test]
    #[ignore]
    fn arming_is_output_neutral_on_random_worlds(
        world_seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let _g = lock();
        let (dump_off, answers_off) = run(world_seed, threads, false);
        let (dump_on, answers_on) = run(world_seed, threads, true);
        prop_assert_eq!(dump_off, dump_on, "dump diverged (world_seed={}, threads={})", world_seed, threads);
        prop_assert_eq!(answers_off, answers_on, "answers diverged (world_seed={}, threads={})", world_seed, threads);
    }
}

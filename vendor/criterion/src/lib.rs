//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace ships the
//! subset of the criterion API its benches use: [`Criterion`] with the
//! builder knobs, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the `name/config/targets` and the
//! positional form).
//!
//! Measurement model: each `bench_function` runs a warm-up for
//! `warm_up_time`, then batches of iterations until `measurement_time`
//! elapses (at least `sample_size` batches), and prints min / mean / max
//! per-iteration wall-clock time. There is no statistical analysis, HTML
//! report or baseline comparison — the numbers are honest but plain.

use std::time::{Duration, Instant};

/// The benchmark harness configuration and registry.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::WarmUp,
            deadline: Instant::now() + self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.mode = Mode::Measure {
            min_samples: self.sample_size,
        };
        b.deadline = Instant::now() + self.measurement_time;
        b.samples.clear();
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

enum Mode {
    WarmUp,
    Measure { min_samples: usize },
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    mode: Mode,
    deadline: Instant,
    /// Per-iteration nanosecond samples collected during measurement.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine` (per the harness configuration)
    /// and records per-iteration wall-clock samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp => {
                while Instant::now() < self.deadline {
                    std::hint::black_box(routine());
                }
            }
            Mode::Measure { min_samples } => {
                // Size batches so one batch costs roughly 1/sample_size of
                // the measurement budget, with a floor of one iteration.
                let probe = Instant::now();
                std::hint::black_box(routine());
                let once = probe.elapsed().max(Duration::from_nanos(1));
                let budget = self
                    .deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                let per_batch = (budget.as_nanos() / min_samples as u128).max(1);
                let batch = ((per_batch / once.as_nanos().max(1)) as u64).clamp(1, 1_000_000);
                self.samples.push(once.as_nanos() as f64);
                while self.samples.len() < min_samples || Instant::now() < self.deadline {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    let ns = start.elapsed().as_nanos() as f64 / batch as f64;
                    self.samples.push(ns);
                    if self.samples.len() >= min_samples && Instant::now() >= self.deadline {
                        break;
                    }
                }
            }
        }
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples — did the closure call Bencher::iter?)");
        return;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        human(min),
        human(mean),
        human(max),
        samples.len()
    );
}

/// Declares a benchmark group function that runs each target.
///
/// Both upstream forms are supported:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_runs_body() {
        let mut n = 0u64;
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| n += 1));
        assert!(n > 0, "routine never ran");
    }

    #[test]
    fn human_units_scale() {
        assert_eq!(human(12.0), "12.0 ns");
        assert_eq!(human(1_500.0), "1.50 µs");
        assert_eq!(human(2_500_000.0), "2.50 ms");
        assert_eq!(human(3_000_000_000.0), "3.00 s");
    }
}

//! Configuration and the deterministic case loop behind [`crate::proptest!`].

use crate::TestCaseError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed workspace seed. Every property test derives its stream from
/// this value XOR an FNV hash of the test's name, so (a) runs are
/// reproducible in CI and (b) distinct tests still explore distinct inputs.
pub const DEFAULT_RNG_SEED: u64 = 0x4749_414e_5430_3230; // "GIANT2020"

/// How a [`crate::proptest!`] block runs its cases.
///
/// Environment overrides, applied at run time (both are optional):
///
/// * `PROPTEST_CASES` — replaces `cases` for every block.
/// * `PROPTEST_RNG_SEED` — replaces `rng_seed`, e.g. to explore new input
///   streams locally while CI stays pinned to the default.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Base seed for input generation.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            rng_seed: DEFAULT_RNG_SEED,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with the default deterministic seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    fn resolved(&self) -> (u32, u64) {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases);
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.rng_seed);
        (cases, seed)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` for each case with a per-test deterministic RNG, panicking with
/// a replayable report on the first failure. Used by the [`crate::proptest!`]
/// expansion; not part of the public proptest API surface.
pub fn run<F>(config: &ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let (cases, seed) = config.resolved();
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(test_name));
    for case in 0..cases {
        if let Err(e) = f(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {case}/{cases} \
                 (PROPTEST_RNG_SEED={seed}): {e}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_the_requested_cases() {
        let mut n = 0;
        run(&ProptestConfig::with_cases(17), "counter", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "failed at case 3")]
    fn run_reports_failing_case_index() {
        let mut n = 0;
        run(&ProptestConfig::with_cases(10), "fails", |_| {
            if n == 3 {
                return Err(TestCaseError::fail("boom"));
            }
            n += 1;
            Ok(())
        });
    }
}

//! The [`Strategy`] trait and the primitive strategies: numeric ranges,
//! regex-subset string patterns, tuples and [`prop_map`](Strategy::prop_map).

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// `generate` produces the value directly from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String patterns: a `&str` is interpreted as a regex (subset — see
/// [`crate::string`]) and generates matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = (0usize..4, 1.0f64..2.0).prop_map(|(i, x)| i as f64 + x);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1.0..6.0).contains(&v));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Just(7).generate(&mut rng), 7);
    }
}

//! A tiny regex-subset generator backing `&str` strategies.
//!
//! Supported syntax — the subset the workspace's property tests use:
//!
//! * character classes `[a-z]`, `[a-zA-Z0-9,.!? ]` (literal chars and
//!   `x-y` ranges; `-` first or last is literal),
//! * literal characters outside classes (`\` escapes the next char),
//! * repetition `{m}`, `{m,n}` (inclusive) on the preceding atom; an atom
//!   without a repetition count appears exactly once.
//!
//! Anything else (alternation, groups, `*`/`+`/`?`) is rejected with a
//! panic so a typo fails loudly instead of generating garbage.

use rand::rngs::StdRng;
use rand::RngExt;

/// One parsed atom: an alphabet and an inclusive repetition range.
struct Atom {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        let (lo, hi) = (class[j], class[j + 2]);
                        assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                        set.extend(lo..=hi);
                        j += 3;
                    } else {
                        set.push(class[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing `\\` in pattern {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c @ ('*' | '+' | '?' | '(' | ')' | '|') => {
                panic!("unsupported regex operator {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("repetition count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        atoms.push(Atom { alphabet, min, max });
    }
    atoms
}

/// Generates a string matching `pattern` (see module docs for the subset).
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = if atom.min == atom.max {
            atom.min
        } else {
            rng.random_range(atom.min..=atom.max)
        };
        for _ in 0..n {
            out.push(atom.alphabet[rng.random_range(0..atom.alphabet.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_counted_repetition() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad char: {s:?}");
        }
    }

    #[test]
    fn mixed_class_allows_zero_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = generate_matching("[a-zA-Z0-9,.!? ]{0,3}", &mut rng);
            assert!(s.len() <= 3);
            saw_empty |= s.is_empty();
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ",.!? ".contains(c)));
        }
        assert!(saw_empty, "zero repetitions never produced");
    }

    #[test]
    fn literals_and_escapes_pass_through() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching(r"a\[b", &mut rng), "a[b");
        assert_eq!(generate_matching("x{3}", &mut rng), "xxx");
    }

    #[test]
    #[should_panic(expected = "unsupported regex operator")]
    fn star_is_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = generate_matching("[a-z]*", &mut rng);
    }
}

//! The conventional `use proptest::prelude::*;` import surface.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::TestCaseError;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

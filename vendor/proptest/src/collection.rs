//! Collection strategies: [`vec()`] and the [`SizeRange`] it accepts.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;

/// An inclusive-exclusive length range for collection strategies.
///
/// Converts from `usize` (exact length) and `Range<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut StdRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(!r.is_empty(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size` (a `usize` for exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_the_size_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}

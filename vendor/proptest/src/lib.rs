//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so this workspace ships the
//! subset of the proptest API its test suites use: [`strategy::Strategy`]
//! with `prop_map`, range and tuple strategies, a regex-subset string
//! strategy, [`collection::vec()`], the [`proptest!`] block macro and the
//! `prop_assert*` family.
//!
//! Two deliberate departures from upstream:
//!
//! * **No shrinking.** A failing case reports the case index, the resolved
//!   seed and the assertion message; re-running with the same seed replays
//!   it exactly.
//! * **Deterministic by default.** Upstream seeds from the OS; here every
//!   test derives its stream from a fixed workspace seed XOR a hash of the
//!   test name, so CI runs are reproducible. Set `PROPTEST_RNG_SEED` to
//!   explore a different stream and `PROPTEST_CASES` to change case counts
//!   without touching code (see [`test_runner::ProptestConfig`]).

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// A failed test case: carries the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declares property tests.
///
/// Supports the upstream block form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs. Each function body may use
/// [`prop_assert!`] / [`prop_assert_eq!`], which abort only the current
/// case with a report instead of unwinding immediately.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(&($cfg), stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!`, but fails only the current proptest case.
///
/// Must be used inside a [`proptest!`] body (it `return`s a
/// [`TestCaseError`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Like `assert_ne!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the *deterministic subset* of the rand 0.9 API that
//! the GIANT reproduction actually uses:
//!
//! * [`Rng`] — the base trait ([`next_u64`](Rng::next_u64)), used as a
//!   generic bound by the `giant-nn` layer constructors.
//! * [`RngExt`] — the convenience extension (`random::<T>()`,
//!   `random_range(..)`), blanket-implemented for every [`Rng`].
//! * [`SeedableRng`] — `seed_from_u64`, the only constructor the repo uses.
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64. The stream
//!   is fixed forever: experiment reproducibility depends on it.
//!
//! Everything is pure `std`, allocation-free and platform-independent, so a
//! given seed produces the same stream on every target.

pub mod rngs;

/// A source of random 64-bit words.
///
/// This is deliberately minimal: all derived draws (floats, bools, ranges)
/// live on [`RngExt`] so that implementing an RNG only takes one method.
pub trait Rng {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`]'s raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range {start}..={end}");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + f64::sample_from(rng) * (end - start)
    }
}

/// Convenience draws, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` uniformly (floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..200 {
            let v = rng.random_range(3..=5i32);
            assert!((3..=5).contains(&v));
            let f = rng.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn bools_are_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<bool> = (0..64).map(|_| rng.random()).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}

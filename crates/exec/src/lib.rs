//! # giant-exec — the deterministic sharded execution layer
//!
//! GIANT's scaling story (ROADMAP north-star: "as fast as the hardware
//! allows", byte-deterministic) hinges on one recurring shape: a cheap
//! sequential **plan** produces independent work items, expensive workers
//! **execute** them in parallel, and an ordered **merge** rebuilds the
//! result exactly as a sequential run would have. This crate is the
//! execute-and-merge half of that contract, reused by every stage that
//! parallelizes:
//!
//! * [`run_ordered`] — map a pure function over a slice on scoped worker
//!   threads; results come back **in input order**, so downstream merging
//!   is independent of the thread count and of OS scheduling.
//! * [`run_ordered_seeded`] — the same, but each work item additionally
//!   receives its own RNG whose stream is derived from `(base_seed, item
//!   index)`. Randomized per-item work stays reproducible at any thread
//!   count because the stream belongs to the *item*, never to the worker.
//! * [`shard_seed`] / [`shard_rng`] — the stream-splitting primitive the
//!   seeded runner is built on, exposed for stages that manage their own
//!   threads.
//!
//! ## Determinism contract
//!
//! For a pure `f`, `run_ordered(items, t, f)` returns the same `Vec` for
//! every `t ≥ 0`; `t ∈ {0, 1}` short-circuits to a plain sequential map
//! (no threads spawned). Workers claim items from a shared atomic counter
//! (work stealing — long items don't convoy short ones) and stash each
//! result in its item's slot; the merge then reads the slots in index
//! order. If `f` panics on any item the panic is re-raised on the calling
//! thread after the scope joins, never swallowed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives an independent 64-bit seed for one shard of a computation.
///
/// SplitMix64 finalizer over `base ⊕ golden·(shard+1)`: statistically
/// independent streams for adjacent shards, and shard 0 never collides
/// with the base seed itself.
pub fn shard_seed(base: u64, shard: u64) -> u64 {
    let mut z = base ^ (shard.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`StdRng`] positioned at the start of shard `shard`'s stream.
pub fn shard_rng(base: u64, shard: u64) -> StdRng {
    StdRng::seed_from_u64(shard_seed(base, shard))
}

/// The machine's available hardware parallelism, detected once. Falls back
/// to 1 when detection fails (restricted environments).
pub fn hardware_threads() -> usize {
    use std::sync::OnceLock;
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Effective worker count: `0` means "one worker", there is never a reason
/// to park more workers than there are items, and — because every runner
/// in this crate drives CPU-bound work — never a reason to run more busy
/// workers than the machine has hardware threads. The clamp is what keeps
/// over-asked configurations (`threads=8` on a 2-vCPU container) from
/// *regressing* below smaller counts: oversubscribing the memory-bound
/// walk kernel buys context switches and cache thrash, not throughput
/// (measured in `BENCH_pipeline.json`, which showed 0.91× at 4 workers vs
/// 1.06× at 2 before the clamp). Determinism is unaffected: results are
/// identical at every worker count by contract.
fn effective_threads(requested: usize, n_items: usize) -> usize {
    requested
        .max(1)
        .min(n_items.max(1))
        .min(hardware_threads())
}

/// A shared worker budget for **nested** parallelism: an outer executor
/// running K concurrent tasks where each task wants its own inner
/// `run_ordered` pool.
///
/// Every runner in this crate independently clamps at
/// [`hardware_threads`], which is correct for a single level of
/// parallelism but composes badly when nested: K outer workers × up to
/// `hardware_threads()` inner workers each would oversubscribe the
/// machine by a factor of K (on the 2-vCPU reference box, a K=4 sharded
/// run at `threads=4` would ask for 8 busy threads on 2 cores). A
/// `WorkerBudget` is created once from the *requested* thread count and
/// split across the outer fan-out so the product of outer workers and
/// per-task inner threads never exceeds the machine clamp.
///
/// Determinism is unaffected — thread counts change wall-clock only, by
/// the crate-wide contract — so the split is purely a scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerBudget {
    total: usize,
}

impl WorkerBudget {
    /// A budget of `min(requested.max(1), hardware_threads())` workers —
    /// the same clamp [`run_ordered`] applies to a flat run.
    pub fn new(requested: usize) -> Self {
        WorkerBudget {
            total: requested.max(1).min(hardware_threads()),
        }
    }

    /// The total number of busy workers this budget permits.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Splits the budget across `outer` concurrent tasks, returning
    /// `(outer_workers, inner_threads)`.
    ///
    /// Guarantees `outer_workers * inner_threads <= total() <=
    /// hardware_threads()` and both factors are ≥ 1: the outer executor
    /// should run at most `outer_workers` tasks concurrently, and each
    /// task should pass `inner_threads` to its own runners. When the
    /// budget cannot cover every outer task with a dedicated worker the
    /// outer fan-out is capped (excess tasks queue behind the claim
    /// counter in [`run_ordered`]) rather than oversubscribing.
    pub fn split(&self, outer: usize) -> (usize, usize) {
        let outer_workers = outer.clamp(1, self.total);
        let inner_threads = (self.total / outer_workers).max(1);
        (outer_workers, inner_threads)
    }
}

/// Maps `f` over `items` on `threads` scoped workers, returning results in
/// input order.
///
/// `f` receives `(item_index, &item)`. The output is identical for every
/// thread count (including `0`/`1`, which run inline without spawning).
pub fn run_ordered<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    run_ordered_scratch(items, threads, || (), |_, i, it| f(i, it))
}

/// Like [`run_ordered`], but gives every worker a private **scratch**
/// value created by `init` and reused across the items that worker
/// claims — the pattern for expensive per-worker state such as
/// pre-allocated walk buffers.
///
/// ## Determinism contract
///
/// Which items share a scratch depends on scheduling, so `f` must be
/// *observationally pure in the scratch*: its output may use the scratch
/// as workspace but must never depend on state a previous item left
/// behind. Under that contract the result equals
/// `run_ordered(items, threads, |i, it| f(&mut init(), i, it))` for every
/// thread count.
pub fn run_ordered_scratch<I, O, S, G, F>(
    items: &[I],
    threads: usize,
    init: G,
    f: F,
) -> Vec<O>
where
    I: Sync,
    O: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> O + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, it)| f(&mut scratch, i, it))
            .collect();
    }
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&mut scratch, i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker scope joined with an unfilled slot")
        })
        .collect()
}

/// Speculative ordered pipeline for work with a **sequential acceptance
/// dependency**: items `0..n` must be *accepted* strictly in index order
/// (acceptance may consult and update state that affects which later
/// items matter), but *producing* an item is pure and expensive — so
/// workers produce ahead of the acceptance frontier, speculatively.
///
/// * `produce(scratch, i)` runs on a worker thread; it may return `None`
///   to decline an item it can already tell is dead (e.g. by reading a
///   monotonic flag acceptance publishes). It must be pure in `i` apart
///   from that declination: a `Some` value may never depend on scratch
///   leftovers or on *when* it ran.
/// * `accept(i, result)` runs on the calling thread, in index order,
///   exactly once per item. By the monotonicity argument below it sees
///   `Some` for every item it still considers live.
/// * `lookahead` bounds speculation: a worker holding item `i` waits
///   until `i < accepted + lookahead` before producing, so wasted work
///   can't outrun the acceptance frontier by more than the window.
///
/// ## Determinism
///
/// The accepted sequence equals the sequential run's for any thread
/// count and any scheduling, provided the only cross-item communication
/// is **monotonic** (flags that only ever flip one way, set by `accept`):
/// a producer declining item `i` proves acceptance flagged `i` earlier,
/// and the flag still holds when `accept(i)` runs, so declination never
/// changes the outcome — it only skips doomed work.
pub fn run_speculative<O, S, G, P, A>(
    n: usize,
    threads: usize,
    lookahead: usize,
    init: G,
    produce: P,
    mut accept: A,
) where
    O: Send,
    G: Fn() -> S + Sync,
    P: Fn(&mut S, usize) -> Option<O> + Sync,
    A: FnMut(usize, Option<O>),
{
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        let mut scratch = init();
        for i in 0..n {
            let r = produce(&mut scratch, i);
            accept(i, r);
        }
        return;
    }
    let lookahead = lookahead.max(threads);
    let ready: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let slots: Vec<Mutex<Option<Option<O>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Index of the next item acceptance will consume; also the producers'
    // stall point. Monotonically increasing.
    let frontier = AtomicUsize::new(0);
    // A panicking participant would otherwise leave the others spinning on
    // slots/frontier updates that will never come: every unwinding thread
    // raises this flag (via `SetOnDrop`), every spin loop checks it and
    // bails, the scope then joins and re-raises the original panic.
    let abort = AtomicBool::new(false);
    let fill_slot = |i: usize, scratch: &mut S| {
        let r = produce(scratch, i);
        *slots[i].lock().expect("result slot poisoned") = Some(r);
        ready[i].store(true, Ordering::Release);
    };
    // The calling thread accepts *and helps produce*, so it counts toward
    // the thread budget: spawn only `threads - 1` dedicated workers and
    // the machine never runs more busy threads than asked for.
    std::thread::scope(|scope| {
        for _ in 0..threads - 1 {
            scope.spawn(|| {
                let guard = SetOnDrop(&abort);
                let mut scratch = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    while i >= frontier.load(Ordering::Acquire) + lookahead {
                        if abort.load(Ordering::Relaxed) {
                            return; // a peer is unwinding; unstick and exit
                        }
                        std::thread::yield_now();
                    }
                    fill_slot(i, &mut scratch);
                }
                guard.defuse();
            });
        }
        // Acceptance runs here, strictly in order. While the needed item
        // is in flight elsewhere, help by producing the next claimable
        // item inside the window instead of spinning.
        let guard = SetOnDrop(&abort);
        let mut scratch = init();
        'accept: for i in 0..n {
            while !ready[i].load(Ordering::Acquire) {
                if abort.load(Ordering::Relaxed) {
                    // A worker died holding an item we will never see;
                    // stop accepting so the scope can join and re-raise.
                    break 'accept;
                }
                let c = cursor.load(Ordering::Relaxed);
                if c < n && c < i + lookahead {
                    // Conditional claim: helping must never hold a claim
                    // it would have to stall on.
                    if cursor
                        .compare_exchange(c, c + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        fill_slot(c, &mut scratch);
                    }
                    continue;
                }
                std::thread::yield_now();
            }
            if abort.load(Ordering::Relaxed) {
                break 'accept;
            }
            let r = slots[i]
                .lock()
                .expect("result slot poisoned")
                .take()
                .expect("ready flag set without a stored result");
            accept(i, r);
            frontier.store(i + 1, Ordering::Release);
        }
        guard.defuse();
    });
}

/// Raises an abort flag when dropped mid-unwind; [`SetOnDrop::defuse`]
/// consumes it on the success path.
struct SetOnDrop<'a>(&'a AtomicBool);

impl SetOnDrop<'_> {
    fn defuse(self) {
        std::mem::forget(self);
    }
}

impl Drop for SetOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Like [`run_ordered`], but hands each work item a private RNG seeded
/// from `(base_seed, item_index)` via [`shard_seed`].
///
/// Because the stream is keyed by the *item* and not the worker thread,
/// randomized per-item work produces identical results at every thread
/// count.
pub fn run_ordered_seeded<I, O, F>(items: &[I], threads: usize, base_seed: u64, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&mut StdRng, usize, &I) -> O + Sync,
{
    run_ordered(items, threads, |i, item| {
        let mut rng = shard_rng(base_seed, i as u64);
        f(&mut rng, i, item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn ordered_run_matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let got = run_ordered(&items, threads, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn output_order_is_input_order_even_with_skewed_item_costs() {
        // Early items sleep, late items return immediately: with eager
        // work stealing the *completion* order inverts, the output order
        // must not.
        let items: Vec<usize> = (0..16).collect();
        let got = run_ordered(&items, 4, |i, &x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn seeded_run_is_thread_count_invariant() {
        let items: Vec<u32> = (0..40).collect();
        let baseline = run_ordered_seeded(&items, 1, 42, |rng, _, &x| {
            (x, rng.random_range(0..1_000_000u64))
        });
        for threads in [2, 4, 7] {
            let got = run_ordered_seeded(&items, threads, 42, |rng, _, &x| {
                (x, rng.random_range(0..1_000_000u64))
            });
            assert_eq!(got, baseline, "threads={threads}");
        }
    }

    #[test]
    fn shard_streams_differ_between_shards_and_seeds() {
        let a: Vec<u64> = {
            let mut r = shard_rng(7, 0);
            (0..4).map(|_| r.random_range(0..u64::MAX)).collect()
        };
        let b: Vec<u64> = {
            let mut r = shard_rng(7, 1);
            (0..4).map(|_| r.random_range(0..u64::MAX)).collect()
        };
        let c: Vec<u64> = {
            let mut r = shard_rng(8, 0);
            (0..4).map(|_| r.random_range(0..u64::MAX)).collect()
        };
        assert_ne!(a, b, "adjacent shards must get independent streams");
        assert_ne!(a, c, "different base seeds must get independent streams");
        assert_ne!(
            shard_seed(7, 0),
            7,
            "shard 0 must not reuse the base seed verbatim"
        );
    }

    #[test]
    fn scratch_run_matches_plain_map_at_every_thread_count() {
        // Scratch as reusable workspace (a buffer that must be cleared per
        // item): output must not depend on sharing.
        let items: Vec<usize> = (0..101).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3).collect();
        for threads in [0, 1, 2, 5, 16] {
            let got = run_ordered_scratch(
                &items,
                threads,
                Vec::<usize>::new,
                |buf, _, &x| {
                    buf.clear();
                    buf.extend([x, x, x]);
                    buf.iter().sum::<usize>()
                },
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_created_once_per_worker_not_per_item() {
        use std::sync::atomic::AtomicUsize as Counter;
        let inits = Counter::new(0);
        let items: Vec<u8> = vec![0; 64];
        let _ = run_ordered_scratch(
            &items,
            4,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i, _| i,
        );
        let n = inits.load(Ordering::Relaxed);
        assert!(n <= 4, "expected at most one scratch per worker, got {n}");
    }

    /// Reference model for the speculative pipeline: a coverage game where
    /// accepting item i kills items i+1..i+1+k (like cluster planning).
    fn coverage_accepted(n: usize, threads: usize) -> Vec<usize> {
        let covered: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let mut accepted = Vec::new();
        run_speculative(
            n,
            threads,
            threads.max(1) * 4,
            || (),
            |_, i| {
                if covered[i].load(Ordering::Acquire) {
                    None
                } else {
                    Some(i * 10) // "expensive" pure product
                }
            },
            |i, r| {
                if covered[i].load(Ordering::Relaxed) {
                    return; // discarded speculation
                }
                let v = r.expect("live item must be produced");
                assert_eq!(v, i * 10);
                accepted.push(i);
                // Accepting i covers the next i%3 items.
                for c in covered.iter().take((i + 1 + i % 3).min(n)).skip(i + 1) {
                    c.store(true, Ordering::Release);
                }
            },
        );
        accepted
    }

    #[test]
    fn speculative_pipeline_matches_sequential_at_every_thread_count() {
        let expect = coverage_accepted(200, 1);
        assert!(!expect.is_empty() && expect.len() < 200, "game must skip some items");
        for threads in [2, 3, 4, 7] {
            assert_eq!(coverage_accepted(200, threads), expect, "threads={threads}");
        }
    }

    #[test]
    fn speculative_acceptance_runs_strictly_in_order() {
        let mut last = None;
        run_speculative(
            64,
            4,
            8,
            || (),
            |_, i| Some(i),
            |i, r| {
                assert_eq!(r, Some(i));
                if let Some(l) = last {
                    assert_eq!(i, l + 1, "acceptance out of order");
                }
                last = Some(i);
            },
        );
        assert_eq!(last, Some(63));
    }

    #[test]
    fn speculative_worker_panic_propagates_instead_of_hanging() {
        // A producer panic must unstick the acceptance loop (which would
        // otherwise wait forever on the dead worker's slot) and re-raise.
        let res = std::panic::catch_unwind(|| {
            run_speculative(
                256,
                4,
                8,
                || (),
                |_, i| {
                    if i == 97 {
                        panic!("producer died on item 97");
                    }
                    Some(i)
                },
                |_, _| {},
            )
        });
        assert!(res.is_err(), "producer panic must not be swallowed");
    }

    #[test]
    fn speculative_accept_panic_propagates_instead_of_hanging() {
        // An acceptance panic must unstick workers stalled on the
        // lookahead window (the frontier stops advancing for good).
        let res = std::panic::catch_unwind(|| {
            run_speculative(
                256,
                4,
                4,
                || (),
                |_, i| Some(i),
                |i, _| {
                    if i == 13 {
                        panic!("acceptance died on item 13");
                    }
                },
            )
        });
        assert!(res.is_err(), "acceptance panic must not be swallowed");
    }

    #[test]
    fn speculative_pipeline_handles_empty_and_tiny_inputs() {
        let mut calls = 0;
        run_speculative(0, 4, 8, || (), |_, i| Some(i), |_, _| calls += 1);
        assert_eq!(calls, 0);
        run_speculative(1, 4, 8, || (), |_, i| Some(i), |_, _| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn worker_budget_never_oversubscribes_the_machine() {
        // The regression from the sharding refactor: K=4 shards at
        // threads=4 on a 2-vCPU box must not ask for 8 busy workers.
        for requested in [1, 2, 4, 8, 64] {
            let budget = WorkerBudget::new(requested);
            assert!(budget.total() <= hardware_threads());
            assert!(budget.total() >= 1);
            for outer in [1, 2, 3, 4, 7, 16] {
                let (ow, inner) = budget.split(outer);
                assert!(ow >= 1 && inner >= 1, "requested={requested} outer={outer}");
                assert!(
                    ow * inner <= budget.total(),
                    "requested={requested} outer={outer}: {ow}x{inner} exceeds budget {}",
                    budget.total()
                );
                assert!(
                    ow * inner <= hardware_threads(),
                    "requested={requested} outer={outer}: {ow}x{inner} oversubscribes"
                );
            }
        }
    }

    #[test]
    fn worker_budget_split_uses_the_whole_budget_when_divisible() {
        // Not just "doesn't oversubscribe" — a divisible split must not
        // leave workers idle either.
        let budget = WorkerBudget { total: 8 };
        assert_eq!(budget.split(1), (1, 8));
        assert_eq!(budget.split(2), (2, 4));
        assert_eq!(budget.split(4), (4, 2));
        assert_eq!(budget.split(8), (8, 1));
        // Over-fanned: outer capped at the budget, inner pinned to 1.
        assert_eq!(budget.split(16), (8, 1));
        // Indivisible: floor division, never rounding up past the budget.
        assert_eq!(budget.split(3), (3, 2));
        let single = WorkerBudget { total: 1 };
        assert_eq!(single.split(4), (1, 1));
    }

    #[test]
    fn empty_input_spawns_nothing_and_returns_empty() {
        let items: Vec<u8> = Vec::new();
        let got: Vec<u8> = run_ordered(&items, 8, |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<usize> = (0..32).collect();
        let res = std::panic::catch_unwind(|| {
            run_ordered(&items, 4, |i, &x| {
                if i == 17 {
                    panic!("boom on item 17");
                }
                x
            })
        });
        assert!(res.is_err(), "worker panic must not be swallowed");
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        // Scoped threads: `f` may capture non-'static references, which is
        // what lets the pipeline pass &PipelineInput / &GiantModels down.
        let corpus: Vec<String> = (0..10).map(|i| format!("doc {i}")).collect();
        let lens = run_ordered(&corpus, 3, |_, s| s.len());
        assert_eq!(lens, corpus.iter().map(|s| s.len()).collect::<Vec<_>>());
    }
}

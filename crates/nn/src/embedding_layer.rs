//! Embedding table: looks up rows by id; backward scatters gradients.

use crate::matrix::Matrix;
use crate::param::Parameter;
use rand::Rng;

/// A trainable `(n_values × dim)` lookup table.
#[derive(Debug, Clone)]
pub struct EmbeddingLayer {
    /// The table.
    pub table: Parameter,
    cache_ids: Option<Vec<usize>>,
}

impl EmbeddingLayer {
    /// Xavier-initialised table.
    pub fn new<R: Rng>(n_values: usize, dim: usize, rng: &mut R) -> Self {
        Self {
            table: Parameter::xavier(n_values, dim, rng),
            cache_ids: None,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Number of embeddable values.
    pub fn n_values(&self) -> usize {
        self.table.value.rows()
    }

    /// Gathers rows for `ids`; caches ids for backward. Ids out of range
    /// panic (callers bucket their features first).
    pub fn forward(&mut self, ids: &[usize]) -> Matrix {
        let out = self.forward_inference(ids);
        self.cache_ids = Some(ids.to_vec());
        out
    }

    /// Gather without caching.
    pub fn forward_inference(&self, ids: &[usize]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.n_values(), "embedding id {id} out of range");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
        out
    }

    /// Scatters `dy` rows into the table gradient.
    pub fn backward(&mut self, dy: &Matrix) {
        let ids = self.cache_ids.as_ref().expect("forward before backward");
        assert_eq!(dy.rows(), ids.len());
        for (r, &id) in ids.iter().enumerate() {
            let g = dy.row(r).to_vec();
            let grow = self.table.grad.row_mut(id);
            for (gv, dv) in grow.iter_mut().zip(&g) {
                *gv += dv;
            }
        }
    }

    /// The table parameter, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gather_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = EmbeddingLayer::new(5, 3, &mut rng);
        let out = e.forward(&[2, 2, 4]);
        assert_eq!(out.row(0), e.table.value.row(2));
        assert_eq!(out.row(1), e.table.value.row(2));
        assert_eq!(out.row(2), e.table.value.row(4));
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = EmbeddingLayer::new(3, 2, &mut rng);
        let _ = e.forward(&[1, 1, 0]);
        let dy = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        e.backward(&dy);
        assert_eq!(e.table.grad.row(1), &[4.0, 6.0]); // rows 0+1 summed
        assert_eq!(e.table.grad.row(0), &[5.0, 6.0]);
        assert_eq!(e.table.grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = EmbeddingLayer::new(2, 2, &mut rng);
        let _ = e.forward(&[5]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        // Loss = ½ Σ out², so dL/dout = out; repeated ids exercise the
        // scatter-accumulate path under the numeric check.
        let ids = [1usize, 3, 1, 0];
        let mut rng = StdRng::seed_from_u64(7);
        let mut e = EmbeddingLayer::new(4, 3, &mut rng);
        let out = e.forward(&ids);
        e.backward(&out);
        crate::gradcheck::check_param_grads(
            &mut e,
            |m| {
                let y = m.forward_inference(&ids);
                y.data().iter().map(|v| v * v).sum::<f64>() / 2.0
            },
            |m| m.params_mut(),
            1e-7,
            1e-6,
        );
    }
}

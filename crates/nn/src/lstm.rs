//! LSTM and BiLSTM with full backpropagation through time.
//!
//! Used by the LSTM-CRF / LSTM baselines (paper §5.2: BiLSTM hidden 25 per
//! direction) and the TextSummary encoder/decoder. Gate layout in the fused
//! weight matrices is `[input | forget | candidate | output]`, each `h` wide.

use crate::act::sigmoid;
use crate::matrix::Matrix;
use crate::param::Parameter;
use rand::Rng;

/// Cached per-sequence forward state for BPTT.
#[derive(Debug, Clone)]
struct LstmCache {
    x: Matrix,
    /// Post-activation gates per step, each `(1 × 4h)` packed into `(T × 4h)`.
    gates: Matrix,
    /// Cell states `(T × h)`.
    c: Matrix,
    /// Hidden states `(T × h)`.
    h: Matrix,
}

/// Unidirectional LSTM over a `(T × d_in)` sequence.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights `(d_in × 4h)`.
    pub w: Parameter,
    /// Recurrent weights `(h × 4h)`.
    pub u: Parameter,
    /// Bias `(1 × 4h)` (forget gate initialised to 1).
    pub b: Parameter,
    hidden: usize,
    cache: Option<LstmCache>,
}

impl Lstm {
    /// New LSTM with Xavier weights and forget-gate bias 1.
    pub fn new<R: Rng>(d_in: usize, hidden: usize, rng: &mut R) -> Self {
        let mut b = Parameter::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            b.value.set(0, j, 1.0);
        }
        Self {
            w: Parameter::xavier(d_in, 4 * hidden, rng),
            u: Parameter::xavier(hidden, 4 * hidden, rng),
            b,
            hidden,
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input size.
    pub fn d_in(&self) -> usize {
        self.w.value.rows()
    }

    /// Runs the sequence, returning hidden states `(T × h)` and caching for
    /// backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (h_seq, cache) = self.run(x);
        self.cache = Some(cache);
        h_seq
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.run(x).0
    }

    fn run(&self, x: &Matrix) -> (Matrix, LstmCache) {
        let t_len = x.rows();
        let h = self.hidden;
        let mut gates = Matrix::zeros(t_len, 4 * h);
        let mut cs = Matrix::zeros(t_len, h);
        let mut hs = Matrix::zeros(t_len, h);
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        for t in 0..t_len {
            // a = x_t W + h_{t-1} U + b
            let mut a = vec![0.0; 4 * h];
            for (j, aj) in a.iter_mut().enumerate() {
                *aj = self.b.value.get(0, j);
            }
            let xt = x.row(t);
            for (k, &xv) in xt.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let wrow = self.w.value.row(k);
                for (aj, wv) in a.iter_mut().zip(wrow) {
                    *aj += xv * wv;
                }
            }
            for (k, &hv) in h_prev.iter().enumerate() {
                if hv == 0.0 {
                    continue;
                }
                let urow = self.u.value.row(k);
                for (aj, uv) in a.iter_mut().zip(urow) {
                    *aj += hv * uv;
                }
            }
            for j in 0..h {
                let i_g = sigmoid(a[j]);
                let f_g = sigmoid(a[h + j]);
                let g_g = a[2 * h + j].tanh();
                let o_g = sigmoid(a[3 * h + j]);
                let c = f_g * c_prev[j] + i_g * g_g;
                let hh = o_g * c.tanh();
                gates.set(t, j, i_g);
                gates.set(t, h + j, f_g);
                gates.set(t, 2 * h + j, g_g);
                gates.set(t, 3 * h + j, o_g);
                cs.set(t, j, c);
                hs.set(t, j, hh);
            }
            h_prev.copy_from_slice(hs.row(t));
            c_prev.copy_from_slice(cs.row(t));
        }
        let cache = LstmCache {
            x: x.clone(),
            gates,
            c: cs,
            h: hs.clone(),
        };
        (hs, cache)
    }

    /// BPTT: takes `d h_seq`, accumulates weight grads, returns `dx`.
    pub fn backward(&mut self, dh_seq: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let t_len = cache.x.rows();
        let h = self.hidden;
        assert_eq!(dh_seq.rows(), t_len);
        assert_eq!(dh_seq.cols(), h);
        let mut dx = Matrix::zeros(t_len, cache.x.cols());
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let mut da = vec![0.0; 4 * h];
            let c_prev: Vec<f64> = if t == 0 {
                vec![0.0; h]
            } else {
                cache.c.row(t - 1).to_vec()
            };
            for j in 0..h {
                let i_g = cache.gates.get(t, j);
                let f_g = cache.gates.get(t, h + j);
                let g_g = cache.gates.get(t, 2 * h + j);
                let o_g = cache.gates.get(t, 3 * h + j);
                let c_t = cache.c.get(t, j);
                let tc = c_t.tanh();
                let dh = dh_seq.get(t, j) + dh_next[j];
                let d_o = dh * tc;
                let dc = dh * o_g * (1.0 - tc * tc) + dc_next[j];
                let d_i = dc * g_g;
                let d_g = dc * i_g;
                let d_f = dc * c_prev[j];
                dc_next[j] = dc * f_g;
                da[j] = d_i * i_g * (1.0 - i_g);
                da[h + j] = d_f * f_g * (1.0 - f_g);
                da[2 * h + j] = d_g * (1.0 - g_g * g_g);
                da[3 * h + j] = d_o * o_g * (1.0 - o_g);
            }
            // Accumulate parameter grads and input/recurrent grads.
            let xt = cache.x.row(t).to_vec();
            for (k, &xv) in xt.iter().enumerate() {
                let wgrow = self.w.grad.row_mut(k);
                for (gj, &daj) in wgrow.iter_mut().zip(&da) {
                    *gj += xv * daj;
                }
            }
            if t > 0 {
                let hprev = cache.h.row(t - 1).to_vec();
                for (k, &hv) in hprev.iter().enumerate() {
                    let ugrow = self.u.grad.row_mut(k);
                    for (gj, &daj) in ugrow.iter_mut().zip(&da) {
                        *gj += hv * daj;
                    }
                }
            }
            for (j, &daj) in da.iter().enumerate() {
                self.b.grad.add_at(0, j, daj);
            }
            // dx_t = da Wᵀ ; dh_{t-1} = da Uᵀ
            for k in 0..cache.x.cols() {
                let wrow = self.w.value.row(k);
                let v: f64 = wrow.iter().zip(&da).map(|(w, d)| w * d).sum();
                dx.set(t, k, v);
            }
            for (k, dh) in dh_next.iter_mut().enumerate() {
                let urow = self.u.value.row(k);
                *dh = urow.iter().zip(&da).map(|(u, d)| u * d).sum();
            }
        }
        dx
    }

    /// Parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.w, &mut self.u, &mut self.b]
    }
}

/// Bidirectional LSTM: concatenates forward and (time-reversed) backward
/// hidden states into `(T × 2h)`.
#[derive(Debug, Clone)]
pub struct BiLstm {
    /// Forward-direction LSTM.
    pub fwd: Lstm,
    /// Backward-direction LSTM (runs on the reversed sequence).
    pub bwd: Lstm,
}

impl BiLstm {
    /// New BiLSTM; each direction has `hidden` units.
    pub fn new<R: Rng>(d_in: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            fwd: Lstm::new(d_in, hidden, rng),
            bwd: Lstm::new(d_in, hidden, rng),
        }
    }

    /// Output size (`2 × hidden`).
    pub fn d_out(&self) -> usize {
        2 * self.fwd.hidden()
    }

    fn reverse_rows(x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            out.row_mut(r).copy_from_slice(x.row(x.rows() - 1 - r));
        }
        out
    }

    /// Forward pass returning `(T × 2h)`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let hf = self.fwd.forward(x);
        let hb_rev = self.bwd.forward(&Self::reverse_rows(x));
        Matrix::hcat(&hf, &Self::reverse_rows(&hb_rev))
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let hf = self.fwd.forward_inference(x);
        let hb_rev = self.bwd.forward_inference(&Self::reverse_rows(x));
        Matrix::hcat(&hf, &Self::reverse_rows(&hb_rev))
    }

    /// Backward: splits the gradient, routes through both directions.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let h = self.fwd.hidden();
        let (df, db) = dy.hsplit(h);
        let mut dx = self.fwd.backward(&df);
        let dxb_rev = self.bwd.backward(&Self::reverse_rows(&db));
        dx.add_assign(&Self::reverse_rows(&dxb_rev));
        dx
    }

    /// Parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut p = self.fwd.params_mut();
        p.extend(self.bwd.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sq_loss(y: &Matrix) -> f64 {
        y.data().iter().map(|v| v * v).sum::<f64>() / 2.0
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Lstm::new(3, 4, &mut rng);
        let x = Matrix::xavier(5, 3, &mut rng);
        let h1 = l.forward(&x);
        let h2 = l.forward_inference(&x);
        assert_eq!((h1.rows(), h1.cols()), (5, 4));
        assert_eq!(h1, h2);
    }

    #[test]
    fn lstm_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::xavier(4, 2, &mut rng);
        let mut l = Lstm::new(2, 3, &mut rng);
        let h = l.forward(&x);
        let dx = l.backward(&h); // d(sq_loss)/dh = h
        crate::gradcheck::check_param_grads(
            &mut l,
            |l| sq_loss(&l.forward_inference(&x)),
            |l| vec![&mut l.w, &mut l.u, &mut l.b],
            1e-6,
            1e-5,
        );
        // Input gradient check.
        let eps = 1e-5;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.add_at(r, c, eps);
                let mut xm = x.clone();
                xm.add_at(r, c, -eps);
                let num = (sq_loss(&l.forward_inference(&xp)) - sq_loss(&l.forward_inference(&xm)))
                    / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-5,
                    "dx({r},{c}): {num} vs {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn bilstm_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::xavier(3, 2, &mut rng);
        let mut l = BiLstm::new(2, 2, &mut rng);
        let h = l.forward(&x);
        assert_eq!(h.cols(), 4);
        let dx = l.backward(&h);
        crate::gradcheck::check_param_grads(
            &mut l,
            |l| sq_loss(&l.forward_inference(&x)),
            |l| l.params_mut(),
            1e-6,
            1e-5,
        );
        let eps = 1e-5;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.add_at(r, c, eps);
                let mut xm = x.clone();
                xm.add_at(r, c, -eps);
                let num = (sq_loss(&l.forward_inference(&xp)) - sq_loss(&l.forward_inference(&xm)))
                    / (2.0 * eps);
                assert!((num - dx.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bilstm_backward_direction_sees_future() {
        // With a backward direction, position 0's output must depend on the
        // last input; a unidirectional LSTM's position-0 output must not.
        let mut rng = StdRng::seed_from_u64(3);
        let bi = BiLstm::new(1, 2, &mut rng);
        let x1 = Matrix::from_vec(3, 1, vec![1.0, 0.0, 0.0]);
        let x2 = Matrix::from_vec(3, 1, vec![1.0, 0.0, 5.0]);
        let h1 = bi.forward_inference(&x1);
        let h2 = bi.forward_inference(&x2);
        assert_ne!(h1.row(0), h2.row(0), "bidirectional must see the future");
        let uni = Lstm::new(1, 2, &mut rng);
        let u1 = uni.forward_inference(&x1);
        let u2 = uni.forward_inference(&x2);
        assert_eq!(u1.row(0), u2.row(0), "unidirectional must be causal");
    }

    #[test]
    fn empty_sequence() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = Lstm::new(2, 3, &mut rng);
        let h = l.forward_inference(&Matrix::zeros(0, 2));
        assert_eq!(h.rows(), 0);
    }
}

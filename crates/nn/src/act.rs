//! Activation functions and their backward rules.

use crate::matrix::Matrix;

/// Elementwise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Backward through ReLU: `dx = dy ⊙ 1[x > 0]`.
pub fn relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!((x.rows(), x.cols()), (dy.rows(), dy.cols()));
    let data = x
        .data()
        .iter()
        .zip(dy.data())
        .map(|(&xv, &g)| if xv > 0.0 { g } else { 0.0 })
        .collect();
    Matrix::from_vec(x.rows(), x.cols(), data)
}

/// Scalar logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Scalar tanh (re-exported for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Row-wise softmax with the max-subtraction trick.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out.set(r, c, e);
            sum += e;
        }
        for c in 0..x.cols() {
            out.set(r, c, out.get(r, c) / sum);
        }
    }
    out
}

/// Numerically stable `ln(Σ exp(xᵢ))`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.5, 0.0]);
        let dy = Matrix::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        assert_eq!(relu_backward(&x, &dy).data(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn softmax_rows_normalise() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Larger logits get larger probabilities; huge logits don't overflow.
        assert!(s.get(0, 2) > s.get(0, 0));
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }
}

//! Losses: softmax cross-entropy, binary cross-entropy with logits, hinge.
//!
//! Each returns `(loss, d_logits)` so callers can feed the gradient straight
//! into a module's `backward`.

use crate::act::{sigmoid, softmax_rows};
use crate::matrix::Matrix;

/// Mean softmax cross-entropy over rows; `targets[r]` is the gold class of
/// row `r`. Optional per-row weights rescale each row's contribution (the
/// GCTSP trainer up-weights the rare positive class).
///
/// Returns `(mean loss, d_logits)`.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    row_weights: Option<&[f64]>,
) -> (f64, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "row/target mismatch");
    if let Some(w) = row_weights {
        assert_eq!(w.len(), targets.len());
    }
    let probs = softmax_rows(logits);
    let n = logits.rows().max(1) as f64;
    let total_weight: f64 = row_weights
        .map(|w| w.iter().sum())
        .unwrap_or(n)
        .max(1e-12);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target class out of range");
        let w = row_weights.map(|w| w[r]).unwrap_or(1.0);
        let p = probs.get(r, t).max(1e-300);
        loss -= w * p.ln();
        grad.add_at(r, t, -1.0);
        for c in 0..logits.cols() {
            grad.set(r, c, grad.get(r, c) * w / total_weight);
        }
    }
    (loss / total_weight, grad)
}

/// Mean binary cross-entropy with logits; `targets[i] ∈ {0.0, 1.0}` per
/// element of a 1-column logit matrix.
///
/// Returns `(mean loss, d_logits)`.
pub fn bce_with_logits(logits: &Matrix, targets: &[f64]) -> (f64, Matrix) {
    assert_eq!(logits.cols(), 1, "bce expects a single logit column");
    assert_eq!(logits.rows(), targets.len());
    let n = targets.len().max(1) as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(logits.rows(), 1);
    for (r, &y) in targets.iter().enumerate() {
        let z = logits.get(r, 0);
        // Stable form: max(z,0) - z*y + ln(1 + e^{-|z|}).
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        grad.set(r, 0, (sigmoid(z) - y) / n);
    }
    (loss / n, grad)
}

/// Pairwise hinge loss for embedding training (§3.2, correlate edges):
/// `max(0, margin + d_pos - d_neg)` where `d` are squared Euclidean
/// distances. Returns the loss and the gradients w.r.t. the three vectors
/// (anchor, positive, negative).
pub fn hinge_triplet(
    anchor: &[f64],
    positive: &[f64],
    negative: &[f64],
    margin: f64,
) -> (f64, Vec<f64>, Vec<f64>, Vec<f64>) {
    let d = anchor.len();
    assert_eq!(positive.len(), d);
    assert_eq!(negative.len(), d);
    let d_pos: f64 = anchor
        .iter()
        .zip(positive)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    let d_neg: f64 = anchor
        .iter()
        .zip(negative)
        .map(|(a, n)| (a - n) * (a - n))
        .sum();
    let loss = (margin + d_pos - d_neg).max(0.0);
    let mut ga = vec![0.0; d];
    let mut gp = vec![0.0; d];
    let mut gn = vec![0.0; d];
    if loss > 0.0 {
        for i in 0..d {
            ga[i] = 2.0 * (anchor[i] - positive[i]) - 2.0 * (anchor[i] - negative[i]);
            gp[i] = -2.0 * (anchor[i] - positive[i]);
            gn[i] = 2.0 * (anchor[i] - negative[i]);
        }
    }
    (loss, ga, gp, gn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, None);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.add_at(r, c, eps);
                let mut minus = logits.clone();
                minus.add_at(r, c, -eps);
                let (lp, _) = softmax_cross_entropy(&plus, &targets, None);
                let (lm, _) = softmax_cross_entropy(&minus, &targets, None);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - grad.get(r, c)).abs() < 1e-6,
                    "({r},{c}): num {num} vs analytic {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn weighted_ce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 2, vec![0.3, -0.4, 0.8, 0.1]);
        let targets = [1usize, 0];
        let weights = [3.0, 1.0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, Some(&weights));
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut plus = logits.clone();
                plus.add_at(r, c, eps);
                let mut minus = logits.clone();
                minus.add_at(r, c, -eps);
                let (lp, _) = softmax_cross_entropy(&plus, &targets, Some(&weights));
                let (lm, _) = softmax_cross_entropy(&minus, &targets, Some(&weights));
                let num = (lp - lm) / (2.0 * eps);
                assert!((num - grad.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(3, 1, vec![0.7, -1.2, 0.0]);
        let targets = [1.0, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-6;
        for r in 0..3 {
            let mut plus = logits.clone();
            plus.add_at(r, 0, eps);
            let mut minus = logits.clone();
            minus.add_at(r, 0, -eps);
            let (lp, _) = bce_with_logits(&plus, &targets);
            let (lm, _) = bce_with_logits(&minus, &targets);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad.get(r, 0)).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_loss_is_low_for_confident_correct() {
        let logits = Matrix::from_vec(2, 1, vec![8.0, -8.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn hinge_zero_when_separated() {
        let a = [0.0, 0.0];
        let p = [0.1, 0.0];
        let n = [5.0, 5.0];
        let (loss, ga, _, _) = hinge_triplet(&a, &p, &n, 1.0);
        assert_eq!(loss, 0.0);
        assert!(ga.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn hinge_gradient_matches_finite_difference() {
        let a = vec![0.2, -0.3];
        let p = vec![0.5, 0.1];
        let n = vec![0.4, -0.2];
        let (_, ga, gp, gn) = hinge_triplet(&a, &p, &n, 1.0);
        let eps = 1e-6;
        let f = |a: &[f64], p: &[f64], n: &[f64]| hinge_triplet(a, p, n, 1.0).0;
        for i in 0..2 {
            let mut ap = a.clone();
            ap[i] += eps;
            let mut am = a.clone();
            am[i] -= eps;
            assert!(((f(&ap, &p, &n) - f(&am, &p, &n)) / (2.0 * eps) - ga[i]).abs() < 1e-6);
            let mut pp = p.clone();
            pp[i] += eps;
            let mut pm = p.clone();
            pm[i] -= eps;
            assert!(((f(&a, &pp, &n) - f(&a, &pm, &n)) / (2.0 * eps) - gp[i]).abs() < 1e-6);
            let mut np = n.clone();
            np[i] += eps;
            let mut nm = n.clone();
            nm[i] -= eps;
            assert!(((f(&a, &p, &np) - f(&a, &p, &nm)) / (2.0 * eps) - gn[i]).abs() < 1e-6);
        }
    }
}

//! Linear-chain conditional random field.
//!
//! The LSTM-CRF baselines (paper §5.2) put a CRF on top of BiLSTM emissions
//! and decode BIO tags with Viterbi. This implementation provides the exact
//! negative log-likelihood, its gradient via forward–backward expected
//! counts, and Viterbi decoding — all in log space.

use crate::act::log_sum_exp;
use crate::matrix::Matrix;
use crate::param::Parameter;
use rand::Rng;

/// Linear-chain CRF over `K` tags.
#[derive(Debug, Clone)]
pub struct LinearChainCrf {
    /// Transition scores `(K × K)`: `transitions[i][j]` scores `i → j`.
    pub transitions: Parameter,
    /// Start scores `(1 × K)`.
    pub start: Parameter,
    /// End scores `(1 × K)`.
    pub end: Parameter,
    k: usize,
}

impl LinearChainCrf {
    /// New CRF with small random scores.
    pub fn new<R: Rng>(k: usize, rng: &mut R) -> Self {
        let mut t = Parameter::xavier(k, k, rng);
        t.value.scale(0.1);
        let mut s = Parameter::xavier(1, k, rng);
        s.value.scale(0.1);
        let mut e = Parameter::xavier(1, k, rng);
        e.value.scale(0.1);
        Self {
            transitions: t,
            start: s,
            end: e,
            k,
        }
    }

    /// Number of tags.
    pub fn n_tags(&self) -> usize {
        self.k
    }

    /// Unnormalised score of a tag path.
    pub fn path_score(&self, emissions: &Matrix, tags: &[usize]) -> f64 {
        assert_eq!(emissions.rows(), tags.len());
        if tags.is_empty() {
            return 0.0;
        }
        let mut s = self.start.value.get(0, tags[0]) + emissions.get(0, tags[0]);
        for t in 1..tags.len() {
            s += self.transitions.value.get(tags[t - 1], tags[t]) + emissions.get(t, tags[t]);
        }
        s + self.end.value.get(0, tags[tags.len() - 1])
    }

    fn forward_alphas(&self, emissions: &Matrix) -> Vec<Vec<f64>> {
        let t_len = emissions.rows();
        let k = self.k;
        let mut alpha = vec![vec![0.0; k]; t_len];
        for (j, a) in alpha[0].iter_mut().enumerate() {
            *a = self.start.value.get(0, j) + emissions.get(0, j);
        }
        let mut scratch = vec![0.0; k];
        for t in 1..t_len {
            for j in 0..k {
                for i in 0..k {
                    scratch[i] = alpha[t - 1][i] + self.transitions.value.get(i, j);
                }
                alpha[t][j] = log_sum_exp(&scratch) + emissions.get(t, j);
            }
        }
        alpha
    }

    fn backward_betas(&self, emissions: &Matrix) -> Vec<Vec<f64>> {
        let t_len = emissions.rows();
        let k = self.k;
        let mut beta = vec![vec![0.0; k]; t_len];
        for (j, b) in beta[t_len - 1].iter_mut().enumerate() {
            *b = self.end.value.get(0, j);
        }
        let mut scratch = vec![0.0; k];
        for t in (0..t_len - 1).rev() {
            for i in 0..k {
                for j in 0..k {
                    scratch[j] =
                        self.transitions.value.get(i, j) + emissions.get(t + 1, j) + beta[t + 1][j];
                }
                beta[t][i] = log_sum_exp(&scratch);
            }
        }
        beta
    }

    /// Log partition function.
    pub fn log_partition(&self, emissions: &Matrix) -> f64 {
        if emissions.rows() == 0 {
            return 0.0;
        }
        let alpha = self.forward_alphas(emissions);
        let last = alpha.last().expect("non-empty");
        let terms: Vec<f64> = (0..self.k)
            .map(|j| last[j] + self.end.value.get(0, j))
            .collect();
        log_sum_exp(&terms)
    }

    /// Negative log-likelihood of `tags`; accumulates parameter gradients and
    /// returns `(nll, d_emissions)`.
    pub fn nll(&mut self, emissions: &Matrix, tags: &[usize]) -> (f64, Matrix) {
        let t_len = emissions.rows();
        assert_eq!(tags.len(), t_len);
        assert!(t_len > 0, "empty sequence");
        let k = self.k;
        let alpha = self.forward_alphas(emissions);
        let beta = self.backward_betas(emissions);
        let log_z = {
            let last = alpha.last().expect("non-empty");
            let terms: Vec<f64> = (0..k).map(|j| last[j] + self.end.value.get(0, j)).collect();
            log_sum_exp(&terms)
        };
        let nll = log_z - self.path_score(emissions, tags);

        // Unary marginals -> emission gradient, start/end gradients.
        let mut d_em = Matrix::zeros(t_len, k);
        for t in 0..t_len {
            for j in 0..k {
                let p = (alpha[t][j] + beta[t][j] - log_z).exp();
                d_em.set(t, j, p);
            }
            d_em.add_at(t, tags[t], -1.0);
        }
        for j in 0..k {
            let p0 = (alpha[0][j] + beta[0][j] - log_z).exp();
            self.start.grad.add_at(0, j, p0);
            let pt = (alpha[t_len - 1][j] + beta[t_len - 1][j] - log_z).exp();
            self.end.grad.add_at(0, j, pt);
        }
        self.start.grad.add_at(0, tags[0], -1.0);
        self.end.grad.add_at(0, tags[t_len - 1], -1.0);

        // Pairwise marginals -> transition gradient.
        for t in 0..t_len - 1 {
            for (i, &a_ti) in alpha[t].iter().enumerate() {
                for (j, &b_next_j) in beta[t + 1].iter().enumerate() {
                    let p = (a_ti
                        + self.transitions.value.get(i, j)
                        + emissions.get(t + 1, j)
                        + b_next_j
                        - log_z)
                        .exp();
                    self.transitions.grad.add_at(i, j, p);
                }
            }
            self.transitions.grad.add_at(tags[t], tags[t + 1], -1.0);
        }
        (nll, d_em)
    }

    /// Viterbi decoding: the highest-scoring tag path.
    pub fn viterbi(&self, emissions: &Matrix) -> Vec<usize> {
        let t_len = emissions.rows();
        if t_len == 0 {
            return Vec::new();
        }
        let k = self.k;
        let mut score = vec![vec![f64::NEG_INFINITY; k]; t_len];
        let mut back = vec![vec![0usize; k]; t_len];
        for (j, s) in score[0].iter_mut().enumerate() {
            *s = self.start.value.get(0, j) + emissions.get(0, j);
        }
        for t in 1..t_len {
            for j in 0..k {
                let (bi, bs) = (0..k)
                    .map(|i| (i, score[t - 1][i] + self.transitions.value.get(i, j)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("k > 0");
                score[t][j] = bs + emissions.get(t, j);
                back[t][j] = bi;
            }
        }
        let mut best = (0..k)
            .max_by(|&a, &b| {
                (score[t_len - 1][a] + self.end.value.get(0, a))
                    .total_cmp(&(score[t_len - 1][b] + self.end.value.get(0, b)))
            })
            .expect("k > 0");
        let mut tags = vec![best; t_len];
        for t in (1..t_len).rev() {
            best = back[t][best];
            tags[t - 1] = best;
        }
        tags
    }

    /// Parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.transitions, &mut self.start, &mut self.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_paths(t_len: usize, k: usize) -> Vec<Vec<usize>> {
        let mut paths = vec![Vec::new()];
        for _ in 0..t_len {
            let mut next = Vec::new();
            for p in &paths {
                for j in 0..k {
                    let mut q = p.clone();
                    q.push(j);
                    next.push(q);
                }
            }
            paths = next;
        }
        paths
    }

    #[test]
    fn log_partition_equals_brute_force() {
        let mut rng = StdRng::seed_from_u64(0);
        let crf = LinearChainCrf::new(3, &mut rng);
        let em = Matrix::xavier(4, 3, &mut rng);
        let brute: Vec<f64> = all_paths(4, 3)
            .iter()
            .map(|p| crf.path_score(&em, p))
            .collect();
        let z_brute = crate::act::log_sum_exp(&brute);
        let z = crf.log_partition(&em);
        assert!((z - z_brute).abs() < 1e-9, "{z} vs {z_brute}");
    }

    #[test]
    fn viterbi_equals_brute_force_argmax() {
        let mut rng = StdRng::seed_from_u64(1);
        let crf = LinearChainCrf::new(3, &mut rng);
        let em = Matrix::xavier(5, 3, &mut rng);
        let best_brute = all_paths(5, 3)
            .into_iter()
            .max_by(|a, b| crf.path_score(&em, a).total_cmp(&crf.path_score(&em, b)))
            .unwrap();
        assert_eq!(crf.viterbi(&em), best_brute);
    }

    #[test]
    fn nll_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut crf = LinearChainCrf::new(3, &mut rng);
        let em = Matrix::xavier(4, 3, &mut rng);
        let tags = vec![0usize, 2, 1, 1];
        let (_, d_em) = crf.nll(&em, &tags);
        crate::gradcheck::check_param_grads(
            &mut crf,
            |c| c.log_partition(&em) - c.path_score(&em, &tags),
            |c| vec![&mut c.transitions, &mut c.start, &mut c.end],
            1e-6,
            1e-5,
        );
        // Emission gradient check.
        let eps = 1e-6;
        for t in 0..4 {
            for j in 0..3 {
                let mut ep = em.clone();
                ep.add_at(t, j, eps);
                let mut emn = em.clone();
                emn.add_at(t, j, -eps);
                let lp = crf.log_partition(&ep) - crf.path_score(&ep, &tags);
                let lm = crf.log_partition(&emn) - crf.path_score(&emn, &tags);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - d_em.get(t, j)).abs() < 1e-6,
                    "d_em({t},{j}): {num} vs {}",
                    d_em.get(t, j)
                );
            }
        }
    }

    #[test]
    fn nll_is_nonnegative_and_zero_only_when_certain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut crf = LinearChainCrf::new(2, &mut rng);
        let em = Matrix::from_vec(3, 2, vec![50.0, 0.0, 50.0, 0.0, 0.0, 50.0]);
        let (nll_good, _) = crf.nll(&em, &[0, 0, 1]);
        let (nll_bad, _) = crf.nll(&em, &[1, 1, 0]);
        assert!(nll_good >= -1e-9);
        assert!(nll_bad > nll_good + 10.0);
    }

    #[test]
    fn single_token_sequence() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut crf = LinearChainCrf::new(3, &mut rng);
        let em = Matrix::from_vec(1, 3, vec![0.0, 10.0, 0.0]);
        assert_eq!(crf.viterbi(&em), vec![1]);
        let (nll, _) = crf.nll(&em, &[1]);
        assert!(nll < 1.0);
    }
}

//! Gradient-boosted decision trees with logistic loss.
//!
//! Paper §3.2: "we can train a classifier such as GBDT based on manual
//! features" to decide isA relationships between concept–entity pairs. This
//! is a small but real XGBoost-style implementation: second-order (Newton)
//! gain, depth-limited exhaustive split search, shrinkage, and L2 leaf
//! regularisation.

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// L2 regularisation on leaf weights.
    pub lambda: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            max_depth: 3,
            min_samples_leaf: 2,
            learning_rate: 0.3,
            lambda: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf(f64),
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Binary classifier: boosted trees over dense feature vectors.
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<Tree>,
    base_score: f64,
    cfg: GbdtConfig,
    n_features: usize,
}

impl Gbdt {
    /// Trains on `(features, labels ∈ {0,1})`.
    ///
    /// Panics on empty data or inconsistent feature lengths.
    pub fn train(features: &[Vec<f64>], labels: &[f64], cfg: GbdtConfig) -> Self {
        assert!(!features.is_empty(), "empty training set");
        assert_eq!(features.len(), labels.len());
        let n_features = features[0].len();
        assert!(features.iter().all(|f| f.len() == n_features));
        let n = features.len() as f64;
        let pos: f64 = labels.iter().sum();
        let p = (pos / n).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p / (1.0 - p)).ln();

        // Global stable value order per feature, computed once. Node-local
        // orders are recovered by filtering these through a membership
        // mask at O(n) per node-feature, instead of O(m log m) sorts
        // repeated per node per tree. Tie-breaking note: equal feature
        // values now scan in ascending example order everywhere. The old
        // per-node buffer was re-sorted in place feature after feature,
        // so ties on feature f inherited the feature f-1 ordering — an
        // accident of buffer reuse, not a chosen semantic. The change is
        // deterministic and observed output-neutral on every golden and
        // table in the repo (the seed-42 goldens pass unchanged), but on
        // inputs with tied feature values inside a node the selected
        // split may differ from the pre-presort code in the last ULP of
        // its gain comparison.
        let orders: Vec<Vec<u32>> = (0..n_features)
            .map(|f| {
                let mut o: Vec<u32> = (0..features.len() as u32).collect();
                o.sort_by(|&a, &b| {
                    features[a as usize][f].total_cmp(&features[b as usize][f])
                });
                o
            })
            .collect();
        let mut mark = vec![false; features.len()];

        let mut scores = vec![base_score; features.len()];
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees {
            // Logistic loss gradients/hessians.
            let mut grad = Vec::with_capacity(scores.len());
            let mut hess = Vec::with_capacity(scores.len());
            for (s, &y) in scores.iter().zip(labels) {
                let pr = 1.0 / (1.0 + (-s).exp());
                grad.push(pr - y);
                hess.push((pr * (1.0 - pr)).max(1e-12));
            }
            let idx: Vec<usize> = (0..features.len()).collect();
            let mut tree = Tree { nodes: Vec::new() };
            Self::build_node(&mut tree, features, &grad, &hess, &idx, 0, &cfg, &orders, &mut mark);
            for (i, s) in scores.iter_mut().enumerate() {
                *s += cfg.learning_rate * tree.predict(&features[i]);
            }
            trees.push(tree);
        }
        Self {
            trees,
            base_score,
            cfg,
            n_features,
        }
    }

    fn leaf_value(grad: &[f64], hess: &[f64], idx: &[usize], lambda: f64) -> f64 {
        let g: f64 = idx.iter().map(|&i| grad[i]).sum();
        let h: f64 = idx.iter().map(|&i| hess[i]).sum();
        -g / (h + lambda)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        tree: &mut Tree,
        features: &[Vec<f64>],
        grad: &[f64],
        hess: &[f64],
        idx: &[usize],
        depth: usize,
        cfg: &GbdtConfig,
        orders: &[Vec<u32>],
        mark: &mut Vec<bool>,
    ) -> usize {
        let make_leaf = |tree: &mut Tree| {
            tree.nodes
                .push(Node::Leaf(Self::leaf_value(grad, hess, idx, cfg.lambda)));
            tree.nodes.len() - 1
        };
        if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_samples_leaf {
            return make_leaf(tree);
        }
        let g_total: f64 = idx.iter().map(|&i| grad[i]).sum();
        let h_total: f64 = idx.iter().map(|&i| hess[i]).sum();
        let score_parent = g_total * g_total / (h_total + cfg.lambda);

        let n_features = features[idx[0]].len();
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &i in idx {
            mark[i] = true;
        }
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        // `f` ranges over feature *columns* of the row-major `features`;
        // clippy's iterate-over-`features` suggestion would walk rows.
        #[allow(clippy::needless_range_loop)]
        for f in 0..n_features {
            order.clear();
            order.extend(orders[f].iter().map(|&i| i as usize).filter(|&i| mark[i]));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..order.len() - 1 {
                let i = order[k];
                gl += grad[i];
                hl += hess[i];
                // Candidate split between k and k+1; skip equal values.
                let v0 = features[order[k]][f];
                let v1 = features[order[k + 1]][f];
                if v0 == v1 {
                    continue;
                }
                let left_n = k + 1;
                let right_n = order.len() - left_n;
                if left_n < cfg.min_samples_leaf || right_n < cfg.min_samples_leaf {
                    continue;
                }
                let gr = g_total - gl;
                let hr = h_total - hl;
                let gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda)
                    - score_parent;
                let thr = 0.5 * (v0 + v1);
                if best.map(|(bg, _, _)| gain > bg).unwrap_or(gain > 1e-12) {
                    best = Some((gain, f, thr));
                }
            }
        }
        for &i in idx {
            mark[i] = false;
        }
        let Some((_, feature, threshold)) = best else {
            return make_leaf(tree);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| features[i][feature] <= threshold);
        // Reserve this node, then build children.
        let me = tree.nodes.len();
        tree.nodes.push(Node::Leaf(0.0)); // placeholder
        let left = Self::build_node(tree, features, grad, hess, &left_idx, depth + 1, cfg, orders, mark);
        let right = Self::build_node(tree, features, grad, hess, &right_idx, depth + 1, cfg, orders, mark);
        tree.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature length mismatch");
        let mut s = self.base_score;
        for t in &self.trees {
            s += self.cfg.learning_rate * t.predict(x);
        }
        1.0 / (1.0 + (-s).exp())
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Number of trees actually grown.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn learns_axis_aligned_threshold() {
        let features: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 0.0]).collect();
        let labels: Vec<f64> = (0..40).map(|i| if i >= 20 { 1.0 } else { 0.0 }).collect();
        let g = Gbdt::train(&features, &labels, GbdtConfig::default());
        assert!(g.predict(&[35.0, 0.0]));
        assert!(!g.predict(&[3.0, 0.0]));
        assert!(g.predict_proba(&[39.0, 0.0]) > 0.9);
        assert!(g.predict_proba(&[0.0, 0.0]) < 0.1);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        // XOR needs interaction; impossible for a depth-1 stump ensemble on
        // symmetric data but easy at depth >= 2.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let a = f64::from(rng.random::<bool>());
            let b = f64::from(rng.random::<bool>());
            features.push(vec![a, b]);
            labels.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        let cfg = GbdtConfig {
            n_trees: 30,
            max_depth: 2,
            ..GbdtConfig::default()
        };
        let g = Gbdt::train(&features, &labels, cfg);
        assert!(g.predict(&[1.0, 0.0]));
        assert!(g.predict(&[0.0, 1.0]));
        assert!(!g.predict(&[0.0, 0.0]));
        assert!(!g.predict(&[1.0, 1.0]));
    }

    #[test]
    fn constant_labels_predict_constant() {
        let features = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let labels = vec![1.0; 4];
        let g = Gbdt::train(&features, &labels, GbdtConfig::default());
        assert!(g.predict_proba(&[10.0]) > 0.9);
    }

    #[test]
    fn training_is_deterministic() {
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let labels: Vec<f64> = (0..30).map(|i| f64::from(i % 7 >= 3)).collect();
        let a = Gbdt::train(&features, &labels, GbdtConfig::default());
        let b = Gbdt::train(&features, &labels, GbdtConfig::default());
        for f in &features {
            assert_eq!(a.predict_proba(f), b.predict_proba(f));
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        let _ = Gbdt::train(&[], &[], GbdtConfig::default());
    }

    #[test]
    fn newton_leaf_matches_finite_difference_derivatives() {
        // A GBDT has no backward pass, but its leaf weights are Newton
        // steps -G/(H+λ) built from the analytic gradient (p-y) and hessian
        // p(1-p) of the logistic loss. A single leaf over ALL samples would
        // sit exactly at the base-score optimum (G ≈ 0, leaf ≈ 0 — a vacuous
        // check), so force one depth-1 split whose leaves have label rates
        // different from the global rate: their Newton steps are then
        // nonzero, and we reproduce each from G and H obtained by central
        // finite differences of that leaf's summed logistic loss.
        let labels = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let features: Vec<Vec<f64>> = (0..8).map(|i| vec![f64::from(i >= 4)]).collect();
        let lambda = 0.7;
        let cfg = GbdtConfig {
            n_trees: 1,
            max_depth: 1,
            learning_rate: 1.0,
            lambda,
            ..GbdtConfig::default()
        };
        let g = Gbdt::train(&features, &labels, cfg);

        let p = labels.iter().sum::<f64>() / labels.len() as f64;
        let base = (p / (1.0 - p)).ln();
        let eps = 1e-5;
        for (x, leaf_labels) in [(0.0, &labels[..4]), (1.0, &labels[4..])] {
            // L(s) = Σ_i ln(1+e^s) - y_i s over this leaf's samples.
            let leaf_loss = |s: f64| -> f64 {
                leaf_labels.iter().map(|y| (1.0 + s.exp()).ln() - y * s).sum()
            };
            let g_num = (leaf_loss(base + eps) - leaf_loss(base - eps)) / (2.0 * eps);
            let h_num = (leaf_loss(base + eps) - 2.0 * leaf_loss(base)
                + leaf_loss(base - eps))
                / (eps * eps);
            let expected_score = base - g_num / (h_num + lambda);
            assert!(
                (expected_score - base).abs() > 0.1,
                "degenerate setup: leaf at x={x} has a near-zero Newton step"
            );
            let expected_proba = 1.0 / (1.0 + (-expected_score).exp());
            let got = g.predict_proba(&[x]);
            assert!(
                (got - expected_proba).abs() < 1e-6,
                "leaf at x={x}: analytic Newton step {got:.9} vs finite-difference {expected_proba:.9}"
            );
        }
    }

    #[test]
    fn respects_min_samples_leaf() {
        let features: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let labels = vec![0.0, 1.0, 0.0, 1.0];
        let cfg = GbdtConfig {
            min_samples_leaf: 3,
            n_trees: 5,
            ..GbdtConfig::default()
        };
        // Only 4 samples with min leaf 3 => no split possible; must not panic.
        let g = Gbdt::train(&features, &labels, cfg);
        assert_eq!(g.n_trees(), 5);
    }
}

//! Dense row-major `f64` matrix with exactly the operations the layers need.

use rand::{Rng, RngExt};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a row-major vector. Panics when sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation: `U(-s, s)` with
    /// `s = sqrt(6 / (rows + cols))`.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let s = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * s)
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for 0x0 / empty matrices.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self @ other` — standard matmul.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materialising the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f64 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.data[i * other.rows + j] = dot;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other` (elementwise). Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += k * other`.
    pub fn add_scaled(&mut self, other: &Matrix, k: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Multiplies every element by `k`.
    pub fn scale(&mut self, k: f64) {
        self.data.iter_mut().for_each(|v| *v *= k);
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&v| f(v)).collect())
    }

    /// Adds a 1-row bias to every row.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Sums rows into a 1-row matrix (bias gradient).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius inner product `<self, other>`.
    pub fn frobenius_dot(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Extracts rows `[start, end)` as a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows);
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Horizontally concatenates `a | b` (same row count).
    pub fn hcat(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(a.rows, a.cols + b.cols);
        for r in 0..a.rows {
            out.data[r * (a.cols + b.cols)..r * (a.cols + b.cols) + a.cols]
                .copy_from_slice(a.row(r));
            out.data[r * (a.cols + b.cols) + a.cols..(r + 1) * (a.cols + b.cols)]
                .copy_from_slice(b.row(r));
        }
        out
    }

    /// Splits columns at `at`, returning `(left, right)`.
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols);
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(5, 3, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::xavier(3, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        // sum_rows is the gradient of add_row_broadcast: check shapes/values.
        let mut x = Matrix::zeros(3, 2);
        let bias = m(1, 2, &[1.0, -2.0]);
        x.add_row_broadcast(&bias);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        let g = x.sum_rows();
        assert_eq!(g, m(1, 2, &[3.0, -6.0]));
    }

    #[test]
    fn hcat_hsplit_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::xavier(3, 2, &mut rng);
        let b = Matrix::xavier(3, 4, &mut rng);
        let c = Matrix::hcat(&a, &b);
        let (l, r) = c.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::xavier(10, 10, &mut rng);
        let s = (6.0 / 20.0f64).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= s));
        // Not all zero.
        assert!(a.data().iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn slice_rows_extracts_contiguous() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_rows(1, 3), m(2, 2, &[3.0, 4.0, 5.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[2.0, 0.5, -1.0]);
        assert_eq!(a.hadamard(&b), m(1, 3, &[2.0, 1.0, -3.0]));
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c, m(1, 3, &[2.0, 4.0, 6.0]));
    }
}

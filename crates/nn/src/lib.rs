//! # giant-nn — learning substrate for the GIANT reproduction
//!
//! The paper's models (GCTSP-Net's R-GCN, the LSTM-CRF baselines, the
//! TextSummary seq2seq, the Duet matcher, the concept–entity GBDT) were built
//! on production deep-learning stacks. Mature GNN crates are not available in
//! this environment (DESIGN.md S4), so this crate implements the required
//! layers from scratch with *manually derived backward passes*, each verified
//! against finite differences in unit tests.
//!
//! Design notes:
//! * `f64` everywhere — model sizes are tiny (hidden 32, graphs < 200 nodes),
//!   so we buy exact reproducibility and tight gradient checks for free.
//! * No autograd tape: each module caches its forward activations and exposes
//!   `backward`, which accumulates into [`Parameter::grad`]. This keeps the
//!   code auditable — every gradient formula is written out.
//! * Deterministic: all initialisation flows from a caller-provided RNG.
//!
//! Modules:
//! * [`matrix`] — dense row-major matrix with the linear algebra the layers need.
//! * [`param`] / [`optim`] — parameters and SGD/Adam.
//! * [`act`] / [`loss`] — activations and losses (softmax CE, BCE, hinge).
//! * [`linear`] / [`embedding_layer`] — dense layer and embedding tables.
//! * [`lstm`] — LSTM / BiLSTM with full BPTT.
//! * [`crf`] — linear-chain CRF (log-forward, Viterbi, exact NLL gradient).
//! * [`rgcn`] — relational graph convolution with basis decomposition (eq. 5–6).
//! * [`gbdt`] — gradient-boosted trees with logistic loss.
//! * [`gradcheck`] — finite-difference verification helpers used by tests.

pub mod act;
pub mod crf;
pub mod embedding_layer;
pub mod gbdt;
pub mod gradcheck;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod optim;
pub mod param;
pub mod rgcn;

pub use act::{relu, relu_backward, sigmoid, softmax_rows, tanh};
pub use crf::LinearChainCrf;
pub use embedding_layer::EmbeddingLayer;
pub use gbdt::{Gbdt, GbdtConfig};
pub use linear::Linear;
pub use loss::{bce_with_logits, softmax_cross_entropy};
pub use lstm::{BiLstm, Lstm};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use param::Parameter;
pub use rgcn::{RgcnLayer, TypedEdge};

//! Finite-difference gradient verification.
//!
//! Every manually derived backward pass in this crate is checked against
//! central differences. The helper perturbs each weight of each parameter,
//! re-evaluates the loss, and compares with the analytic gradient.

use crate::param::Parameter;

/// Verifies the analytic gradients stored in `params(model)` against central
/// finite differences of `loss(model)`.
///
/// The caller must have already run forward+backward so that `grad` holds the
/// analytic gradient of the *same* loss the closure computes. The closure
/// must not mutate cached state in a way that changes the loss (use
/// inference-style forwards inside it).
///
/// Panics with a descriptive message when any component deviates more than
/// `tol_abs + tol_rel * |analytic|`.
pub fn check_param_grads<M>(
    model: &mut M,
    loss: impl Fn(&mut M) -> f64,
    params: impl Fn(&mut M) -> Vec<&mut Parameter>,
    tol_abs: f64,
    tol_rel: f64,
) {
    let eps = 1e-5;
    let n_params = params(model).len();
    for pi in 0..n_params {
        let n_weights = params(model)[pi].n_weights();
        for wi in 0..n_weights {
            let analytic = params(model)[pi].grad.data()[wi];
            let orig = params(model)[pi].value.data()[wi];
            params(model)[pi].value.data_mut()[wi] = orig + eps;
            let lp = loss(model);
            params(model)[pi].value.data_mut()[wi] = orig - eps;
            let lm = loss(model);
            params(model)[pi].value.data_mut()[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let err = (numeric - analytic).abs();
            let tol = tol_abs + tol_rel * analytic.abs();
            assert!(
                err <= tol,
                "grad mismatch: param {pi} weight {wi}: numeric {numeric:.9} vs analytic {analytic:.9} (err {err:.2e} > tol {tol:.2e})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    struct Quadratic {
        p: Parameter,
    }

    #[test]
    fn accepts_correct_gradient() {
        // loss = sum(p^2)/2, grad = p.
        let mut model = Quadratic {
            p: Parameter::from_value(Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0])),
        };
        model.p.grad = model.p.value.clone();
        check_param_grads(
            &mut model,
            |m| m.p.value.data().iter().map(|v| v * v).sum::<f64>() / 2.0,
            |m| vec![&mut m.p],
            1e-7,
            1e-6,
        );
    }

    #[test]
    #[should_panic(expected = "grad mismatch")]
    fn rejects_wrong_gradient() {
        let mut model = Quadratic {
            p: Parameter::from_value(Matrix::from_vec(1, 2, vec![1.0, 1.0])),
        };
        model.p.grad = Matrix::from_vec(1, 2, vec![5.0, 5.0]); // wrong
        check_param_grads(
            &mut model,
            |m| m.p.value.data().iter().map(|v| v * v).sum::<f64>() / 2.0,
            |m| vec![&mut m.p],
            1e-7,
            1e-6,
        );
    }
}

//! Optimizers: SGD with momentum and Adam.
//!
//! Both operate on a slice of `&mut Parameter` that must be supplied in the
//! same order on every step (state is positional).

use crate::param::Parameter;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.n_weights()]).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "param set changed");
        for (p, vel) in params.iter_mut().zip(self.velocity.iter_mut()) {
            assert_eq!(vel.len(), p.n_weights(), "param shape changed");
            let g = p.grad.data().to_vec();
            let val = p.value.data_mut();
            for i in 0..val.len() {
                vel[i] = self.momentum * vel[i] - self.lr * g[i];
                val[i] += vel[i];
            }
            p.zero_grad();
        }
    }
}

/// Adam optimizer (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.n_weights()]).collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "param set changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (pi, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[pi].len(), p.n_weights(), "param shape changed");
            let g = p.grad.data().to_vec();
            let val = p.value.data_mut();
            let (m, v) = (&mut self.m[pi], &mut self.v[pi]);
            for i in 0..val.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                val[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Minimise f(x) = (x - 3)^2 with each optimizer; both must converge.
    fn quadratic_descent(mut step: impl FnMut(&mut Parameter, usize)) -> f64 {
        let mut p = Parameter::from_value(Matrix::from_vec(1, 1, vec![0.0]));
        for it in 0..500 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            step(&mut p, it);
        }
        p.value.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05, 0.5);
        let x = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let x = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Parameter::from_value(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        p.grad.set(0, 0, 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "param set changed")]
    fn param_count_is_locked_after_first_step() {
        let mut a = Parameter::zeros(1, 1);
        let mut b = Parameter::zeros(1, 1);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut a]);
        opt.step(&mut [&mut a, &mut b]);
    }
}

//! Fully connected layer `y = xW + b` with manual backward.

use crate::matrix::Matrix;
use crate::param::Parameter;
use rand::Rng;

/// Dense layer. `W` is `(in × out)`, `b` is `(1 × out)`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix.
    pub w: Parameter,
    /// Bias row.
    pub b: Parameter,
    cache_x: Option<Matrix>,
}

impl Linear {
    /// Xavier-initialised dense layer.
    pub fn new<R: Rng>(d_in: usize, d_out: usize, rng: &mut R) -> Self {
        Self {
            w: Parameter::xavier(d_in, d_out, rng),
            b: Parameter::zeros(1, d_out),
            cache_x: None,
        }
    }

    /// Wraps existing parameters (checkpoint restore): the forward cache
    /// starts empty, exactly as after [`Linear::new`].
    pub fn from_params(w: Parameter, b: Parameter) -> Self {
        assert_eq!(w.value.cols(), b.value.cols(), "bias width must match W");
        Self {
            w,
            b,
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn d_in(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimensionality.
    pub fn d_out(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass; caches `x` for the backward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(&self.b.value);
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward without caching (inference).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(&self.b.value);
        y
    }

    /// Backward pass: accumulates `dW = xᵀ dy`, `db = Σ_rows dy`, returns
    /// `dx = dy Wᵀ`. Panics if `forward` was not called.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        self.w.grad.add_assign(&x.matmul_tn(dy));
        self.b.grad.add_assign(&dy.sum_rows());
        dy.matmul_nt(&self.w.value)
    }

    /// The layer's parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_grads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 5, &mut rng);
        let x = Matrix::xavier(4, 3, &mut rng);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
        assert_eq!(l.d_in(), 3);
        assert_eq!(l.d_out(), 5);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::xavier(4, 3, &mut rng);
        // Loss = sum(y^2)/2 so that d_loss/dy = y.
        let make_loss = |l: &mut Linear| {
            let y = l.forward(&x);
            let loss: f64 = y.data().iter().map(|v| v * v).sum::<f64>() / 2.0;
            (loss, y)
        };
        let mut l = Linear::new(3, 2, &mut rng);
        let (_, y) = make_loss(&mut l);
        let dx = l.backward(&y);
        assert_eq!((dx.rows(), dx.cols()), (4, 3));
        // Check W and b grads numerically.
        check_param_grads(
            &mut l,
            |l| {
                let y = l.forward_inference(&x);
                y.data().iter().map(|v| v * v).sum::<f64>() / 2.0
            },
            |l| vec![&mut l.w, &mut l.b],
            1e-6,
            1e-6,
        );
        // Check dx numerically.
        let eps = 1e-6;
        for r in 0..4 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.add_at(r, c, eps);
                let mut xm = x.clone();
                xm.add_at(r, c, -eps);
                let yp = l.forward_inference(&xp);
                let ym = l.forward_inference(&xm);
                let lp: f64 = yp.data().iter().map(|v| v * v).sum::<f64>() / 2.0;
                let lm: f64 = ym.data().iter().map(|v| v * v).sum::<f64>() / 2.0;
                let num = (lp - lm) / (2.0 * eps);
                assert!((num - dx.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "forward before backward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        let dy = Matrix::zeros(1, 2);
        let _ = l.backward(&dy);
    }
}

//! Relational Graph Convolutional Network layer (Schlichtkrull et al. 2017),
//! exactly as used by GCTSP-Net (paper §3.1, eq. 5–6):
//!
//! ```text
//! h_v^{l+1} = σ( Σ_r Σ_{w ∈ N_r(v)} (1/c_vw) W_r^l h_w^l  +  W_0^l h_v^l )
//! W_r = Σ_b a_rb V_b                      (basis decomposition, eq. 6)
//! ```
//!
//! with `c_vw = |N_r(v)|` (per-relation in-degree normalisation). The layer
//! itself is linear; callers apply the activation (ReLU between layers,
//! softmax at the head) so the final layer can emit logits.

use crate::matrix::Matrix;
use crate::param::Parameter;
use rand::Rng;
use std::collections::BTreeMap;

/// One typed directed edge `src --rel--> dst` (message flows src → dst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypedEdge {
    /// Message source node.
    pub src: usize,
    /// Message destination node.
    pub dst: usize,
    /// Relation type index in `[0, n_rels)`.
    pub rel: usize,
}

#[derive(Debug, Clone)]
struct RgcnCache {
    x: Matrix,
    /// Aggregated normalised neighbour features per relation present in the
    /// batch: `m_r[dst] = Σ_{src ∈ N_r(dst)} x[src] / |N_r(dst)|`.
    m: BTreeMap<usize, Matrix>,
    /// Per-relation in-degree of each node.
    indeg: BTreeMap<usize, Vec<f64>>,
    edges: Vec<TypedEdge>,
}

/// One R-GCN layer with basis decomposition.
#[derive(Debug, Clone)]
pub struct RgcnLayer {
    /// Basis matrices `V_b`, each `(d_in × d_out)`.
    pub bases: Vec<Parameter>,
    /// Basis coefficients `a_rb`, `(n_rels × n_bases)`.
    pub coeffs: Parameter,
    /// Self-connection weight `W_0`, `(d_in × d_out)`.
    pub self_w: Parameter,
    n_rels: usize,
    cache: Option<RgcnCache>,
}

impl RgcnLayer {
    /// New layer for `n_rels` relation types with `n_bases` bases.
    pub fn new<R: Rng>(
        d_in: usize,
        d_out: usize,
        n_rels: usize,
        n_bases: usize,
        rng: &mut R,
    ) -> Self {
        assert!(n_bases >= 1, "need at least one basis");
        let bases = (0..n_bases)
            .map(|_| Parameter::xavier(d_in, d_out, rng))
            .collect();
        Self {
            bases,
            coeffs: Parameter::xavier(n_rels, n_bases, rng),
            self_w: Parameter::xavier(d_in, d_out, rng),
            n_rels,
            cache: None,
        }
    }

    /// Input dimensionality.
    pub fn d_in(&self) -> usize {
        self.self_w.value.rows()
    }

    /// Output dimensionality.
    pub fn d_out(&self) -> usize {
        self.self_w.value.cols()
    }

    /// Number of relation types.
    pub fn n_rels(&self) -> usize {
        self.n_rels
    }

    /// Effective relation weight `W_r = Σ_b a_rb V_b`.
    fn w_r(&self, r: usize) -> Matrix {
        let mut w = Matrix::zeros(self.d_in(), self.d_out());
        for (b, basis) in self.bases.iter().enumerate() {
            w.add_scaled(&basis.value, self.coeffs.value.get(r, b));
        }
        w
    }

    fn aggregate(
        &self,
        x: &Matrix,
        edges: &[TypedEdge],
    ) -> (BTreeMap<usize, Matrix>, BTreeMap<usize, Vec<f64>>) {
        let n = x.rows();
        let mut indeg: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for e in edges {
            assert!(e.rel < self.n_rels, "relation {} out of range", e.rel);
            assert!(e.src < n && e.dst < n, "edge node out of range");
            indeg.entry(e.rel).or_insert_with(|| vec![0.0; n])[e.dst] += 1.0;
        }
        let mut m: BTreeMap<usize, Matrix> = BTreeMap::new();
        for e in edges {
            let c = indeg[&e.rel][e.dst];
            let mr = m
                .entry(e.rel)
                .or_insert_with(|| Matrix::zeros(n, x.cols()));
            let src_row = x.row(e.src).to_vec();
            let dst_row = mr.row_mut(e.dst);
            for (d, s) in dst_row.iter_mut().zip(&src_row) {
                *d += s / c;
            }
        }
        (m, indeg)
    }

    /// Forward pass over node features `x (N × d_in)` and typed edges.
    pub fn forward(&mut self, x: &Matrix, edges: &[TypedEdge]) -> Matrix {
        let (m, indeg) = self.aggregate(x, edges);
        let mut out = x.matmul(&self.self_w.value);
        for (&r, mr) in &m {
            out.add_assign(&mr.matmul(&self.w_r(r)));
        }
        self.cache = Some(RgcnCache {
            x: x.clone(),
            m,
            indeg,
            edges: edges.to_vec(),
        });
        out
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix, edges: &[TypedEdge]) -> Matrix {
        let (m, _) = self.aggregate(x, edges);
        let mut out = x.matmul(&self.self_w.value);
        for (&r, mr) in &m {
            out.add_assign(&mr.matmul(&self.w_r(r)));
        }
        out
    }

    /// Backward pass: accumulates gradients for the bases, coefficients and
    /// self-weight, and returns `dx`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        // Self connection.
        self.self_w.grad.add_assign(&cache.x.matmul_tn(dy));
        let mut dx = dy.matmul_nt(&self.self_w.value);
        // Per-relation terms.
        for (&r, mr) in &cache.m {
            let w_r = self.w_r(r);
            // dW_r = M_rᵀ dy.
            let dw_r = mr.matmul_tn(dy);
            // Chain into bases and coefficients.
            for (b, basis) in self.bases.iter_mut().enumerate() {
                let a_rb = self.coeffs.value.get(r, b);
                basis.grad.add_scaled(&dw_r, a_rb);
                self.coeffs
                    .grad
                    .add_at(r, b, dw_r.frobenius_dot(&basis.value));
            }
            // dM_r = dy W_rᵀ, then scatter to source nodes.
            let dm_r = dy.matmul_nt(&w_r);
            let indeg = &cache.indeg[&r];
            for e in cache.edges.iter().filter(|e| e.rel == r) {
                let c = indeg[e.dst];
                let g = dm_r.row(e.dst).to_vec();
                let row = dx.row_mut(e.src);
                for (rv, gv) in row.iter_mut().zip(&g) {
                    *rv += gv / c;
                }
            }
        }
        dx
    }

    /// Parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut p: Vec<&mut Parameter> = self.bases.iter_mut().collect();
        p.push(&mut self.coeffs);
        p.push(&mut self.self_w);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sq_loss(y: &Matrix) -> f64 {
        y.data().iter().map(|v| v * v).sum::<f64>() / 2.0
    }

    fn small_graph() -> Vec<TypedEdge> {
        vec![
            TypedEdge { src: 0, dst: 1, rel: 0 },
            TypedEdge { src: 2, dst: 1, rel: 0 },
            TypedEdge { src: 1, dst: 2, rel: 1 },
            TypedEdge { src: 3, dst: 0, rel: 2 },
            TypedEdge { src: 0, dst: 3, rel: 1 },
        ]
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = RgcnLayer::new(3, 5, 4, 2, &mut rng);
        let x = Matrix::xavier(4, 3, &mut rng);
        let edges = small_graph();
        let y1 = layer.forward(&x, &edges);
        let y2 = layer.forward_inference(&x, &edges);
        assert_eq!((y1.rows(), y1.cols()), (4, 5));
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_node_uses_only_self_connection() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = RgcnLayer::new(2, 2, 2, 1, &mut rng);
        let x = Matrix::xavier(3, 2, &mut rng);
        // Node 2 has no in-edges.
        let edges = vec![TypedEdge { src: 0, dst: 1, rel: 0 }];
        let y = layer.forward_inference(&x, &edges);
        let self_only = x.matmul(&layer.self_w.value);
        assert_eq!(y.row(2), self_only.row(2));
        assert_eq!(y.row(0), self_only.row(0));
        assert_ne!(y.row(1), self_only.row(1));
    }

    #[test]
    fn normalisation_averages_same_relation_neighbours() {
        // Two in-neighbours under the same relation are averaged (c_vw = 2).
        let mut rng = StdRng::seed_from_u64(2);
        let layer = RgcnLayer::new(2, 2, 1, 1, &mut rng);
        let x = Matrix::from_vec(3, 2, vec![2.0, 0.0, 4.0, 0.0, 0.0, 0.0]);
        let edges = vec![
            TypedEdge { src: 0, dst: 2, rel: 0 },
            TypedEdge { src: 1, dst: 2, rel: 0 },
        ];
        let y = layer.forward_inference(&x, &edges);
        // Mean of x0 and x1 = [3, 0]; so y[2] = [3,0] W_0^{rel} + x2 W_self.
        let w_r = layer.w_r(0);
        let expect_0 = 3.0 * w_r.get(0, 0);
        let expect_1 = 3.0 * w_r.get(0, 1);
        assert!((y.get(2, 0) - expect_0).abs() < 1e-12);
        assert!((y.get(2, 1) - expect_1).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = RgcnLayer::new(3, 2, 4, 2, &mut rng);
        let x = Matrix::xavier(4, 3, &mut rng);
        let edges = small_graph();
        let y = layer.forward(&x, &edges);
        let dx = layer.backward(&y);
        crate::gradcheck::check_param_grads(
            &mut layer,
            |l| sq_loss(&l.forward_inference(&x, &small_graph())),
            |l| l.params_mut(),
            1e-6,
            1e-5,
        );
        // Input gradient.
        let eps = 1e-6;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.add_at(r, c, eps);
                let mut xm = x.clone();
                xm.add_at(r, c, -eps);
                let num = (sq_loss(&layer.forward_inference(&xp, &edges))
                    - sq_loss(&layer.forward_inference(&xm, &edges)))
                    / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-5,
                    "dx({r},{c}): {num} vs {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn basis_decomposition_shares_weights() {
        // With one basis, all relation matrices are scalar multiples of it.
        let mut rng = StdRng::seed_from_u64(4);
        let layer = RgcnLayer::new(2, 2, 3, 1, &mut rng);
        let w0 = layer.w_r(0);
        let w1 = layer.w_r(1);
        let a0 = layer.coeffs.value.get(0, 0);
        let a1 = layer.coeffs.value.get(1, 0);
        for i in 0..2 {
            for j in 0..2 {
                assert!((w0.get(i, j) / a0 - w1.get(i, j) / a1).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "relation 7 out of range")]
    fn relation_bounds_checked() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = RgcnLayer::new(2, 2, 3, 1, &mut rng);
        let x = Matrix::zeros(2, 2);
        let _ = layer.forward_inference(&x, &[TypedEdge { src: 0, dst: 1, rel: 7 }]);
    }
}

//! Trainable parameters: a value matrix plus an accumulated gradient.

use crate::matrix::Matrix;
use rand::Rng;

/// A trainable weight matrix and its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Current weights.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

impl Parameter {
    /// Zero-initialised parameter (used for biases).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            value: Matrix::zeros(rows, cols),
            grad: Matrix::zeros(rows, cols),
        }
    }

    /// Xavier-initialised parameter.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Self {
            value: Matrix::xavier(rows, cols, rng),
            grad: Matrix::zeros(rows, cols),
        }
    }

    /// Wraps an existing value matrix.
    pub fn from_value(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar weights.
    pub fn n_weights(&self) -> usize {
        self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_track_value() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Parameter::xavier(3, 4, &mut rng);
        assert_eq!(p.grad.rows(), 3);
        assert_eq!(p.grad.cols(), 4);
        assert_eq!(p.n_weights(), 12);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Parameter::zeros(2, 2);
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
    }
}

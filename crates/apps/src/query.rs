//! Query understanding (paper §4): conceptualization and rewriting.
//!
//! "If a query conveys a concept p_c, we can rewrite it by concatenating q
//! with each of the entities e_i that have isA relationship with p_c… If a
//! query conveys an entity e, we can perform query recommendation by
//! recommending the entities that have correlate relationship with e."
//!
//! Serving note: both operations run against an [`OntologySnapshot`] —
//! contained-phrase detection is an inverted-index lookup (O(query tokens))
//! and instance/correlate rankings are precomputed at freeze time, so a
//! request never scans or sorts. The `OntologyService` exposes these as
//! `ServeRequest::Conceptualize` / `ServeRequest::Recommend`.

use giant_ontology::{NodeId, NodeKind, OntologySnapshot};

/// The interpretation of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryUnderstanding {
    /// Concept conveyed by the query, if any.
    pub concept: Option<NodeId>,
    /// Entity conveyed by the query, if any.
    pub entity: Option<NodeId>,
    /// Rewrites `"q e_i"` for the concept's instances.
    pub rewrites: Vec<String>,
    /// Recommended correlated entities (by descending edge weight).
    pub recommendations: Vec<NodeId>,
}

/// Correlate-based recommendations for an entity query.
#[derive(Debug, Clone, Default)]
pub struct Recommendations {
    /// Entity conveyed by the query, if any.
    pub entity: Option<NodeId>,
    /// Correlated entities by descending edge weight (ties by id).
    pub items: Vec<NodeId>,
}

/// Analyzes one query against a frozen snapshot: longest contained concept
/// and entity phrases, instance rewrites ranked by mining support, and
/// correlate recommendations ranked by edge weight.
///
/// `match_aliases` extends contained-phrase detection to alias surfaces
/// (resolving to their canonical node); `false` reproduces the historical
/// canonical-phrase-only behaviour exactly.
pub fn conceptualize(
    snapshot: &OntologySnapshot,
    query: &str,
    max_results: usize,
    match_aliases: bool,
) -> QueryUnderstanding {
    let tokens = giant_text::tokenize(query);
    let mut out = QueryUnderstanding {
        concept: snapshot.find_contained(&tokens, NodeKind::Concept, match_aliases),
        entity: snapshot.find_contained(&tokens, NodeKind::Entity, match_aliases),
        ..QueryUnderstanding::default()
    };
    if let Some(c) = out.concept {
        out.rewrites = snapshot
            .ranked_children(c)
            .iter()
            .filter(|&&n| snapshot.node(n).kind == NodeKind::Entity)
            .take(max_results)
            .map(|&e| format!("{query} {}", snapshot.node(e).phrase.surface()))
            .collect();
    }
    if let Some(e) = out.entity {
        out.recommendations = snapshot
            .ranked_correlates(e)
            .0
            .iter()
            .take(max_results)
            .copied()
            .collect();
    }
    out
}

/// The recommendation half of [`conceptualize`], as its own request kind:
/// detects the entity conveyed by `query` and returns its correlate
/// neighbourhood in precomputed rank order.
pub fn recommend(
    snapshot: &OntologySnapshot,
    query: &str,
    max_results: usize,
    match_aliases: bool,
) -> Recommendations {
    let tokens = giant_text::tokenize(query);
    let entity = snapshot.find_contained(&tokens, NodeKind::Entity, match_aliases);
    let items = entity
        .map(|e| {
            snapshot
                .ranked_correlates(e)
                .0
                .iter()
                .take(max_results)
                .copied()
                .collect()
        })
        .unwrap_or_default();
    Recommendations { entity, items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giant_ontology::{Ontology, Phrase};

    fn fixture() -> OntologySnapshot {
        let mut o = Ontology::new();
        let cars = o.add_node(NodeKind::Concept, Phrase::from_text("electric cars"), 5.0);
        let v = o.add_node(NodeKind::Entity, Phrase::from_text("veltro x9"), 3.0);
        let k = o.add_node(NodeKind::Entity, Phrase::from_text("kario s4"), 9.0);
        let z = o.add_node(NodeKind::Entity, Phrase::from_text("zelda gt2"), 1.0);
        o.add_alias(cars, Phrase::from_text("battery powered cars"));
        o.add_is_a(cars, v, 1.0).unwrap();
        o.add_is_a(cars, k, 1.0).unwrap();
        o.add_correlate(v, k, 0.9).unwrap();
        o.add_correlate(v, z, 0.4).unwrap();
        OntologySnapshot::freeze(&o)
    }

    #[test]
    fn concept_query_is_rewritten_with_instances() {
        let s = fixture();
        let u = conceptualize(&s, "best electric cars", 5, false);
        assert!(u.concept.is_some());
        assert_eq!(u.rewrites.len(), 2);
        // Higher-support instance first.
        assert_eq!(u.rewrites[0], "best electric cars kario s4");
        assert!(u.rewrites[1].ends_with("veltro x9"));
    }

    #[test]
    fn entity_query_gets_correlate_recommendations() {
        let s = fixture();
        let u = conceptualize(&s, "veltro x9 review", 5, false);
        let e = u.entity.unwrap();
        assert_eq!(s.node(e).phrase.surface(), "veltro x9");
        // Strongest correlate first.
        assert_eq!(s.node(u.recommendations[0]).phrase.surface(), "kario s4");
        assert_eq!(u.recommendations.len(), 2);
        // The dedicated Recommend request agrees.
        let r = recommend(&s, "veltro x9 review", 5, false);
        assert_eq!(r.entity, u.entity);
        assert_eq!(r.items, u.recommendations);
    }

    #[test]
    fn unknown_query_is_empty() {
        let s = fixture();
        let u = conceptualize(&s, "meaning of life", 5, false);
        assert!(u.concept.is_none());
        assert!(u.entity.is_none());
        assert!(u.rewrites.is_empty());
        assert!(u.recommendations.is_empty());
        assert!(recommend(&s, "meaning of life", 5, false).items.is_empty());
    }

    #[test]
    fn max_results_caps_output() {
        let s = fixture();
        let u = conceptualize(&s, "electric cars", 1, false);
        assert_eq!(u.rewrites.len(), 1);
    }

    #[test]
    fn alias_matching_is_opt_in() {
        let s = fixture();
        let q = "cheap battery powered cars";
        assert!(conceptualize(&s, q, 5, false).concept.is_none());
        let u = conceptualize(&s, q, 5, true);
        assert!(u.concept.is_some());
        // Alias resolves to the canonical concept, whose rewrites follow.
        assert_eq!(u.rewrites[0], format!("{q} kario s4"));
    }
}

//! Query understanding (paper §4): conceptualization and rewriting.
//!
//! "If a query conveys a concept p_c, we can rewrite it by concatenating q
//! with each of the entities e_i that have isA relationship with p_c… If a
//! query conveys an entity e, we can perform query recommendation by
//! recommending the entities that have correlate relationship with e."

use giant_ontology::{NodeId, NodeKind, Ontology};
use std::collections::HashMap;

/// The interpretation of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryUnderstanding {
    /// Concept conveyed by the query, if any.
    pub concept: Option<NodeId>,
    /// Entity conveyed by the query, if any.
    pub entity: Option<NodeId>,
    /// Rewrites `"q e_i"` for the concept's instances.
    pub rewrites: Vec<String>,
    /// Recommended correlated entities (by descending edge weight).
    pub recommendations: Vec<NodeId>,
}

/// Query conceptualizer over a constructed ontology.
pub struct QueryUnderstander<'a> {
    /// The ontology.
    pub ontology: &'a Ontology,
    /// Entity surface → node.
    pub entity_nodes: &'a HashMap<String, NodeId>,
    /// Maximum rewrites / recommendations returned.
    pub max_results: usize,
}

impl QueryUnderstander<'_> {
    fn find_contained(&self, query_tokens: &[String], kind: NodeKind) -> Option<NodeId> {
        // Longest contained phrase of the requested kind wins.
        let mut best: Option<(usize, NodeId)> = None;
        for node in self.ontology.nodes_of_kind(kind) {
            let toks = &node.phrase.tokens;
            if toks.is_empty() || toks.len() > query_tokens.len() {
                continue;
            }
            let contained = (0..=query_tokens.len() - toks.len())
                .any(|i| &query_tokens[i..i + toks.len()] == toks.as_slice());
            if contained && best.map(|(l, _)| toks.len() > l).unwrap_or(true) {
                best = Some((toks.len(), node.id));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Analyzes one query.
    pub fn understand(&self, query: &str) -> QueryUnderstanding {
        let tokens = giant_text::tokenize(query);
        let mut out = QueryUnderstanding {
            concept: self.find_contained(&tokens, NodeKind::Concept),
            entity: self.find_contained(&tokens, NodeKind::Entity),
            ..QueryUnderstanding::default()
        };

        if let Some(c) = out.concept {
            let mut children: Vec<NodeId> = self
                .ontology
                .children_of(c)
                .into_iter()
                .filter(|&n| self.ontology.node(n).kind == NodeKind::Entity)
                .collect();
            children.sort_by(|a, b| {
                self.ontology
                    .node(*b)
                    .support
                    .total_cmp(&self.ontology.node(*a).support)
                    .then(a.0.cmp(&b.0))
            });
            out.rewrites = children
                .into_iter()
                .take(self.max_results)
                .map(|e| format!("{query} {}", self.ontology.node(e).phrase.surface()))
                .collect();
        }
        if let Some(e) = out.entity {
            let mut correlates = self.ontology.correlates_of(e);
            correlates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
            out.recommendations = correlates
                .into_iter()
                .take(self.max_results)
                .map(|(n, _)| n)
                .collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giant_ontology::Phrase;

    fn fixture() -> (Ontology, HashMap<String, NodeId>) {
        let mut o = Ontology::new();
        let cars = o.add_node(NodeKind::Concept, Phrase::from_text("electric cars"), 5.0);
        let v = o.add_node(NodeKind::Entity, Phrase::from_text("veltro x9"), 3.0);
        let k = o.add_node(NodeKind::Entity, Phrase::from_text("kario s4"), 9.0);
        let z = o.add_node(NodeKind::Entity, Phrase::from_text("zelda gt2"), 1.0);
        o.add_is_a(cars, v, 1.0).unwrap();
        o.add_is_a(cars, k, 1.0).unwrap();
        o.add_correlate(v, k, 0.9).unwrap();
        o.add_correlate(v, z, 0.4).unwrap();
        let mut map = HashMap::new();
        for (s, n) in [("veltro x9", v), ("kario s4", k), ("zelda gt2", z)] {
            map.insert(s.to_owned(), n);
        }
        (o, map)
    }

    #[test]
    fn concept_query_is_rewritten_with_instances() {
        let (o, map) = fixture();
        let qu = QueryUnderstander {
            ontology: &o,
            entity_nodes: &map,
            max_results: 5,
        };
        let u = qu.understand("best electric cars");
        assert!(u.concept.is_some());
        assert_eq!(u.rewrites.len(), 2);
        // Higher-support instance first.
        assert_eq!(u.rewrites[0], "best electric cars kario s4");
        assert!(u.rewrites[1].ends_with("veltro x9"));
    }

    #[test]
    fn entity_query_gets_correlate_recommendations() {
        let (o, map) = fixture();
        let qu = QueryUnderstander {
            ontology: &o,
            entity_nodes: &map,
            max_results: 5,
        };
        let u = qu.understand("veltro x9 review");
        let e = u.entity.unwrap();
        assert_eq!(o.node(e).phrase.surface(), "veltro x9");
        // Strongest correlate first.
        assert_eq!(o.node(u.recommendations[0]).phrase.surface(), "kario s4");
        assert_eq!(u.recommendations.len(), 2);
    }

    #[test]
    fn unknown_query_is_empty() {
        let (o, map) = fixture();
        let qu = QueryUnderstander {
            ontology: &o,
            entity_nodes: &map,
            max_results: 5,
        };
        let u = qu.understand("meaning of life");
        assert!(u.concept.is_none());
        assert!(u.entity.is_none());
        assert!(u.rewrites.is_empty());
        assert!(u.recommendations.is_empty());
    }

    #[test]
    fn max_results_caps_output() {
        let (o, map) = fixture();
        let qu = QueryUnderstander {
            ontology: &o,
            entity_nodes: &map,
            max_results: 1,
        };
        let u = qu.understand("electric cars");
        assert_eq!(u.rewrites.len(), 1);
    }
}

//! Binary codec for the serving frame's [`ServeResources`] — everything a
//! restored process needs to answer requests without retraining: the
//! tagging metadata, TF-IDF table, trained Duet MLP weights, SGNS phrase
//! encoder, vocabulary and the story-event set.
//!
//! Together with `giant_ontology::binio::write_snapshot` this makes
//! `OntologyService::checkpoint`/`restore` a complete warm start: restore
//! reads the frozen snapshot (no re-freeze) and these resources (no
//! retraining) and serves byte-identical answers immediately.

use crate::duet::DuetMatcher;
use crate::serving::ServeResources;
use crate::storytree::{StoryEvent, StoryTreeConfig};
use crate::tagging::{TagResources, TaggingConfig};
use giant_core::ckpt::{read_tfidf, write_tfidf};
use giant_nn::{Linear, Matrix, Parameter};
use giant_ontology::binio::{BinError, Reader, Writer};
use giant_ontology::NodeId;
use giant_text::embedding::{PhraseEncoder, WordEmbeddings};
use giant_text::Vocab;
use std::collections::HashMap;
use std::sync::Arc;

fn write_matrix(w: &mut Writer, m: &Matrix) {
    w.usize(m.rows());
    w.usize(m.cols());
    w.f64_slice(m.data());
}

fn read_matrix(r: &mut Reader<'_>) -> Result<Matrix, BinError> {
    let rows = r.usize()?;
    let cols = r.usize()?;
    let at = r.position();
    let data = r.f64_vec()?;
    if data.len() != rows * cols {
        return Err(BinError {
            at,
            message: format!("matrix {rows}x{cols} carries {} values", data.len()),
        });
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn write_linear(w: &mut Writer, l: &Linear) {
    write_matrix(w, &l.w.value);
    write_matrix(w, &l.b.value);
}

fn read_linear(r: &mut Reader<'_>) -> Result<Linear, BinError> {
    // Gradients are training state, not model state: restored zeroed.
    let w_value = read_matrix(r)?;
    let b_value = read_matrix(r)?;
    Ok(Linear::from_params(
        Parameter::from_value(w_value),
        Parameter::from_value(b_value),
    ))
}

fn write_opt_str(w: &mut Writer, s: &Option<String>) {
    match s {
        Some(s) => {
            w.bool(true);
            w.str(s);
        }
        None => w.bool(false),
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, BinError> {
    Ok(if r.bool()? { Some(r.str()?) } else { None })
}

/// Serialises a full [`ServeResources`] (models included).
pub(crate) fn write_resources(w: &mut Writer, res: &ServeResources) {
    let tag = &res.tagging;
    // Concept contexts, sorted by node id for deterministic bytes.
    let mut ctx: Vec<(&NodeId, &Vec<String>)> = tag.concept_contexts.iter().collect();
    ctx.sort_by_key(|(id, _)| id.0);
    w.u32(ctx.len() as u32);
    for (id, tokens) in ctx {
        w.u32(id.0);
        w.str_slice(tokens);
    }
    w.u32(tag.event_phrases.len() as u32);
    for (id, tokens) in &tag.event_phrases {
        w.u32(id.0);
        w.str_slice(tokens);
    }
    write_tfidf(w, &tag.tfidf);
    write_linear(w, &tag.duet.l1);
    write_linear(w, &tag.duet.l2);
    let emb = tag.encoder.embeddings();
    w.usize(emb.dim());
    w.usize(emb.vocab_size());
    w.f32_slice(emb.raw_vectors());
    w.u32(tag.vocab.len() as u32);
    for (_, s) in tag.vocab.iter() {
        w.str(s);
    }
    w.f64(tag.config.coherence_threshold);
    w.f64(tag.config.fallback_threshold);
    w.f64(tag.config.lcs_min_fraction);
    w.f64(tag.config.min_concept_support);

    w.u32(res.stories.len() as u32);
    for s in &res.stories {
        w.u32(s.node.0);
        w.str_slice(&s.tokens);
        write_opt_str(w, &s.trigger);
        w.u32(s.entities.len() as u32);
        for e in &s.entities {
            w.u32(e.0);
        }
        w.u32(s.day);
    }
    w.f64(res.story_config.merge_threshold);
    w.bool(res.match_aliases);
    w.usize(res.max_results);
}

/// Restores resources written by [`write_resources`].
pub(crate) fn read_resources(r: &mut Reader<'_>) -> Result<ServeResources, BinError> {
    let n_ctx = r.len(8, "concept contexts")?;
    let mut concept_contexts = HashMap::with_capacity(n_ctx);
    for _ in 0..n_ctx {
        let id = NodeId(r.u32()?);
        concept_contexts.insert(id, r.str_vec()?);
    }
    let n_events = r.len(8, "event phrases")?;
    let mut event_phrases = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let id = NodeId(r.u32()?);
        event_phrases.push((id, r.str_vec()?));
    }
    let tfidf = read_tfidf(r)?;
    let duet = DuetMatcher {
        l1: read_linear(r)?,
        l2: read_linear(r)?,
    };
    let dim = r.usize()?;
    let vocab_size = r.usize()?;
    let at = r.position();
    let vectors = r.f32_vec()?;
    if vectors.len() != dim * vocab_size {
        return Err(BinError {
            at,
            message: format!(
                "embedding table {dim}x{vocab_size} carries {} values",
                vectors.len()
            ),
        });
    }
    let encoder = PhraseEncoder::new(WordEmbeddings::from_parts(dim, vocab_size, vectors));
    let n_vocab = r.len(4, "vocab")?;
    let mut vocab = Vocab::new();
    for i in 0..n_vocab {
        let s = r.str()?;
        let id = vocab.intern(&s);
        if id.index() != i {
            return Err(BinError {
                at: r.position(),
                message: format!("duplicate vocab token {s:?} at id {i}"),
            });
        }
    }
    let config = TaggingConfig {
        coherence_threshold: r.f64()?,
        fallback_threshold: r.f64()?,
        lcs_min_fraction: r.f64()?,
        min_concept_support: r.f64()?,
    };
    let n_stories = r.len(14, "stories")?;
    let mut stories = Vec::with_capacity(n_stories);
    for _ in 0..n_stories {
        let node = NodeId(r.u32()?);
        let tokens = r.str_vec()?;
        let trigger = read_opt_str(r)?;
        let entities: Vec<NodeId> = r.u32_vec()?.into_iter().map(NodeId).collect();
        let day = r.u32()?;
        stories.push(StoryEvent {
            node,
            tokens,
            trigger,
            entities,
            day,
        });
    }
    let story_config = StoryTreeConfig {
        merge_threshold: r.f64()?,
    };
    let match_aliases = r.bool()?;
    let max_results = r.usize()?;
    Ok(ServeResources {
        tagging: TagResources {
            concept_contexts,
            event_phrases,
            tfidf: Arc::new(tfidf),
            duet: Arc::new(duet),
            encoder: Arc::new(encoder),
            vocab: Arc::new(vocab),
            config,
        },
        stories,
        story_config,
        match_aliases,
        max_results,
    })
}

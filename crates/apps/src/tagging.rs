//! Document tagging (paper §4): concepts via key-entity parents + TF-IDF
//! coherence with a probabilistic fallback (eq. 12–14); events/topics via
//! LCS matching combined with the Duet matcher.
//!
//! Serving note: the tagger reads an [`OntologySnapshot`] — key-entity
//! detection is an inverted-index lookup over the entity dictionary instead
//! of a scan of every surface, and the eq. (13) concept-token posting lists
//! are precomputed at freeze time. Model resources (TF-IDF table, Duet
//! matcher, phrase encoder) arrive bundled in [`TagResources`], the unit the
//! `OntologyService` publishes alongside each snapshot version.

use crate::duet::{duet_features, DuetMatcher};
use giant_ontology::{NodeId, NodeKind, OntologySnapshot};
use giant_text::embedding::PhraseEncoder;
use giant_text::{TfIdf, Vocab};
use std::collections::HashMap;
use std::sync::Arc;

/// Tagging thresholds.
#[derive(Debug, Clone, Copy)]
pub struct TaggingConfig {
    /// Minimum TF-IDF coherence between document title and concept context.
    pub coherence_threshold: f64,
    /// Minimum probability for the eq. (12) fallback.
    pub fallback_threshold: f64,
    /// Minimum LCS fraction of the event phrase for event/topic tagging.
    pub lcs_min_fraction: f64,
    /// Minimum mining support for a concept to be used as a tag (one-off
    /// noise phrases have little click mass behind them).
    pub min_concept_support: f64,
}

impl Default for TaggingConfig {
    fn default() -> Self {
        Self {
            coherence_threshold: 0.12,
            fallback_threshold: 0.05,
            lcs_min_fraction: 0.8,
            min_concept_support: 0.0,
        }
    }
}

/// Tags assigned to one document.
#[derive(Debug, Clone, Default)]
pub struct DocTags {
    /// Concept tags with scores.
    pub concepts: Vec<(NodeId, f64)>,
    /// Event tags with scores.
    pub events: Vec<(NodeId, f64)>,
    /// Topic tags with scores.
    pub topics: Vec<(NodeId, f64)>,
}

/// The model resources the tagger needs beyond the ontology snapshot.
/// Shared pieces (encoder, vocab, TF-IDF, Duet) are `Arc`ed so one trained
/// set serves many published versions without retraining.
#[derive(Debug, Clone)]
pub struct TagResources {
    /// Concept node → context-enriched tokens (phrase + top clicked titles).
    pub concept_contexts: HashMap<NodeId, Vec<String>>,
    /// Event/topic phrases to match: `(node, tokens)`.
    pub event_phrases: Vec<(NodeId, Vec<String>)>,
    /// TF-IDF table over titles.
    pub tfidf: Arc<TfIdf>,
    /// Trained Duet matcher.
    pub duet: Arc<DuetMatcher>,
    /// Phrase encoder for Duet's distributed channel.
    pub encoder: Arc<PhraseEncoder>,
    /// Vocabulary for the encoder.
    pub vocab: Arc<Vocab>,
    /// Thresholds.
    pub config: TaggingConfig,
}

/// The document tagger: a snapshot plus its model resources.
pub struct DocumentTagger<'a> {
    /// Frozen ontology.
    pub snapshot: &'a OntologySnapshot,
    /// Model resources.
    pub resources: &'a TagResources,
}

impl DocumentTagger<'_> {
    /// Finds the key entities of a document by dictionary matching over the
    /// title and body: every entity whose canonical surface occurs as a
    /// contiguous token run, in ascending node-id order.
    pub fn key_entities(&self, title_tokens: &[String], sentences: &[Vec<String>]) -> Vec<NodeId> {
        let mut found = std::collections::BTreeSet::new();
        found.extend(self.snapshot.contained_nodes(title_tokens, NodeKind::Entity, false));
        for s in sentences {
            found.extend(self.snapshot.contained_nodes(s, NodeKind::Entity, false));
        }
        found.into_iter().collect()
    }

    /// Tags one document.
    pub fn tag(&self, title: &str, sentences: &[String]) -> DocTags {
        let snap = self.snapshot;
        let res = self.resources;
        let title_tokens = giant_text::tokenize(title);
        let sent_tokens: Vec<Vec<String>> =
            sentences.iter().map(|s| giant_text::tokenize(s)).collect();
        let entities = self.key_entities(&title_tokens, &sent_tokens);

        let mut tags = DocTags::default();
        // --- Concepts via parents of the key entities (matching approach).
        let mut seen = std::collections::HashSet::new();
        let mut any_parent = false;
        for &e in &entities {
            for &parent in snap.parents(e) {
                let node = snap.node(parent);
                if node.kind != NodeKind::Concept
                    || node.support < res.config.min_concept_support
                    || !seen.insert(parent)
                {
                    continue;
                }
                any_parent = true;
                let ctx = res
                    .concept_contexts
                    .get(&parent)
                    .cloned()
                    .unwrap_or_else(|| node.phrase.tokens.clone());
                let score = res.tfidf.similarity(
                    title_tokens.iter().map(|s| s.as_str()),
                    ctx.iter().map(|s| s.as_str()),
                );
                if score >= res.config.coherence_threshold {
                    tags.concepts.push((parent, score));
                }
            }
        }
        // --- Probabilistic fallback (eq. 12–14) when no parent was usable.
        if !any_parent && !entities.is_empty() {
            let probs = self.fallback_concepts(&entities, &sent_tokens);
            for (c, p) in probs {
                if p >= res.config.fallback_threshold {
                    tags.concepts.push((c, p));
                }
            }
        }
        tags.concepts
            .sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        // Relative cut: weak tags far below the best coherent tag are noise.
        if let Some(best) = tags.concepts.first().map(|(_, s)| *s) {
            tags.concepts.retain(|(_, s)| *s >= 0.6 * best);
        }

        // --- Events & topics: LCS + Duet over title + first sentence (§4).
        let mut target = title_tokens.clone();
        if let Some(first) = sent_tokens.first() {
            target.extend(first.iter().cloned());
        }
        for (node, phrase) in &res.event_phrases {
            if phrase.is_empty() {
                continue;
            }
            let lcs = giant_text::lcs_len(phrase, &target) as f64 / phrase.len() as f64;
            if lcs < res.config.lcs_min_fraction {
                continue;
            }
            let feats = duet_features(phrase, &target, &res.encoder, &res.vocab);
            if res.duet.matches(&feats) {
                let kind = snap.node(*node).kind;
                let entry = (*node, lcs);
                match kind {
                    NodeKind::Event => tags.events.push(entry),
                    NodeKind::Topic => tags.topics.push(entry),
                    _ => {}
                }
            }
        }
        tags.events.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        tags.topics.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        tags
    }

    /// Eq. (12)–(14): `P(p_c|d) = Σ_i P(p_c|e_i) P(e_i|d)` with
    /// `P(p_c|x_j) = 1/|P^c_{x_j}|` for context words `x_j` of the entity.
    /// The concept posting lists come precomputed from the snapshot.
    ///
    /// Accumulation runs over `BTreeMap`s deliberately: float addition is
    /// order-sensitive, and `HashMap`'s per-instance random iteration order
    /// would make repeated identical requests differ in score low bits —
    /// breaking the serving layer's byte-identical-responses guarantee.
    fn fallback_concepts(
        &self,
        entities: &[NodeId],
        sentences: &[Vec<String>],
    ) -> Vec<(NodeId, f64)> {
        use std::collections::BTreeMap;
        let snap = self.snapshot;
        // Document frequency of each entity (eq. 12's P(e|d)).
        let ent_tokens: Vec<(NodeId, &[String])> = entities
            .iter()
            .map(|&e| (e, snap.node(e).phrase.tokens.as_slice()))
            .collect();
        let mut mention_count: BTreeMap<NodeId, f64> = BTreeMap::new();
        for s in sentences {
            for (e, toks) in &ent_tokens {
                if contains_seq(s, toks) {
                    *mention_count.entry(*e).or_insert(0.0) += 1.0;
                }
            }
        }
        let total_mentions: f64 = mention_count.values().sum::<f64>().max(1.0);

        let mut scores: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (e, toks) in &ent_tokens {
            let p_e_d = mention_count.get(e).copied().unwrap_or(0.0) / total_mentions;
            if p_e_d == 0.0 {
                continue;
            }
            // Context words: tokens co-occurring with the entity in a sentence.
            let mut ctx_counts: BTreeMap<&str, f64> = BTreeMap::new();
            let mut ctx_total = 0.0;
            for s in sentences {
                if !contains_seq(s, toks) {
                    continue;
                }
                for t in s {
                    if toks.contains(t) {
                        continue;
                    }
                    *ctx_counts.entry(t.as_str()).or_insert(0.0) += 1.0;
                    ctx_total += 1.0;
                }
            }
            if ctx_total == 0.0 {
                continue;
            }
            for (x, cnt) in ctx_counts {
                let cands = snap.concepts_with_token(x);
                if cands.is_empty() {
                    continue;
                }
                let p_c_x = 1.0 / cands.len() as f64;
                let p_x_e = cnt / ctx_total;
                for &c in cands {
                    *scores.entry(c).or_insert(0.0) += p_c_x * p_x_e * p_e_d;
                }
            }
        }
        let mut out: Vec<(NodeId, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        out
    }
}

fn contains_seq(haystack: &[String], needle: &[String]) -> bool {
    !needle.is_empty()
        && haystack.len() >= needle.len()
        && (0..=haystack.len() - needle.len())
            .any(|i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duet::DuetConfig;
    use giant_ontology::{Ontology, Phrase};
    use giant_text::embedding::{SgnsConfig, WordEmbeddings};

    struct Fixture {
        snapshot: OntologySnapshot,
        resources: TagResources,
    }

    fn fixture() -> Fixture {
        let mut ontology = Ontology::new();
        let concept =
            ontology.add_node(NodeKind::Concept, Phrase::from_text("electric cars"), 1.0);
        let veltro = ontology.add_node(NodeKind::Entity, Phrase::from_text("veltro x9"), 1.0);
        ontology.add_node(NodeKind::Entity, Phrase::from_text("kario s4"), 1.0);
        ontology.add_is_a(concept, veltro, 1.0).unwrap();
        let event = ontology.add_event(Phrase::from_text("quanta motors recalls veltro x9"), 1.0, 4);
        let mut contexts = HashMap::new();
        contexts.insert(
            concept,
            giant_text::tokenize("electric cars top 10 electric cars of 2018"),
        );
        let mut tfidf = TfIdf::new();
        for t in [
            "top 10 electric cars of 2018",
            "veltro x9 review",
            "quanta motors recalls veltro x9",
            "unrelated title entirely",
        ] {
            let toks = giant_text::tokenize(t);
            tfidf.add_doc(toks.iter().map(|s| s.as_str()));
        }
        // Tiny encoder.
        let mut vocab = Vocab::new();
        let sents: Vec<Vec<giant_text::TokenId>> = (0..20)
            .map(|_| {
                giant_text::tokenize("quanta motors recalls veltro x9 electric cars")
                    .iter()
                    .map(|t| vocab.intern(t))
                    .collect()
            })
            .collect();
        let emb = WordEmbeddings::train(&sents, vocab.len(), &SgnsConfig::default());
        let encoder = PhraseEncoder::new(emb);
        // Duet trained on synthetic separable features.
        let mut examples = Vec::new();
        for _ in 0..20 {
            examples.push((vec![0.95, 0.95, 0.9, 0.6, 0.5, 1.0], true));
            examples.push((vec![0.1, 0.15, 0.0, 0.1, 0.3, 0.0], false));
        }
        let duet = DuetMatcher::train(&examples, DuetConfig::default());
        let events = vec![(event, giant_text::tokenize("quanta motors recalls veltro x9"))];
        Fixture {
            snapshot: OntologySnapshot::freeze(&ontology),
            resources: TagResources {
                concept_contexts: contexts,
                event_phrases: events,
                tfidf: Arc::new(tfidf),
                duet: Arc::new(duet),
                encoder: Arc::new(encoder),
                vocab: Arc::new(vocab),
                config: TaggingConfig::default(),
            },
        }
    }

    fn tagger(f: &Fixture) -> DocumentTagger<'_> {
        DocumentTagger {
            snapshot: &f.snapshot,
            resources: &f.resources,
        }
    }

    #[test]
    fn concept_tag_via_entity_parent() {
        let f = fixture();
        let t = tagger(&f);
        let tags = t.tag(
            "veltro x9 review of 2018 electric cars",
            &["veltro x9 is great".to_owned()],
        );
        assert!(!tags.concepts.is_empty(), "expected a concept tag");
        let concept = f.snapshot.find(NodeKind::Concept, "electric cars").unwrap();
        assert_eq!(tags.concepts[0].0, concept);
    }

    #[test]
    fn event_tag_requires_lcs_and_duet() {
        let f = fixture();
        let t = tagger(&f);
        let tags = t.tag(
            "breaking : quanta motors recalls veltro x9",
            &["the recall affects thousands".to_owned()],
        );
        assert_eq!(tags.events.len(), 1);
        // A document without the phrase gets no event tag.
        let tags = t.tag("veltro x9 wins design award", &[]);
        assert!(tags.events.is_empty());
    }

    #[test]
    fn fallback_fires_when_no_parents_exist() {
        let f = fixture();
        let t = tagger(&f);
        // kario s4 has no parent concept; context words "electric"/"cars"
        // point to the concept via eq. (13)-(14).
        let tags = t.tag(
            "kario s4 first look",
            &["kario s4 joins the electric cars wave".to_owned()],
        );
        let concept = f.snapshot.find(NodeKind::Concept, "electric cars").unwrap();
        assert!(
            tags.concepts.iter().any(|(c, _)| *c == concept),
            "fallback failed: {tags:?}"
        );
    }

    #[test]
    fn no_entities_no_tags() {
        let f = fixture();
        let t = tagger(&f);
        let tags = t.tag("totally unrelated text", &["nothing here".to_owned()]);
        assert!(tags.concepts.is_empty());
        assert!(tags.events.is_empty());
    }

    #[test]
    fn key_entities_found_in_title_and_body() {
        let f = fixture();
        let t = tagger(&f);
        let title = giant_text::tokenize("veltro x9 arrives");
        let body = vec![giant_text::tokenize("kario s4 responds")];
        let ents = t.key_entities(&title, &body);
        assert_eq!(ents.len(), 2);
    }
}

//! The versioned ontology serving layer: one typed API over immutable
//! snapshots, with lock-free concurrent reads and hot snapshot replacement.
//!
//! Production framing (ROADMAP north star): the ontology is rebuilt
//! periodically by the mining pipeline but queried continuously by the
//! applications. [`OntologyService`] decouples the two — each `publish`
//! freezes a build into an [`OntologySnapshot`] + [`ServeResources`] pair
//! (a *frame*) carrying a monotonically increasing version; readers grab
//! the current frame with a single atomic load and are never blocked by a
//! publish, and every request is answered entirely within one frame, so a
//! mid-batch publish can never mix two ontology versions in one response.
//!
//! The typed surface is [`ServeRequest`] / [`ServeResponse`]: one request
//! kind per application (conceptualization + rewriting, correlate
//! recommendation, document tagging, story-tree formation).
//! [`OntologyService::serve_batch`] drives request slices through
//! `giant_exec::run_ordered`, so batched serving returns responses in
//! request order, byte-identical at any thread count.
//!
//! ## Swap mechanics
//!
//! `current` is an [`AtomicPtr`] into the frame `Arc` most recently
//! published; the service additionally keeps every published frame alive in
//! `history` (a small `Mutex`-guarded `Vec` touched only by writers). A
//! reader announces itself on a `SeqCst` presence counter, loads the
//! pointer and bumps the frame's strong count — the history reference
//! guarantees the pointee outlives that window, so reads are genuinely
//! lock-free (two atomic RMWs and a load, no locks). Each `publish`
//! reclaims superseded frames opportunistically: after swapping, if the
//! presence counter reads zero, no reader can still be holding a
//! pre-swap pointer it has not yet secured (`SeqCst` total order: a later
//! announcement forces a later pointer load, which sees the new frame), so
//! every history entry but the new current is released. Memory therefore
//! stays bounded at one frame in the steady state; readers overlapping the
//! check defer reclamation to a later publish that observes a quiet
//! window (each publish retries the check briefly), or to
//! [`OntologyService::prune_history`] (which requires `&mut self` and so
//! excludes readers entirely).

use crate::query::{conceptualize, recommend, QueryUnderstanding, Recommendations};
use crate::storytree::{
    build_story_tree, retrieve_related, EventSimilarity, StoryEvent, StoryTree, StoryTreeConfig,
};
use crate::tagging::{DocTags, DocumentTagger, TagResources};
use giant_ontology::binio::{self, BinError, FileError, SectionFile, Writer};
use giant_ontology::{AttentionNode, EdgeKind, NodeId, OntologySnapshot};
use giant_schema::{export_json_view, Schema};
use std::collections::HashSet;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything a frame needs beyond the snapshot to answer requests.
#[derive(Debug, Clone)]
pub struct ServeResources {
    /// Tagging models and metadata (also lends the encoder/vocab/TF-IDF to
    /// story-tree similarity).
    pub tagging: TagResources,
    /// The mined events available to story-tree requests.
    pub stories: Vec<StoryEvent>,
    /// Story-tree clustering parameters.
    pub story_config: StoryTreeConfig,
    /// Serving policy: let contained-phrase detection match alias surfaces
    /// (`false` reproduces canonical-only historical behaviour).
    pub match_aliases: bool,
    /// Default result cap for conceptualize/recommend requests.
    pub max_results: usize,
}

/// A typed serving request.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// Query conceptualization: contained concept/entity, instance
    /// rewrites, correlate recommendations.
    Conceptualize {
        /// The raw query.
        query: String,
    },
    /// Correlate-based recommendation for the entity conveyed by a query.
    Recommend {
        /// The raw query.
        query: String,
    },
    /// Full document tagging (concepts, events, topics).
    TagDocument {
        /// Document title.
        title: String,
        /// Body sentences.
        sentences: Vec<String>,
    },
    /// Story-tree formation around a seed event node.
    StoryTree {
        /// The seed event's ontology node.
        seed: NodeId,
    },
    /// Schema-checked JSON export of the frame's ontology (DESIGN.md §12):
    /// the whole graph, or the isA-closure under `root`. Opt-in at the
    /// network layer — see `giant_net::ServerConfig::allow_export`.
    ExportSubgraph {
        /// Export root: `None` exports every node; `Some(id)` exports `id`
        /// plus its transitive isA descendants (induced edges only).
        root: Option<NodeId>,
    },
}

/// The typed response for each [`ServeRequest`] kind.
#[derive(Debug, Clone)]
pub enum ServeResponse {
    /// Answer to [`ServeRequest::Conceptualize`].
    Conceptualize(QueryUnderstanding),
    /// Answer to [`ServeRequest::Recommend`].
    Recommend(Recommendations),
    /// Answer to [`ServeRequest::TagDocument`].
    TagDocument(DocTags),
    /// Answer to [`ServeRequest::StoryTree`].
    StoryTree(StoryTree),
    /// Answer to [`ServeRequest::ExportSubgraph`]: the interchange JSON
    /// document (`giant_schema::export_json_view` against the builtin
    /// schema).
    ExportSubgraph(String),
}

/// Serving errors (requests referencing unknown nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The story-tree seed is not a mined event in the current frame.
    UnknownStorySeed(NodeId),
    /// The export root is not a node of the current frame.
    UnknownExportRoot(NodeId),
    /// Export was requested but the serving host has it disabled (the
    /// giant-net default; see `ServerConfig::allow_export`).
    ExportDisabled,
    /// The frame's ontology failed schema validation or rendering during
    /// export; the message carries the first violation.
    ExportFailed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownStorySeed(n) => {
                write!(f, "node {} is not a mined story event in this frame", n.0)
            }
            ServeError::UnknownExportRoot(n) => {
                write!(f, "export root {} is not a node in this frame", n.0)
            }
            ServeError::ExportDisabled => write!(f, "subgraph export is disabled on this host"),
            ServeError::ExportFailed(msg) => write!(f, "export failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One published ontology version: an immutable snapshot plus the model
/// resources that answer requests against it.
#[derive(Debug)]
pub struct ServingFrame {
    /// Monotonically increasing publish version (first publish is 1).
    pub version: u64,
    /// The frozen ontology.
    pub snapshot: Arc<OntologySnapshot>,
    /// Models and serving metadata.
    pub resources: Arc<ServeResources>,
}

impl ServingFrame {
    /// A document tagger borrowing this frame's snapshot and resources —
    /// the single implementation behind `TagDocument` and harness code
    /// that needs sub-steps like key-entity detection.
    pub fn tagger(&self) -> DocumentTagger<'_> {
        DocumentTagger {
            snapshot: &self.snapshot,
            resources: &self.resources.tagging,
        }
    }

    /// Answers one request entirely within this frame.
    pub fn serve(&self, req: &ServeRequest) -> Result<ServeResponse, ServeError> {
        let res = &self.resources;
        match req {
            ServeRequest::Conceptualize { query } => Ok(ServeResponse::Conceptualize(
                conceptualize(&self.snapshot, query, res.max_results, res.match_aliases),
            )),
            ServeRequest::Recommend { query } => Ok(ServeResponse::Recommend(recommend(
                &self.snapshot,
                query,
                res.max_results,
                res.match_aliases,
            ))),
            ServeRequest::TagDocument { title, sentences } => {
                Ok(ServeResponse::TagDocument(self.tagger().tag(title, sentences)))
            }
            ServeRequest::StoryTree { seed } => {
                let seed_event = res
                    .stories
                    .iter()
                    .find(|e| e.node == *seed)
                    .ok_or(ServeError::UnknownStorySeed(*seed))?;
                let related: Vec<StoryEvent> = retrieve_related(seed_event, &res.stories)
                    .into_iter()
                    .cloned()
                    .collect();
                let sim = EventSimilarity {
                    encoder: &res.tagging.encoder,
                    vocab: &res.tagging.vocab,
                    tfidf: &res.tagging.tfidf,
                    snapshot: &self.snapshot,
                };
                Ok(ServeResponse::StoryTree(build_story_tree(
                    seed_event.clone(),
                    related,
                    &sim,
                    &res.story_config,
                )))
            }
            ServeRequest::ExportSubgraph { root } => {
                Ok(ServeResponse::ExportSubgraph(self.export_subgraph(*root)?))
            }
        }
    }

    /// The [`ServeRequest::ExportSubgraph`] implementation: collects the
    /// node set (everything, or `root` plus its isA closure), walks the
    /// snapshot adjacency for the induced edges (correlates emitted once,
    /// smaller id first — matching `Ontology::edges_iter`), and renders
    /// through the builtin schema. Node ids keep their frame values, so a
    /// subgraph export names the same nodes the full export does.
    fn export_subgraph(&self, root: Option<NodeId>) -> Result<String, ServeError> {
        let snap = &self.snapshot;
        let ids: Vec<NodeId> = match root {
            None => (0..snap.n_nodes()).map(|i| NodeId(i as u32)).collect(),
            Some(r) => {
                if r.index() >= snap.n_nodes() {
                    return Err(ServeError::UnknownExportRoot(r));
                }
                let mut ids: Vec<NodeId> =
                    snap.descendants(r).into_iter().map(|(id, _)| id).collect();
                ids.push(r);
                ids.sort_unstable_by_key(|id| id.0);
                ids.dedup();
                ids
            }
        };
        let included: HashSet<u32> = ids.iter().map(|id| id.0).collect();
        let nodes: Vec<AttentionNode> = ids.iter().map(|id| snap.node(*id).clone()).collect();
        let mut edges: Vec<(NodeId, NodeId, EdgeKind, f64)> = Vec::new();
        for &id in &ids {
            for kind in EdgeKind::ALL {
                let (targets, weights) = snap.out_edges(kind, id);
                for (t, w) in targets.iter().zip(weights) {
                    if !included.contains(&t.0) {
                        continue;
                    }
                    if kind == EdgeKind::Correlate && t.0 < id.0 {
                        continue; // symmetric pair: emit once
                    }
                    edges.push((id, *t, kind, *w));
                }
            }
        }
        export_json_view(&nodes, &edges, &Schema::builtin())
            .map_err(|e| ServeError::ExportFailed(e.to_string()))
    }
}

/// The versioned, hot-swappable ontology serving endpoint.
///
/// See the [module docs](self) for the swap mechanics. All read paths
/// (`frame`, `serve`, `serve_batch`, `version`) are lock-free; `publish`
/// serializes writers on a small internal mutex without ever blocking
/// readers.
pub struct OntologyService {
    /// Points at the live frame; owns one strong count of it.
    current: AtomicPtr<ServingFrame>,
    /// Readers currently inside the load→secure acquire window.
    readers_acquiring: AtomicUsize,
    /// Frames whose pointer a stalled reader might still hold (usually just
    /// the live one; superseded frames are reclaimed at publish time).
    history: Mutex<Vec<Arc<ServingFrame>>>,
}

impl fmt::Debug for OntologyService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OntologyService")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

impl OntologyService {
    /// Builds a service with its first published version (version 1).
    pub fn new(snapshot: OntologySnapshot, resources: ServeResources) -> Self {
        let svc = Self {
            current: AtomicPtr::new(std::ptr::null_mut()),
            readers_acquiring: AtomicUsize::new(0),
            history: Mutex::new(Vec::new()),
        };
        svc.publish(snapshot, resources);
        svc
    }

    /// Builds a service whose live frame carries an explicit version —
    /// checkpoint restore resumes the version sequence instead of
    /// restarting it at 1.
    fn with_frame(snapshot: OntologySnapshot, resources: ServeResources, version: u64) -> Self {
        let frame = Arc::new(ServingFrame {
            version,
            snapshot: Arc::new(snapshot),
            resources: Arc::new(resources),
        });
        let ptr = Arc::into_raw(Arc::clone(&frame)) as *mut ServingFrame;
        Self {
            current: AtomicPtr::new(ptr),
            readers_acquiring: AtomicUsize::new(0),
            history: Mutex::new(vec![frame]),
        }
    }

    /// Writes the live frame — version, frozen snapshot, full serving
    /// resources (trained models included) — as `serve.*` sections, so a
    /// restored process serves byte-identical answers without re-freezing
    /// or retraining. In-flight readers and publishers are unaffected
    /// (this reads one frame through the same lock-free acquire they use).
    pub fn checkpoint_sections(&self, file: &mut SectionFile) {
        let frame = self.frame();
        let mut w = Writer::new();
        w.u64(frame.version);
        file.add_writer("serve.meta", w);
        let mut w = Writer::new();
        binio::write_snapshot(&frame.snapshot, &mut w);
        file.add_writer("serve.snapshot", w);
        let mut w = Writer::new();
        crate::ckpt::write_resources(&mut w, &frame.resources);
        file.add_writer("serve.resources", w);
    }

    /// Checkpoints the live frame to `path` (atomic write; magic, format
    /// version and per-section checksums per `giant_ontology::binio`).
    pub fn checkpoint(&self, path: &Path) -> std::io::Result<()> {
        let mut file = SectionFile::new();
        self.checkpoint_sections(&mut file);
        file.write_file(path)
    }

    /// Rebuilds a service from `serve.*` sections: the snapshot is read
    /// back directly (no re-freeze), the resources carry their trained
    /// models, and the restored service resumes at the checkpointed
    /// version.
    pub fn restore_sections(file: &SectionFile) -> Result<Self, BinError> {
        let mut r = file.section("serve.meta")?;
        let version = r.u64()?;
        r.expect_exhausted()?;
        let mut r = file.section("serve.snapshot")?;
        let snapshot = binio::read_snapshot(&mut r)?;
        r.expect_exhausted()?;
        let mut r = file.section("serve.resources")?;
        let resources = crate::ckpt::read_resources(&mut r)?;
        r.expect_exhausted()?;
        Ok(Self::with_frame(snapshot, resources, version))
    }

    /// Restores a service from a checkpoint written by
    /// [`OntologyService::checkpoint`].
    pub fn restore(path: &Path) -> Result<Self, FileError> {
        let file = SectionFile::read_file(path)?;
        Ok(Self::restore_sections(&file)?)
    }

    /// Atomically replaces the live frame with a freshly built one and
    /// returns its version. In-flight readers keep answering from the frame
    /// they already hold; new readers observe the new frame immediately.
    /// Superseded frames are reclaimed here whenever no reader is inside
    /// the acquire window, so steady-state retention is a single frame.
    pub fn publish(&self, snapshot: OntologySnapshot, resources: ServeResources) -> u64 {
        let mut history = self.history.lock().expect("service history poisoned");
        let version = history.last().map(|f| f.version + 1).unwrap_or(1);
        let frame = Arc::new(ServingFrame {
            version,
            snapshot: Arc::new(snapshot),
            resources: Arc::new(resources),
        });
        // `current` owns one strong count (via into_raw); `history` owns
        // another, which is what makes the readers' two-step acquire safe.
        let ptr = Arc::into_raw(Arc::clone(&frame)) as *mut ServingFrame;
        history.push(frame);
        let old = self.current.swap(ptr, Ordering::SeqCst);
        if !old.is_null() {
            // Reclaim the superseded frame's `current` count; the frame
            // itself stays alive through `history` for late readers.
            unsafe { drop(Arc::from_raw(old)) };
        }
        // Opportunistic reclamation. SeqCst total order: if the presence
        // counter reads 0, every reader that announced itself before that
        // load has also left the window (secured its Arc), and any reader
        // announcing later must load `current` after our swap and can only
        // see the new frame — so no one can still be holding a bare
        // pointer to a superseded frame, and dropping those history
        // entries is sound. Outside `Arc<ServingFrame>` handles keep their
        // frames alive independently. The window is three atomic ops, so a
        // zero sample is overwhelmingly likely; a short bounded retry
        // rides out momentary overlap under heavy read traffic. If every
        // sample is nonzero (a reader descheduled mid-window), the frames
        // are retained until the next publish or `prune_history`.
        for _ in 0..64 {
            if self.readers_acquiring.load(Ordering::SeqCst) == 0 {
                history.retain(|f| std::ptr::eq(Arc::as_ptr(f), ptr));
                break;
            }
            std::hint::spin_loop();
        }
        version
    }

    /// The live frame (lock-free: two atomic RMWs + one load, no locks).
    pub fn frame(&self) -> Arc<ServingFrame> {
        self.readers_acquiring.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        debug_assert!(!ptr.is_null(), "service always holds a frame after new()");
        // SAFETY: `ptr` came from `Arc::into_raw` in `publish`, and the
        // pointee cannot be released while we are inside the announced
        // window — `publish` only drops history entries when the presence
        // counter is zero, and `prune_history` requires `&mut self`.
        // Bumping the count and rewrapping yields an owned handle.
        let frame = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.readers_acquiring.fetch_sub(1, Ordering::SeqCst);
        frame
    }

    /// The live version number (lock-free).
    pub fn version(&self) -> u64 {
        self.readers_acquiring.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: same liveness argument as `frame`; read-only access
        // entirely inside the announced window.
        let version = unsafe { (*ptr).version };
        self.readers_acquiring.fetch_sub(1, Ordering::SeqCst);
        version
    }

    /// The live snapshot.
    pub fn snapshot(&self) -> Arc<OntologySnapshot> {
        Arc::clone(&self.frame().snapshot)
    }

    /// The live resources.
    pub fn resources(&self) -> Arc<ServeResources> {
        Arc::clone(&self.frame().resources)
    }

    /// Answers one request against the live frame.
    pub fn serve(&self, req: &ServeRequest) -> Result<ServeResponse, ServeError> {
        self.frame().serve(req)
    }

    /// Answers a batch on `threads` workers via `giant_exec::run_ordered`:
    /// responses come back in request order, byte-identical at any thread
    /// count, and the whole batch is answered within a single frame even if
    /// a publish lands mid-flight.
    pub fn serve_batch(
        &self,
        requests: &[ServeRequest],
        threads: usize,
    ) -> Vec<Result<ServeResponse, ServeError>> {
        let span = giant_obs::span("serve_batch");
        let frame = self.frame();
        let replies = giant_exec::run_ordered(requests, threads, |_, req| frame.serve(req));
        drop(span);
        replies
    }

    /// Number of frames currently retained (1 in the steady state; more
    /// only while a reader stalls inside the acquire window across a
    /// publish).
    pub fn n_retained(&self) -> usize {
        self.history.lock().expect("service history poisoned").len()
    }

    /// Prunes history through `&self`, keeping the newest `keep` frames
    /// (clamped to at least the live one). Returns the number of frames
    /// retained. This is the pruning entry point for shared-`Arc` users —
    /// an `IncrementalDriver` publishing from one thread while readers
    /// serve from others.
    ///
    /// `keep = 0` is **not** "drop everything": it clamps to 1, because
    /// the newest history entry is the live frame and dropping it would
    /// leave `current` dangling. Likewise, pruning while the live frame is
    /// the only frame is a no-op. Both are pinned by
    /// `retain_last_zero_on_a_single_frame_service_never_drops_the_live_frame`.
    ///
    /// Safety mirrors `publish`'s opportunistic reclamation: superseded
    /// frames are dropped only inside a quiet window (the `SeqCst`
    /// presence counter reads zero, so no reader can be holding a bare
    /// frame pointer it has not yet secured; any later reader loads
    /// `current`, which is always retained — `publish` pushes the frame
    /// and swaps the pointer under the same history lock held here, so the
    /// newest history entry *is* the live frame). If the window never goes
    /// quiet within the bounded retry, nothing is dropped and the caller
    /// may simply try again later; readers are never blocked either way.
    pub fn retain_last(&self, keep: usize) -> usize {
        let keep = keep.max(1);
        let mut history = self.history.lock().expect("service history poisoned");
        if history.len() > keep {
            for _ in 0..64 {
                if self.readers_acquiring.load(Ordering::SeqCst) == 0 {
                    let drop_from = history.len() - keep;
                    history.drain(..drop_from);
                    break;
                }
                std::hint::spin_loop();
            }
        }
        history.len()
    }

    /// Drops every superseded frame unconditionally. Requires exclusive
    /// access, which guarantees no reader is inside the lock-free acquire
    /// window; readers that already own an `Arc` to an old frame keep it
    /// alive themselves. Shared-`Arc` callers use
    /// [`OntologyService::retain_last`] instead.
    pub fn prune_history(&mut self) {
        let current = *self.current.get_mut() as *const ServingFrame;
        self.history
            .get_mut()
            .expect("service history poisoned")
            .retain(|f| Arc::as_ptr(f) == current);
    }
}

impl Drop for OntologyService {
    fn drop(&mut self) {
        let ptr = *self.current.get_mut();
        if !ptr.is_null() {
            // Release the strong count `current` owns.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duet::{DuetConfig, DuetMatcher};
    use crate::tagging::TaggingConfig;
    use giant_ontology::{NodeKind, Ontology, Phrase};
    use giant_text::embedding::{PhraseEncoder, SgnsConfig, WordEmbeddings};
    use giant_text::{TfIdf, Vocab};
    use std::collections::HashMap;

    /// A minimal but fully wired frame over a hand-built world.
    fn service() -> (OntologyService, NodeId) {
        let mut o = Ontology::new();
        let cars = o.add_node(NodeKind::Concept, Phrase::from_text("electric cars"), 5.0);
        let v = o.add_node(NodeKind::Entity, Phrase::from_text("veltro x9"), 3.0);
        let k = o.add_node(NodeKind::Entity, Phrase::from_text("kario s4"), 9.0);
        o.add_is_a(cars, v, 1.0).unwrap();
        o.add_is_a(cars, k, 1.0).unwrap();
        o.add_correlate(v, k, 0.9).unwrap();
        let ev = o.add_event(Phrase::from_text("veltro x9 wins award"), 1.0, 3);
        let ev2 = o.add_event(Phrase::from_text("veltro x9 recalled"), 1.0, 7);
        o.add_involve(ev, v, 1.0).unwrap();
        o.add_involve(ev2, v, 1.0).unwrap();

        let mut vocab = Vocab::new();
        let sents: Vec<Vec<giant_text::TokenId>> = (0..10)
            .map(|_| {
                giant_text::tokenize("veltro x9 electric cars wins award recalled")
                    .iter()
                    .map(|t| vocab.intern(t))
                    .collect()
            })
            .collect();
        let encoder =
            PhraseEncoder::new(WordEmbeddings::train(&sents, vocab.len(), &SgnsConfig::default()));
        let mut tfidf = TfIdf::new();
        tfidf.add_doc(["veltro", "x9", "electric", "cars"]);
        let mut examples = Vec::new();
        for _ in 0..10 {
            examples.push((vec![0.95, 0.95, 0.9, 0.6, 0.5, 1.0], true));
            examples.push((vec![0.1, 0.15, 0.0, 0.1, 0.3, 0.0], false));
        }
        let duet = DuetMatcher::train(&examples, DuetConfig::default());
        let stories = vec![
            StoryEvent {
                node: ev,
                tokens: giant_text::tokenize("veltro x9 wins award"),
                trigger: Some("wins".into()),
                entities: vec![v],
                day: 3,
            },
            StoryEvent {
                node: ev2,
                tokens: giant_text::tokenize("veltro x9 recalled"),
                trigger: Some("recalled".into()),
                entities: vec![v],
                day: 7,
            },
        ];
        let resources = ServeResources {
            tagging: TagResources {
                concept_contexts: HashMap::new(),
                event_phrases: vec![(ev, giant_text::tokenize("veltro x9 wins award"))],
                tfidf: Arc::new(tfidf),
                duet: Arc::new(duet),
                encoder: Arc::new(encoder),
                vocab: Arc::new(vocab),
                config: TaggingConfig::default(),
            },
            stories,
            story_config: StoryTreeConfig::default(),
            match_aliases: false,
            max_results: 5,
        };
        (OntologyService::new(OntologySnapshot::freeze(&o), resources), ev)
    }

    #[test]
    fn serves_every_request_kind() {
        let (svc, ev) = service();
        assert_eq!(svc.version(), 1);
        let c = svc
            .serve(&ServeRequest::Conceptualize { query: "best electric cars".into() })
            .unwrap();
        let ServeResponse::Conceptualize(u) = c else { panic!("wrong response kind") };
        assert!(u.concept.is_some());
        assert_eq!(u.rewrites.len(), 2);

        let r = svc
            .serve(&ServeRequest::Recommend { query: "veltro x9 review".into() })
            .unwrap();
        let ServeResponse::Recommend(r) = r else { panic!("wrong response kind") };
        assert_eq!(r.items.len(), 1);

        let t = svc
            .serve(&ServeRequest::TagDocument {
                title: "veltro x9 wins award".into(),
                sentences: vec!["a great day for electric cars".into()],
            })
            .unwrap();
        assert!(matches!(t, ServeResponse::TagDocument(_)));

        let s = svc.serve(&ServeRequest::StoryTree { seed: ev }).unwrap();
        let ServeResponse::StoryTree(tree) = s else { panic!("wrong response kind") };
        assert_eq!(tree.n_events(), 2);

        // Unknown story seed is a typed error.
        let bogus = NodeId(999);
        assert_eq!(
            svc.serve(&ServeRequest::StoryTree { seed: bogus }).unwrap_err(),
            ServeError::UnknownStorySeed(bogus)
        );
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let (svc, ev) = service();
        let reqs: Vec<ServeRequest> = (0..24)
            .map(|i| match i % 3 {
                0 => ServeRequest::Conceptualize { query: format!("q{i} electric cars") },
                1 => ServeRequest::Recommend { query: "veltro x9".into() },
                _ => ServeRequest::StoryTree { seed: ev },
            })
            .collect();
        let base: Vec<String> =
            svc.serve_batch(&reqs, 1).iter().map(|r| format!("{r:?}")).collect();
        for threads in [2, 4, 7] {
            let got: Vec<String> =
                svc.serve_batch(&reqs, threads).iter().map(|r| format!("{r:?}")).collect();
            assert_eq!(base, got, "batch output varies at {threads} threads");
        }
    }

    #[test]
    fn publish_bumps_version_and_swaps_snapshot() {
        let (svc, _) = service();
        let old_frame = svc.frame();
        assert_eq!(old_frame.version, 1);

        // New world: one more entity under the concept.
        let mut o = Ontology::new();
        let cars = o.add_node(NodeKind::Concept, Phrase::from_text("electric cars"), 5.0);
        let z = o.add_node(NodeKind::Entity, Phrase::from_text("zelda gt2"), 4.0);
        o.add_is_a(cars, z, 1.0).unwrap();
        let resources = (*svc.resources()).clone();
        let v2 = svc.publish(OntologySnapshot::freeze(&o), resources);
        assert_eq!(v2, 2);
        assert_eq!(svc.version(), 2);
        // No reader was mid-acquire, so the publish reclaimed the old
        // frame from history; `old_frame`'s own Arc keeps it usable.
        assert_eq!(svc.n_retained(), 1);

        // New frame answers from the new world…
        let ServeResponse::Conceptualize(u) = svc
            .serve(&ServeRequest::Conceptualize { query: "electric cars".into() })
            .unwrap()
        else {
            panic!("wrong response kind")
        };
        assert_eq!(u.rewrites, vec!["electric cars zelda gt2".to_owned()]);
        // …while the frame grabbed before the publish still answers from the
        // old one (snapshot isolation for in-flight work).
        let ServeResponse::Conceptualize(u_old) = old_frame
            .serve(&ServeRequest::Conceptualize { query: "electric cars".into() })
            .unwrap()
        else {
            panic!("wrong response kind")
        };
        assert_eq!(u_old.rewrites.len(), 2);
    }

    #[test]
    fn publish_reclaims_superseded_frames() {
        let (mut svc, _) = service();
        for _ in 0..3 {
            let snap = (*svc.snapshot()).clone();
            let res = (*svc.resources()).clone();
            svc.publish(snap, res);
            // With no reader mid-acquire, every publish reclaims down to
            // the live frame — memory stays bounded under republishing.
            assert_eq!(svc.n_retained(), 1);
        }
        assert_eq!(svc.version(), 4);
        // The exclusive-access prune is a no-op here but must keep serving.
        svc.prune_history();
        assert_eq!(svc.n_retained(), 1);
        assert_eq!(svc.version(), 4, "prune must keep the live frame");
        assert!(svc
            .serve(&ServeRequest::Conceptualize { query: "electric cars".into() })
            .is_ok());
    }

    #[test]
    fn retain_last_prunes_through_a_shared_reference() {
        // The regression this pins: history pruning used to require
        // `&mut self`, which is unusable once the service lives in an
        // `Arc` shared with readers — exactly the incremental driver's
        // shape. `retain_last` must work through `&self`.
        let (svc, _) = service();
        let svc = Arc::new(svc);
        for _ in 0..5 {
            let snap = (*svc.snapshot()).clone();
            let res = (*svc.resources()).clone();
            svc.publish(snap, res);
        }
        assert_eq!(svc.version(), 6);
        // Publish reclaims opportunistically, so history is already lean;
        // retain_last through &self (no &mut anywhere) must keep serving
        // and never drop the live frame.
        let retained = svc.retain_last(3);
        assert!((1..=3).contains(&retained));
        assert_eq!(svc.version(), 6, "live frame must survive pruning");
        assert!(svc
            .serve(&ServeRequest::Conceptualize { query: "electric cars".into() })
            .is_ok());
        // keep = 0 clamps to the live frame.
        assert_eq!(svc.retain_last(0), 1);
        assert_eq!(svc.version(), 6);
    }

    #[test]
    fn retain_last_zero_on_a_single_frame_service_never_drops_the_live_frame() {
        // The edge this pins: `retain_last(0)` — and pruning in general —
        // while the current frame is the ONLY frame must be a no-op that
        // keeps serving. `keep` clamps to 1 because the newest history
        // entry is the live frame; dropping it would leave `current`
        // dangling.
        let (svc, _) = service();
        let svc = Arc::new(svc);
        let probe = ServeRequest::Conceptualize {
            query: "electric cars".into(),
        };
        assert_eq!(svc.n_retained(), 1);
        assert_eq!(svc.retain_last(0), 1, "keep=0 clamps to the live frame");
        assert_eq!(svc.retain_last(0), 1, "and is idempotent");
        assert_eq!(svc.retain_last(5), 1, "keep beyond depth changes nothing");
        assert_eq!(svc.n_retained(), 1);
        assert_eq!(svc.version(), 1, "live frame must survive");
        assert!(svc.serve(&probe).is_ok(), "service must keep answering");
        // The exclusive-access pruning path has the same contract.
        let mut svc = match Arc::try_unwrap(svc) {
            Ok(svc) => svc,
            Err(_) => unreachable!("sole owner"),
        };
        svc.prune_history();
        assert_eq!(svc.n_retained(), 1);
        assert!(svc.serve(&probe).is_ok());
    }

    #[test]
    fn retain_last_keeps_depth_under_concurrent_readers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (svc, _) = service();
        let svc = Arc::new(svc);
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut served = 0u64;
                loop {
                    let frame = svc.frame();
                    let r = frame
                        .serve(&ServeRequest::Conceptualize { query: "electric cars".into() })
                        .unwrap();
                    assert!(matches!(r, ServeResponse::Conceptualize(_)));
                    served += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                served
            }));
        }
        for _ in 0..10 {
            let snap = (*svc.snapshot()).clone();
            let res = (*svc.resources()).clone();
            svc.publish(snap, res);
            let retained = svc.retain_last(2);
            assert!(retained >= 1, "retain_last must never drop the live frame");
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader starved");
        }
        assert_eq!(svc.version(), 11);
    }

    #[test]
    fn checkpoint_restore_round_trips_every_request_kind() {
        let (svc, ev) = service();
        // Advance the version so restore has something nontrivial to keep.
        let snap = (*svc.snapshot()).clone();
        let res = (*svc.resources()).clone();
        svc.publish(snap, res);
        assert_eq!(svc.version(), 2);

        let dir = std::env::temp_dir().join("giant-serving-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("service.ckpt");
        svc.checkpoint(&path).unwrap();
        let restored = OntologyService::restore(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.version(), 2, "restore resumes the version sequence");
        let requests = vec![
            ServeRequest::Conceptualize { query: "best electric cars".into() },
            ServeRequest::Recommend { query: "veltro x9 review".into() },
            ServeRequest::TagDocument {
                title: "veltro x9 wins award".into(),
                sentences: vec!["a great day for electric cars".into()],
            },
            ServeRequest::StoryTree { seed: ev },
            ServeRequest::StoryTree { seed: NodeId(999) },
        ];
        for req in &requests {
            let a = format!("{:?}", svc.serve(req));
            let b = format!("{:?}", restored.serve(req));
            assert_eq!(a, b, "restored frame diverged on {req:?}");
        }
        // A restored service publishes onward normally.
        let snap = (*restored.snapshot()).clone();
        let res = (*restored.resources()).clone();
        assert_eq!(restored.publish(snap, res), 3);
    }

    #[test]
    fn restore_rejects_corrupted_checkpoints() {
        let (svc, _) = service();
        let dir = std::env::temp_dir().join("giant-serving-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("service.ckpt");
        svc.checkpoint(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x41;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            OntologyService::restore(&path).is_err(),
            "a flipped byte must fail restore, not serve corrupted answers"
        );
        std::fs::remove_file(&path).ok();
    }

    /// The `retain_last` / `publish` interleaving under load: reader
    /// threads hold in-flight frames across publishes and aggressive
    /// pruning, and every answer from a held frame must equal the answer
    /// that same frame gave before the prune — i.e. no in-flight reader
    /// ever observes a freed (or swapped-out) frame.
    #[test]
    fn in_flight_frames_survive_publish_and_retain_last() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (svc, _) = service();
        let svc = Arc::new(svc);
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let req = ServeRequest::Conceptualize { query: "electric cars".into() };
                let mut held = 0u64;
                loop {
                    // Acquire a frame and pin its identity *before* the
                    // writer gets a chance to prune it away.
                    let frame = svc.frame();
                    let version = frame.version;
                    let before = format!("{:?}", frame.serve(&req));
                    // Let publishes and retain_last(1) land in between.
                    std::thread::yield_now();
                    // The held frame must be fully intact: same version,
                    // byte-identical answer.
                    assert_eq!(frame.version, version, "frame version mutated under reader");
                    let after = format!("{:?}", frame.serve(&req));
                    assert_eq!(before, after, "held frame changed answers mid-flight");
                    held += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                held
            }));
        }
        for _ in 0..50 {
            let snap = (*svc.snapshot()).clone();
            let res = (*svc.resources()).clone();
            svc.publish(snap, res);
            // Aggressive pruning while readers are mid-flight: must never
            // free a frame a reader still holds, and must always keep the
            // live one.
            let retained = svc.retain_last(1);
            assert!(retained >= 1);
            assert!(svc.version() >= 2);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader starved");
        }
        assert_eq!(svc.version(), 51);
        // Quiescent state: pruning converges to exactly the live frame.
        assert!(svc.retain_last(1) >= 1);
    }

    #[test]
    fn concurrent_reads_across_publishes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (svc, _) = service();
        let svc = Arc::new(svc);
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut served = 0u64;
                let mut last_version = 0u64;
                // Check-at-end: every reader completes at least one read
                // even if the publisher finishes before it is scheduled.
                loop {
                    let frame = svc.frame();
                    assert!(frame.version >= last_version, "version went backwards");
                    last_version = frame.version;
                    let r = frame
                        .serve(&ServeRequest::Conceptualize { query: "electric cars".into() })
                        .unwrap();
                    assert!(matches!(r, ServeResponse::Conceptualize(_)));
                    served += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                served
            }));
        }
        for _ in 0..20 {
            let snap = (*svc.snapshot()).clone();
            let res = (*svc.resources()).clone();
            svc.publish(snap, res);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader starved");
        }
        assert_eq!(svc.version(), 21);
    }
}

//! # giant-apps — the applications of the Attention Ontology (paper §4–5)
//!
//! * [`storytree`] — story-tree formation (Figure 5): correlated-event
//!   retrieval, the eq. (8)–(11) similarity, hierarchical clustering and
//!   time-ordered branch assembly.
//! * [`tagging`] — document tagging: concepts via key-entity parents with
//!   TF-IDF coherence plus the probabilistic fallback (eq. 12–14);
//!   events/topics via LCS + the Duet matcher.
//! * [`duet`] — the simplified Duet semantic matcher (local + distributed
//!   channels → MLP).
//! * [`query`] — query conceptualization and correlate-based
//!   recommendations.
//! * [`recommend`] — the news-feed A/B simulator behind Figures 6–7.
//! * [`serving`] — the versioned `OntologyService`: immutable read-optimized
//!   snapshots behind one typed request/response API, every app above
//!   reachable through `ServeRequest`.

pub(crate) mod ckpt;
pub mod duet;
pub mod incremental;
pub mod query;
pub mod recommend;
pub mod serving;
pub mod storytree;
pub mod tagging;

pub use duet::{duet_features, DuetConfig, DuetMatcher, DUET_FEATURE_DIM};
pub use incremental::{
    mined_metadata, refresh_resources, DurabilityConfig, IncrementalDriver, IngestError,
    IngestReport, MinedMetadata, RestoreError, RestoreReport,
};
pub use query::{conceptualize, recommend as recommend_query, QueryUnderstanding, Recommendations};
pub use recommend::{
    simulate_by_kind,
    ground_truth_tags, simulate_feed, FeedSimConfig, KindSeries, SimDoc, SimResult, TagStrategy,
};
pub use serving::{
    OntologyService, ServeError, ServeRequest, ServeResources, ServeResponse, ServingFrame,
};
pub use storytree::{
    build_story_tree, retrieve_related, EventSimilarity, StoryEvent, StoryTree, StoryTreeConfig,
};
pub use tagging::{DocTags, DocumentTagger, TagResources, TaggingConfig};

//! The incremental serving driver: the end-to-end "log stream in, fresh
//! versioned answers out" loop.
//!
//! [`IncrementalDriver`] ties `giant-incr`'s folding to the versioned
//! [`OntologyService`]: each [`IncrementalDriver::ingest`] folds one
//! [`DeltaBatch`] (dirty-cluster re-mining + [`giant_ontology::OntologyDelta`]
//! application), freezes the updated live ontology into an
//! [`giant_ontology::OntologySnapshot`], refreshes the serving metadata
//! from the fold's mining product, publishes the new frame, and prunes the
//! frame history down to a bounded depth through
//! [`OntologyService::retain_last`] — all while readers keep answering
//! lock-free from whatever frame they hold.
//!
//! **Sharded folding** needs no driver knob: build the
//! [`IncrementalState`] with `GiantConfig::shards = K` and every ingest
//! partitions the accumulated input (`graph::shard`), folds the K shards
//! concurrently on per-shard warm cache slots, and publishes one federated
//! frame (DESIGN.md §14). The durability contract is unchanged — the WAL
//! logs batches before any fold, and checkpoints (format v2) carry the
//! per-shard slots, so `restore_durable` replays the tail through the same
//! sharded path and converges byte-identically
//! (`tests/shard_federation.rs`).
//!
//! Model resources (the SGNS phrase encoder, TF-IDF, Duet matcher) are
//! trained offline and carried across publishes by `Arc`; what refreshes
//! per version is the *mined metadata*: concept contexts, event/topic
//! phrases, the concept support floor, and the story-event set
//! ([`mined_metadata`] — also the single derivation `giant::adapter`'s
//! batch `build_serving` uses, so batch and incremental serving can never
//! drift apart).

use crate::serving::{OntologyService, ServeResources};
use crate::storytree::StoryEvent;
use crate::tagging::{TagResources, TaggingConfig};
use giant_core::pipeline::GiantOutput;
use giant_core::train::GiantModels;
use giant_incr::{
    screen_batch, BatchRejection, Checkpoint, DeltaBatch, FoldError, IncrementalState, SyncMode,
    Wal, WalError, WalTruncation,
};
use giant_ontology::binio::{self, FileError, SectionFile, Writer};
use giant_ontology::{DeltaStats, NodeId, NodeKind, OntologySnapshot};
use giant_schema::Schema;
use giant_text::Annotator;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Serving metadata derived from one pipeline product.
#[derive(Debug)]
pub struct MinedMetadata {
    /// Concept node → context-enriched tokens (phrase + top clicked
    /// titles).
    pub concept_contexts: HashMap<NodeId, Vec<String>>,
    /// Event/topic phrases to match during tagging.
    pub event_phrases: Vec<(NodeId, Vec<String>)>,
    /// Support floor separating noise concepts (half the median mined
    /// concept support).
    pub min_concept_support: f64,
    /// The mined events as story-tree inputs, in mining order.
    pub stories: Vec<StoryEvent>,
}

/// Derives the per-version serving metadata from a pipeline product. The
/// single implementation behind both the batch `build_serving` assembly
/// and [`refresh_resources`].
pub fn mined_metadata(output: &GiantOutput) -> MinedMetadata {
    let mut concept_contexts: HashMap<NodeId, Vec<String>> = HashMap::new();
    for m in output.mined_of_kind(NodeKind::Concept) {
        let mut ctx = m.tokens.clone();
        for t in &m.top_titles {
            ctx.extend(giant_text::tokenize(t));
        }
        concept_contexts.insert(m.node, ctx);
    }
    let event_phrases: Vec<(NodeId, Vec<String>)> = output
        .mined
        .iter()
        .filter(|m| matches!(m.kind, NodeKind::Event | NodeKind::Topic))
        .map(|m| (m.node, m.tokens.clone()))
        .collect();
    // Noise concepts come from single odd clusters and carry little click
    // mass; half the median support separates them from the real ones
    // without assuming any ground truth.
    let mut supports: Vec<f64> = output
        .mined_of_kind(NodeKind::Concept)
        .iter()
        .map(|m| m.support)
        .collect();
    supports.sort_by(|a, b| a.total_cmp(b));
    let min_concept_support = supports.get(supports.len() / 2).copied().unwrap_or(0.0) * 0.5;
    let stories = output
        .mined_of_kind(NodeKind::Event)
        .into_iter()
        .map(|m| StoryEvent {
            node: m.node,
            tokens: m.tokens.clone(),
            trigger: m.trigger.clone(),
            entities: m.entities.clone(),
            day: m.day.unwrap_or(0),
        })
        .collect();
    MinedMetadata {
        concept_contexts,
        event_phrases,
        min_concept_support,
        stories,
    }
}

/// A new [`ServeResources`] for `output`: trained model handles carried
/// over from `prev` by `Arc`, mined metadata re-derived from the fold.
pub fn refresh_resources(prev: &ServeResources, output: &GiantOutput) -> ServeResources {
    let meta = mined_metadata(output);
    ServeResources {
        tagging: TagResources {
            concept_contexts: meta.concept_contexts,
            event_phrases: meta.event_phrases,
            tfidf: Arc::clone(&prev.tagging.tfidf),
            duet: Arc::clone(&prev.tagging.duet),
            encoder: Arc::clone(&prev.tagging.encoder),
            vocab: Arc::clone(&prev.tagging.vocab),
            config: TaggingConfig {
                min_concept_support: meta.min_concept_support,
                ..prev.tagging.config
            },
        },
        stories: meta.stories,
        story_config: prev.story_config,
        match_aliases: prev.match_aliases,
        max_results: prev.max_results,
    }
}

/// How [`IncrementalDriver`] persists across crashes: a write-ahead log
/// of every ingested batch plus a periodic full checkpoint, both living
/// under one directory (`state.ckpt` + `ingest.wal`).
///
/// The contract (proven by `tests/crash_consistency.rs`): kill the
/// process at **any** instant, then [`IncrementalDriver::restore_durable`]
/// converges byte-identically with the never-crashed run — the WAL is
/// appended *before* the fold, so every acknowledged ingest is either in
/// the checkpoint or replayable from the log tail.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `state.ckpt` and `ingest.wal` (created if
    /// missing).
    pub dir: PathBuf,
    /// WAL fsync policy; see [`SyncMode`] for the survival table.
    pub sync: SyncMode,
    /// Checkpoint every N successful folds (≥ 1). Between checkpoints the
    /// WAL alone carries the delta; after each checkpoint the log is
    /// rotated down to a header.
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with per-append fsync and a checkpoint
    /// every 8 folds.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync: SyncMode::Strict,
            checkpoint_every: 8,
        }
    }

    /// Path of the periodic checkpoint file.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("state.ckpt")
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("ingest.wal")
    }
}

/// The live durability machinery behind an enabled [`DurabilityConfig`].
struct Durability {
    cfg: DurabilityConfig,
    wal: Wal,
    folds_since_checkpoint: u64,
}

/// What [`IncrementalDriver::restore_durable`] found and did.
#[derive(Debug)]
pub struct RestoreReport {
    /// WAL entries folded on top of the checkpoint.
    pub replayed: usize,
    /// Set when lenient recovery dropped a corrupt WAL suffix.
    pub truncation: Option<WalTruncation>,
}

/// [`IncrementalDriver::restore_durable`] failures.
#[derive(Debug)]
pub enum RestoreError {
    /// The checkpoint file is unreadable or undecodable.
    Checkpoint(FileError),
    /// The WAL is unreadable or corrupt (strict open; see
    /// [`giant_incr::Wal::open`]).
    Wal(WalError),
    /// A logged batch no longer folds — models/config drift between the
    /// run that logged it and this restore.
    Replay { seq: u64, source: FoldError },
    /// Writing the post-replay checkpoint failed.
    Persist(std::io::Error),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Checkpoint(e) => write!(f, "checkpoint unreadable: {e}"),
            RestoreError::Wal(e) => write!(f, "wal unreadable: {e}"),
            RestoreError::Replay { seq, source } => {
                write!(f, "replay of wal entry {seq} rejected: {source}")
            }
            RestoreError::Persist(e) => write!(f, "post-replay checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<FileError> for RestoreError {
    fn from(e: FileError) -> Self {
        RestoreError::Checkpoint(e)
    }
}

impl From<WalError> for RestoreError {
    fn from(e: WalError) -> Self {
        RestoreError::Wal(e)
    }
}

/// What one [`IncrementalDriver::ingest`] did.
///
/// The `*_secs` fields are fed from the same `giant-obs` span guards
/// that populate the `ingest.*` span histograms when observability is
/// armed — one clock, two views (DESIGN.md §13). They stay filled even
/// when recording is disarmed.
#[derive(Debug)]
pub struct IngestReport {
    /// The version the fold published.
    pub version: u64,
    /// Ontology change summary (nodes added/removed/updated, rewiring).
    pub delta: DeltaStats,
    /// Clusters re-mined by the fold.
    pub clusters_mined: usize,
    /// Clusters served from cache.
    pub clusters_reused: usize,
    /// Fold wall clock (ingest + rebuild + diff + apply).
    pub fold_secs: f64,
    /// Freeze + metadata refresh + publish wall clock.
    pub publish_secs: f64,
    /// Frames retained after pruning.
    pub retained_frames: usize,
    /// WAL append wall clock, when durability is enabled.
    pub wal_secs: Option<f64>,
    /// Checkpoint wall clock, when this ingest checkpointed (legacy
    /// checkpoint-on-publish, or a durable ingest hitting its
    /// `checkpoint_every` boundary).
    pub checkpoint_secs: Option<f64>,
    /// Batch items the schema screen rejected (empty unless
    /// [`IncrementalDriver::set_schema`] armed a schema). Rejected items
    /// never reach the WAL or the fold; the rest of the batch proceeds.
    pub rejections: Vec<BatchRejection>,
}

/// [`IncrementalDriver::ingest`] errors.
///
/// The variants split along the publish boundary: [`IngestError::Fold`]
/// and [`IngestError::Wal`] reject the batch **before** anything is
/// served — state, service and (for `Fold` in durable mode) the WAL are
/// rolled back, and retrying the batch is safe. [`IngestError::Checkpoint`]
/// fires **after** the fold already published: readers are serving the new
/// version and the batch is folded for good. It therefore carries the
/// successful [`IngestReport`] — the publish stands; do **not** retry the
/// batch (that would fold it twice). In durable mode a failed checkpoint
/// leaves the WAL un-rotated, so no durability is lost either: the entry
/// replays on restore.
#[derive(Debug)]
pub enum IngestError {
    /// Batch validation failed; the state and service are untouched.
    Fold(FoldError),
    /// The WAL append failed; the batch was not folded or published.
    Wal(WalError),
    /// The fold published, but the checkpoint (or WAL rotation after it)
    /// could not complete. `report` is the report of the **successful**
    /// ingest.
    Checkpoint {
        /// The report of the ingest that published (version, stats, …).
        report: Box<IngestReport>,
        /// Why persisting failed.
        source: std::io::Error,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Fold(e) => write!(f, "fold rejected: {e}"),
            IngestError::Wal(e) => write!(f, "wal append failed: {e}"),
            IngestError::Checkpoint { report, source } => write!(
                f,
                "checkpoint failed after version {} published (the publish stands, do not retry the batch): {source}",
                report.version
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Fold(e) => Some(e),
            IngestError::Wal(e) => Some(e),
            IngestError::Checkpoint { source, .. } => Some(source),
        }
    }
}

impl From<FoldError> for IngestError {
    fn from(e: FoldError) -> Self {
        IngestError::Fold(e)
    }
}

/// The end-to-end incremental serving loop. See the [module docs](self).
pub struct IncrementalDriver {
    state: IncrementalState,
    service: Arc<OntologyService>,
    keep_frames: usize,
    checkpoint_path: Option<PathBuf>,
    durability: Option<Durability>,
    schema: Option<Arc<Schema>>,
}

/// Section name carrying the WAL watermark inside a durable checkpoint:
/// the sequence number of the last WAL entry folded into the checkpointed
/// state. Replay skips entries at or below it. Absent from legacy
/// checkpoints (treated as watermark 0).
const WAL_WATERMARK_SECTION: &str = "driver.wal";

impl IncrementalDriver {
    /// Bootstraps the loop: folds `initial` into a fresh `state`, derives
    /// the first frame's resources from the bootstrap product (taking the
    /// trained model handles from `base`), and publishes version 1.
    ///
    /// `keep_frames` bounds the service's frame history: after every
    /// publish the driver retains at most the newest `keep_frames` frames
    /// (in-flight readers keep older frames alive through their own
    /// `Arc`s, so pruning never invalidates an answer mid-request).
    pub fn bootstrap(
        mut state: IncrementalState,
        base: ServeResources,
        initial: DeltaBatch,
        keep_frames: usize,
    ) -> Result<(Self, IngestReport), FoldError> {
        let report = state.fold(initial)?;
        let publish_span = giant_obs::span("ingest.publish");
        let resources = refresh_resources(&base, &report.output);
        let snapshot = OntologySnapshot::freeze(state.ontology());
        let service = Arc::new(OntologyService::new(snapshot, resources));
        let publish_secs = publish_span.finish_secs();
        let driver = Self {
            state,
            service,
            keep_frames: keep_frames.max(1),
            checkpoint_path: None,
            durability: None,
            schema: None,
        };
        let ingest = IngestReport {
            version: driver.service.version(),
            delta: report.delta.stats(),
            clusters_mined: report.cache.clusters_mined,
            clusters_reused: report.cache.clusters_reused,
            fold_secs: report.secs,
            publish_secs,
            retained_frames: driver.service.n_retained(),
            wal_secs: None,
            checkpoint_secs: None,
            rejections: Vec::new(),
        };
        Ok((driver, ingest))
    }

    /// Turns on WAL-backed durability: every subsequent
    /// [`IncrementalDriver::ingest`] appends the batch to
    /// `cfg.wal_path()` **before** folding, and the driver checkpoints to
    /// `cfg.checkpoint_path()` every `cfg.checkpoint_every` folds
    /// (rotating the log after each successful checkpoint).
    ///
    /// The directory is created if missing; any existing log there is
    /// **truncated** and an immediate baseline checkpoint of the current
    /// state is written — this call starts a fresh durability epoch. To
    /// *resume* a previous epoch, use
    /// [`IncrementalDriver::restore_durable`] instead. Durable mode and
    /// legacy [`IncrementalDriver::set_checkpoint_path`] are exclusive;
    /// enabling durability clears the legacy path.
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) -> Result<(), RestoreError> {
        std::fs::create_dir_all(&cfg.dir).map_err(RestoreError::Persist)?;
        let wal = Wal::create(&cfg.wal_path(), cfg.sync, 1)?;
        self.write_checkpoint(&cfg.checkpoint_path(), Some(0))
            .map_err(RestoreError::Persist)?;
        self.checkpoint_path = None;
        self.durability = Some(Durability {
            cfg,
            wal,
            folds_since_checkpoint: 0,
        });
        Ok(())
    }

    /// The enabled durability configuration, if any.
    pub fn durability(&self) -> Option<&DurabilityConfig> {
        self.durability.as_ref().map(|d| &d.cfg)
    }

    /// The WAL sequence number of the last acknowledged ingest (0 when
    /// durability is off or nothing was logged yet).
    pub fn wal_seq(&self) -> u64 {
        self.durability.as_ref().map(|d| d.wal.last_seq()).unwrap_or(0)
    }

    /// Arms (or disarms, with `None`) schema screening on ingest: every
    /// subsequent [`IncrementalDriver::ingest`] runs the batch through
    /// [`giant_incr::screen_batch`] first, drops the items that violate
    /// `schema` (reported per item in [`IngestReport::rejections`]), and
    /// folds only the surviving remainder. Screening happens **before**
    /// the WAL append, so the log only ever holds accepted batches and
    /// replay needs no schema. With no schema armed, ingest is
    /// byte-identical to a driver without this feature (the schema-off
    /// fast path; pinned by `tests/schema_interchange.rs`).
    pub fn set_schema(&mut self, schema: Option<Arc<Schema>>) {
        self.schema = schema;
    }

    /// The schema armed by [`IncrementalDriver::set_schema`], if any.
    pub fn schema(&self) -> Option<&Arc<Schema>> {
        self.schema.as_ref()
    }

    /// Enables checkpoint-on-publish: after every successful
    /// [`IncrementalDriver::ingest`] publish, the driver writes a full
    /// checkpoint (folding state + serving frame) to `path`, atomically
    /// replacing the previous one — so a crash at any point leaves either
    /// the old or the new checkpoint, never a torn file. `None` disables.
    pub fn set_checkpoint_path(&mut self, path: Option<PathBuf>) {
        self.checkpoint_path = path;
    }

    /// Folds one batch and publishes the resulting ontology version.
    ///
    /// In durable mode the batch is validated, appended to the WAL, and
    /// only then folded — so a crash at any instant after `append`
    /// returns leaves the batch recoverable, and a crash before leaves
    /// state and log both without it. Every `checkpoint_every`-th fold
    /// checkpoints and rotates the log. With a legacy checkpoint path set
    /// instead, the driver checkpoints after every publish.
    pub fn ingest(&mut self, batch: DeltaBatch) -> Result<IngestReport, IngestError> {
        // Root span for the whole ingest; the stage spans below nest under
        // it, so a profiling run attributes screen/WAL/fold/publish/
        // checkpoint time separately (DESIGN.md §13). The report's
        // `*_secs` fields are fed from the same guards — one clock.
        let _ingest_span = giant_obs::span("ingest");
        // Schema screen first (when armed): salvage the valid items and
        // collect typed per-item rejections. The accepted remainder is what
        // gets logged and folded — the WAL never holds a rejected item.
        let mut rejections = Vec::new();
        let batch = match self.schema.as_deref() {
            Some(schema) => {
                let screen_span = giant_obs::span("ingest.screen");
                let screened = screen_batch(schema, self.state.input().docs.len(), &batch);
                drop(screen_span);
                rejections = screened.rejections;
                screened.accepted
            }
            None => batch,
        };
        let mut wal_secs = None;
        let mut logged_seq = None;
        if let Some(d) = self.durability.as_mut() {
            // Validate up front: a batch the fold would reject must never
            // enter the log (replay would re-reject it on every restore).
            self.state.validate(&batch).map_err(IngestError::Fold)?;
            let wal_span = giant_obs::span("ingest.wal_append");
            logged_seq = Some(d.wal.append(&batch).map_err(IngestError::Wal)?);
            wal_secs = Some(wal_span.finish_secs());
            binio::crash_point("driver.post-append");
        }
        let fold_span = giant_obs::span("ingest.fold");
        let report = match self.state.fold(batch) {
            Ok(r) => r,
            Err(e) => {
                // Validation passed but the fold still rejected (a
                // diff/apply invariant failure): compensate the append so
                // log and state stay in agreement, then surface the error.
                if let (Some(d), Some(seq)) = (self.durability.as_mut(), logged_seq) {
                    let _ = d.wal.rollback_last(seq);
                }
                return Err(IngestError::Fold(e));
            }
        };
        drop(fold_span);
        let publish_span = giant_obs::span("ingest.publish");
        let resources = refresh_resources(&self.service.resources(), &report.output);
        let snapshot = OntologySnapshot::freeze(self.state.ontology());
        let version = self.service.publish(snapshot, resources);
        let retained_frames = self.service.retain_last(self.keep_frames);
        let publish_secs = publish_span.finish_secs();
        let m = giant_obs::registry();
        m.counter("ingest.batches").inc();
        m.counter("ingest.rejections").add(rejections.len() as u64);
        let mut out = IngestReport {
            version,
            delta: report.delta.stats(),
            clusters_mined: report.cache.clusters_mined,
            clusters_reused: report.cache.clusters_reused,
            fold_secs: report.secs,
            publish_secs,
            retained_frames,
            wal_secs,
            checkpoint_secs: None,
            rejections,
        };
        if self.durability.is_some() {
            let due = {
                let d = self.durability.as_mut().expect("checked");
                d.folds_since_checkpoint += 1;
                d.folds_since_checkpoint >= d.cfg.checkpoint_every.max(1)
            };
            if due {
                binio::crash_point("driver.pre-checkpoint");
                let ckpt_span = giant_obs::span("ingest.checkpoint");
                match self.checkpoint_and_rotate() {
                    Ok(()) => out.checkpoint_secs = Some(ckpt_span.finish_secs()),
                    // The publish stands and the WAL still holds the
                    // entry (rotation only follows a *successful*
                    // checkpoint), so nothing is lost — report it.
                    Err(source) => {
                        return Err(IngestError::Checkpoint {
                            report: Box::new(out),
                            source,
                        })
                    }
                }
            }
        } else if let Some(path) = self.checkpoint_path.clone() {
            let ckpt_span = giant_obs::span("ingest.checkpoint");
            if let Err(source) = self.checkpoint(&path) {
                return Err(IngestError::Checkpoint {
                    report: Box::new(out),
                    source,
                });
            }
            out.checkpoint_secs = Some(ckpt_span.finish_secs());
        }
        Ok(out)
    }

    /// Checkpoints the durable state (watermark = last logged seq), then
    /// rotates the WAL down to a header. Ordering is the durability
    /// argument: the checkpoint holds every logged entry *before* the log
    /// forgets them, and a crash between the two steps only means replay
    /// skips the whole (already-checkpointed) log.
    fn checkpoint_and_rotate(&mut self) -> std::io::Result<()> {
        let d = self.durability.as_ref().expect("durable mode");
        let path = d.cfg.checkpoint_path();
        let watermark = d.wal.last_seq();
        self.write_checkpoint(&path, Some(watermark))?;
        binio::crash_point("driver.pre-rotate");
        let d = self.durability.as_mut().expect("durable mode");
        d.wal.rotate().map_err(std::io::Error::other)?;
        binio::crash_point("driver.post-rotate");
        d.folds_since_checkpoint = 0;
        Ok(())
    }

    /// Writes one file carrying both halves of the loop: the folding
    /// state's `incr.*` sections (accumulated corpus, warm caches, live
    /// ontology) and the serving frame's `serve.*` sections (frozen
    /// snapshot + model resources + version). Serialises the state by
    /// reference — no transient deep clone, so checkpoint-on-publish adds
    /// write time but not peak memory to an ingest.
    pub fn checkpoint(&self, path: &Path) -> std::io::Result<()> {
        self.write_checkpoint(path, None)
    }

    /// The one checkpoint writer: state + serving sections, plus (in
    /// durable mode) the [`WAL_WATERMARK_SECTION`] recording how much of
    /// the log the image already contains.
    fn write_checkpoint(&self, path: &Path, watermark: Option<u64>) -> std::io::Result<()> {
        let mut file = SectionFile::new();
        Checkpoint::write_state_sections(&self.state, &mut file);
        self.service.checkpoint_sections(&mut file);
        if let Some(seq) = watermark {
            let mut w = Writer::new();
            w.u64(seq);
            file.add_writer(WAL_WATERMARK_SECTION, w);
        }
        file.write_file(path)
    }

    /// Restore-on-start: rebuilds a driver from a
    /// [`IncrementalDriver::checkpoint`] file. The host supplies the same
    /// annotator and trained models it bootstrapped with (they are not
    /// checkpointed — see `giant_incr::ckpt`); the serving frame resumes
    /// at its checkpointed version and answers immediately, and the next
    /// [`IncrementalDriver::ingest`] folds on warm caches.
    ///
    /// Checkpoint-on-publish is **re-armed to the same `path`** —
    /// durability must survive the restart it exists for, so a restored
    /// driver keeps persisting every ingest unless the host explicitly
    /// disables it with [`IncrementalDriver::set_checkpoint_path`]`(None)`.
    pub fn restore(
        path: &Path,
        annotator: Annotator,
        models: GiantModels,
        keep_frames: usize,
    ) -> Result<Self, FileError> {
        let file = SectionFile::read_file(path)?;
        let state = Checkpoint::from_sections(&file)?.restore(annotator, models);
        let service = OntologyService::restore_sections(&file)?;
        Ok(Self {
            state,
            service: Arc::new(service),
            keep_frames: keep_frames.max(1),
            checkpoint_path: Some(path.to_path_buf()),
            durability: None,
            schema: None,
        })
    }

    /// Crash recovery for a durable driver: loads `state.ckpt`, replays
    /// the WAL tail (every entry past the checkpoint's watermark) through
    /// the normal fold+publish path, then re-checkpoints and rotates so
    /// the recovered process starts from a clean epoch.
    ///
    /// Replay reproduces the exact fold sequence the crashed process ran,
    /// so the restored ontology, serving frames and version numbers are
    /// byte-identical with a process that never crashed (the
    /// `tests/crash_consistency.rs` contract). The host supplies the same
    /// annotator and trained models as the original run.
    pub fn restore_durable(
        cfg: DurabilityConfig,
        annotator: Annotator,
        models: GiantModels,
        keep_frames: usize,
    ) -> Result<(Self, RestoreReport), RestoreError> {
        let _restore_span = giant_obs::span("restore");
        let file = SectionFile::read_file(&cfg.checkpoint_path())?;
        let state = Checkpoint::from_sections(&file)
            .map_err(FileError::from)?
            .restore(annotator, models);
        let service = OntologyService::restore_sections(&file).map_err(FileError::from)?;
        let watermark = match file.section(WAL_WATERMARK_SECTION) {
            Ok(mut r) => r.u64().map_err(FileError::from)?,
            Err(_) => 0,
        };
        // Lenient open: a torn tail is the expected crash artifact and a
        // corrupt suffix cannot be trusted anyway — recovery resumes at
        // the last valid entry and the drop is surfaced in the report.
        let (wal, entries, truncation) = Wal::recover(&cfg.wal_path(), cfg.sync)?;
        let mut driver = Self {
            state,
            service: Arc::new(service),
            keep_frames: keep_frames.max(1),
            checkpoint_path: None,
            durability: Some(Durability {
                cfg,
                wal,
                folds_since_checkpoint: 0,
            }),
            schema: None,
        };
        let mut replayed = 0;
        for entry in entries {
            if entry.seq <= watermark {
                continue;
            }
            let replay_span = giant_obs::span("restore.replay");
            driver
                .replay_one(entry.batch)
                .map_err(|source| RestoreError::Replay {
                    seq: entry.seq,
                    source,
                })?;
            drop(replay_span);
            replayed += 1;
        }
        // Distinct from `wal.replayed` (entries *decoded* from the log):
        // this counts entries actually folded past the watermark.
        giant_obs::registry().counter("ingest.replayed").add(replayed as u64);
        if replayed > 0 {
            driver.checkpoint_and_rotate().map_err(RestoreError::Persist)?;
        }
        Ok((driver, RestoreReport { replayed, truncation }))
    }

    /// One replayed WAL entry: the fold+publish half of
    /// [`IncrementalDriver::ingest`], **without** re-appending to the log
    /// (the entry is already there) and without per-entry checkpoints.
    fn replay_one(&mut self, batch: DeltaBatch) -> Result<(), FoldError> {
        let report = self.state.fold(batch)?;
        let resources = refresh_resources(&self.service.resources(), &report.output);
        let snapshot = OntologySnapshot::freeze(self.state.ontology());
        self.service.publish(snapshot, resources);
        self.service.retain_last(self.keep_frames);
        Ok(())
    }

    /// The serving endpoint (shared: clone the `Arc` into reader threads).
    pub fn service(&self) -> &Arc<OntologyService> {
        &self.service
    }

    /// The folding state (accumulated input, live ontology, caches).
    pub fn state(&self) -> &IncrementalState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Driver behaviour over a real world is covered by
    // `tests/apps_integration.rs` (facade level — building the initial
    // resources needs the corpus-trained models the adapter assembles);
    // here we only pin the metadata derivation's shape on an empty
    // product.
    #[test]
    fn mined_metadata_of_empty_output_is_empty() {
        let output = GiantOutput {
            ontology: giant_ontology::Ontology::new(),
            mined: Vec::new(),
            category_nodes: HashMap::new(),
            entity_nodes: HashMap::new(),
            rejected_edges: 0,
            alias_conflicts: 0,
            timings: Default::default(),
            cache_stats: Default::default(),
        };
        let meta = mined_metadata(&output);
        assert!(meta.concept_contexts.is_empty());
        assert!(meta.event_phrases.is_empty());
        assert!(meta.stories.is_empty());
        assert_eq!(meta.min_concept_support, 0.0);
    }
}

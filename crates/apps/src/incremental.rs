//! The incremental serving driver: the end-to-end "log stream in, fresh
//! versioned answers out" loop.
//!
//! [`IncrementalDriver`] ties `giant-incr`'s folding to the versioned
//! [`OntologyService`]: each [`IncrementalDriver::ingest`] folds one
//! [`DeltaBatch`] (dirty-cluster re-mining + [`giant_ontology::OntologyDelta`]
//! application), freezes the updated live ontology into an
//! [`giant_ontology::OntologySnapshot`], refreshes the serving metadata
//! from the fold's mining product, publishes the new frame, and prunes the
//! frame history down to a bounded depth through
//! [`OntologyService::retain_last`] — all while readers keep answering
//! lock-free from whatever frame they hold.
//!
//! Model resources (the SGNS phrase encoder, TF-IDF, Duet matcher) are
//! trained offline and carried across publishes by `Arc`; what refreshes
//! per version is the *mined metadata*: concept contexts, event/topic
//! phrases, the concept support floor, and the story-event set
//! ([`mined_metadata`] — also the single derivation `giant::adapter`'s
//! batch `build_serving` uses, so batch and incremental serving can never
//! drift apart).

use crate::serving::{OntologyService, ServeResources};
use crate::storytree::StoryEvent;
use crate::tagging::{TagResources, TaggingConfig};
use giant_core::pipeline::GiantOutput;
use giant_core::train::GiantModels;
use giant_incr::{Checkpoint, DeltaBatch, FoldError, IncrementalState};
use giant_ontology::binio::{FileError, SectionFile};
use giant_ontology::{DeltaStats, NodeId, NodeKind, OntologySnapshot};
use giant_text::Annotator;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Serving metadata derived from one pipeline product.
#[derive(Debug)]
pub struct MinedMetadata {
    /// Concept node → context-enriched tokens (phrase + top clicked
    /// titles).
    pub concept_contexts: HashMap<NodeId, Vec<String>>,
    /// Event/topic phrases to match during tagging.
    pub event_phrases: Vec<(NodeId, Vec<String>)>,
    /// Support floor separating noise concepts (half the median mined
    /// concept support).
    pub min_concept_support: f64,
    /// The mined events as story-tree inputs, in mining order.
    pub stories: Vec<StoryEvent>,
}

/// Derives the per-version serving metadata from a pipeline product. The
/// single implementation behind both the batch `build_serving` assembly
/// and [`refresh_resources`].
pub fn mined_metadata(output: &GiantOutput) -> MinedMetadata {
    let mut concept_contexts: HashMap<NodeId, Vec<String>> = HashMap::new();
    for m in output.mined_of_kind(NodeKind::Concept) {
        let mut ctx = m.tokens.clone();
        for t in &m.top_titles {
            ctx.extend(giant_text::tokenize(t));
        }
        concept_contexts.insert(m.node, ctx);
    }
    let event_phrases: Vec<(NodeId, Vec<String>)> = output
        .mined
        .iter()
        .filter(|m| matches!(m.kind, NodeKind::Event | NodeKind::Topic))
        .map(|m| (m.node, m.tokens.clone()))
        .collect();
    // Noise concepts come from single odd clusters and carry little click
    // mass; half the median support separates them from the real ones
    // without assuming any ground truth.
    let mut supports: Vec<f64> = output
        .mined_of_kind(NodeKind::Concept)
        .iter()
        .map(|m| m.support)
        .collect();
    supports.sort_by(|a, b| a.total_cmp(b));
    let min_concept_support = supports.get(supports.len() / 2).copied().unwrap_or(0.0) * 0.5;
    let stories = output
        .mined_of_kind(NodeKind::Event)
        .into_iter()
        .map(|m| StoryEvent {
            node: m.node,
            tokens: m.tokens.clone(),
            trigger: m.trigger.clone(),
            entities: m.entities.clone(),
            day: m.day.unwrap_or(0),
        })
        .collect();
    MinedMetadata {
        concept_contexts,
        event_phrases,
        min_concept_support,
        stories,
    }
}

/// A new [`ServeResources`] for `output`: trained model handles carried
/// over from `prev` by `Arc`, mined metadata re-derived from the fold.
pub fn refresh_resources(prev: &ServeResources, output: &GiantOutput) -> ServeResources {
    let meta = mined_metadata(output);
    ServeResources {
        tagging: TagResources {
            concept_contexts: meta.concept_contexts,
            event_phrases: meta.event_phrases,
            tfidf: Arc::clone(&prev.tagging.tfidf),
            duet: Arc::clone(&prev.tagging.duet),
            encoder: Arc::clone(&prev.tagging.encoder),
            vocab: Arc::clone(&prev.tagging.vocab),
            config: TaggingConfig {
                min_concept_support: meta.min_concept_support,
                ..prev.tagging.config
            },
        },
        stories: meta.stories,
        story_config: prev.story_config,
        match_aliases: prev.match_aliases,
        max_results: prev.max_results,
    }
}

/// What one [`IncrementalDriver::ingest`] did.
#[derive(Debug)]
pub struct IngestReport {
    /// The version the fold published.
    pub version: u64,
    /// Ontology change summary (nodes added/removed/updated, rewiring).
    pub delta: DeltaStats,
    /// Clusters re-mined by the fold.
    pub clusters_mined: usize,
    /// Clusters served from cache.
    pub clusters_reused: usize,
    /// Fold wall clock (ingest + rebuild + diff + apply).
    pub fold_secs: f64,
    /// Freeze + metadata refresh + publish wall clock.
    pub publish_secs: f64,
    /// Frames retained after pruning.
    pub retained_frames: usize,
    /// Checkpoint-on-publish wall clock, when a checkpoint path is set.
    pub checkpoint_secs: Option<f64>,
}

/// [`IncrementalDriver::ingest`] errors: the fold rejected the batch, or
/// the post-publish checkpoint write failed (the publish itself
/// succeeded — readers are already serving the new version).
#[derive(Debug)]
pub enum IngestError {
    /// Batch validation failed; the state and service are untouched.
    Fold(FoldError),
    /// The fold published, but checkpoint-on-publish could not write.
    Checkpoint(std::io::Error),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Fold(e) => write!(f, "fold rejected: {e}"),
            IngestError::Checkpoint(e) => write!(f, "checkpoint-on-publish failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<FoldError> for IngestError {
    fn from(e: FoldError) -> Self {
        IngestError::Fold(e)
    }
}

/// The end-to-end incremental serving loop. See the [module docs](self).
pub struct IncrementalDriver {
    state: IncrementalState,
    service: Arc<OntologyService>,
    keep_frames: usize,
    checkpoint_path: Option<PathBuf>,
}

impl IncrementalDriver {
    /// Bootstraps the loop: folds `initial` into a fresh `state`, derives
    /// the first frame's resources from the bootstrap product (taking the
    /// trained model handles from `base`), and publishes version 1.
    ///
    /// `keep_frames` bounds the service's frame history: after every
    /// publish the driver retains at most the newest `keep_frames` frames
    /// (in-flight readers keep older frames alive through their own
    /// `Arc`s, so pruning never invalidates an answer mid-request).
    pub fn bootstrap(
        mut state: IncrementalState,
        base: ServeResources,
        initial: DeltaBatch,
        keep_frames: usize,
    ) -> Result<(Self, IngestReport), FoldError> {
        let report = state.fold(initial)?;
        let t = Instant::now();
        let resources = refresh_resources(&base, &report.output);
        let snapshot = OntologySnapshot::freeze(state.ontology());
        let service = Arc::new(OntologyService::new(snapshot, resources));
        let publish_secs = t.elapsed().as_secs_f64();
        let driver = Self {
            state,
            service,
            keep_frames: keep_frames.max(1),
            checkpoint_path: None,
        };
        let ingest = IngestReport {
            version: driver.service.version(),
            delta: report.delta.stats(),
            clusters_mined: report.cache.clusters_mined,
            clusters_reused: report.cache.clusters_reused,
            fold_secs: report.secs,
            publish_secs,
            retained_frames: driver.service.n_retained(),
            checkpoint_secs: None,
        };
        Ok((driver, ingest))
    }

    /// Enables checkpoint-on-publish: after every successful
    /// [`IncrementalDriver::ingest`] publish, the driver writes a full
    /// checkpoint (folding state + serving frame) to `path`, atomically
    /// replacing the previous one — so a crash at any point leaves either
    /// the old or the new checkpoint, never a torn file. `None` disables.
    pub fn set_checkpoint_path(&mut self, path: Option<PathBuf>) {
        self.checkpoint_path = path;
    }

    /// Folds one batch and publishes the resulting ontology version; with
    /// a checkpoint path set, persists the post-publish state before
    /// returning.
    pub fn ingest(&mut self, batch: DeltaBatch) -> Result<IngestReport, IngestError> {
        let report = self.state.fold(batch)?;
        let t = Instant::now();
        let resources = refresh_resources(&self.service.resources(), &report.output);
        let snapshot = OntologySnapshot::freeze(self.state.ontology());
        let version = self.service.publish(snapshot, resources);
        let retained_frames = self.service.retain_last(self.keep_frames);
        let publish_secs = t.elapsed().as_secs_f64();
        let checkpoint_secs = match self.checkpoint_path.clone() {
            Some(path) => {
                let t = Instant::now();
                self.checkpoint(&path).map_err(IngestError::Checkpoint)?;
                Some(t.elapsed().as_secs_f64())
            }
            None => None,
        };
        Ok(IngestReport {
            version,
            delta: report.delta.stats(),
            clusters_mined: report.cache.clusters_mined,
            clusters_reused: report.cache.clusters_reused,
            fold_secs: report.secs,
            publish_secs,
            retained_frames,
            checkpoint_secs,
        })
    }

    /// Writes one file carrying both halves of the loop: the folding
    /// state's `incr.*` sections (accumulated corpus, warm caches, live
    /// ontology) and the serving frame's `serve.*` sections (frozen
    /// snapshot + model resources + version). Serialises the state by
    /// reference — no transient deep clone, so checkpoint-on-publish adds
    /// write time but not peak memory to an ingest.
    pub fn checkpoint(&self, path: &Path) -> std::io::Result<()> {
        let mut file = SectionFile::new();
        Checkpoint::write_state_sections(&self.state, &mut file);
        self.service.checkpoint_sections(&mut file);
        file.write_file(path)
    }

    /// Restore-on-start: rebuilds a driver from a
    /// [`IncrementalDriver::checkpoint`] file. The host supplies the same
    /// annotator and trained models it bootstrapped with (they are not
    /// checkpointed — see `giant_incr::ckpt`); the serving frame resumes
    /// at its checkpointed version and answers immediately, and the next
    /// [`IncrementalDriver::ingest`] folds on warm caches.
    ///
    /// Checkpoint-on-publish is **re-armed to the same `path`** —
    /// durability must survive the restart it exists for, so a restored
    /// driver keeps persisting every ingest unless the host explicitly
    /// disables it with [`IncrementalDriver::set_checkpoint_path`]`(None)`.
    pub fn restore(
        path: &Path,
        annotator: Annotator,
        models: GiantModels,
        keep_frames: usize,
    ) -> Result<Self, FileError> {
        let file = SectionFile::read_file(path)?;
        let state = Checkpoint::from_sections(&file)?.restore(annotator, models);
        let service = OntologyService::restore_sections(&file)?;
        Ok(Self {
            state,
            service: Arc::new(service),
            keep_frames: keep_frames.max(1),
            checkpoint_path: Some(path.to_path_buf()),
        })
    }

    /// The serving endpoint (shared: clone the `Arc` into reader threads).
    pub fn service(&self) -> &Arc<OntologyService> {
        &self.service
    }

    /// The folding state (accumulated input, live ontology, caches).
    pub fn state(&self) -> &IncrementalState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Driver behaviour over a real world is covered by
    // `tests/apps_integration.rs` (facade level — building the initial
    // resources needs the corpus-trained models the adapter assembles);
    // here we only pin the metadata derivation's shape on an empty
    // product.
    #[test]
    fn mined_metadata_of_empty_output_is_empty() {
        let output = GiantOutput {
            ontology: giant_ontology::Ontology::new(),
            mined: Vec::new(),
            category_nodes: HashMap::new(),
            entity_nodes: HashMap::new(),
            rejected_edges: 0,
            alias_conflicts: 0,
            timings: Default::default(),
            cache_stats: Default::default(),
        };
        let meta = mined_metadata(&output);
        assert!(meta.concept_contexts.is_empty());
        assert!(meta.event_phrases.is_empty());
        assert!(meta.stories.is_empty());
        assert_eq!(meta.min_concept_support, 0.0);
    }
}

//! Story-tree formation (paper §4, Figure 5).
//!
//! "Constructing a story tree from an attention ontology involves four
//! steps: retrieving correlated events, calculating similarity matrix,
//! hierarchical clustering, and tree formation." Event similarity is
//! eq. (8)–(11): phrase-encoding cosine (`f_m`, BERT in the paper → SGNS
//! mean-pooling here, DESIGN.md S3), trigger-vector cosine (`f_g`) and
//! TF-IDF similarity of the entity sets (`f_e`).

use giant_ontology::{NodeId, OntologySnapshot};
use giant_text::embedding::PhraseEncoder;
use giant_text::{TfIdf, Vocab};
use std::collections::HashSet;

/// One event participating in a story.
#[derive(Debug, Clone)]
pub struct StoryEvent {
    /// Ontology node of the event.
    pub node: NodeId,
    /// Phrase tokens.
    pub tokens: Vec<String>,
    /// Trigger verb, when recognised.
    pub trigger: Option<String>,
    /// Involved entity nodes.
    pub entities: Vec<NodeId>,
    /// Day index.
    pub day: u32,
}

/// Similarity oracle implementing eq. (8)–(11).
pub struct EventSimilarity<'a> {
    /// Phrase encoder (the BERT substitute).
    pub encoder: &'a PhraseEncoder,
    /// Vocabulary the encoder was trained against.
    pub vocab: &'a Vocab,
    /// TF-IDF table for entity-set similarity.
    pub tfidf: &'a TfIdf,
    /// Frozen ontology for resolving entity phrases.
    pub snapshot: &'a OntologySnapshot,
}

impl EventSimilarity<'_> {
    fn encode(&self, tokens: &[String]) -> Vec<f32> {
        let ids: Vec<giant_text::TokenId> = tokens
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect();
        self.encoder.encode(&ids)
    }

    /// `s(e1, e2) = f_m + f_g + f_e` (eq. 8).
    pub fn similarity(&self, a: &StoryEvent, b: &StoryEvent) -> f64 {
        let f_m = giant_text::embedding::cosine(&self.encode(&a.tokens), &self.encode(&b.tokens))
            as f64;
        let f_g = match (&a.trigger, &b.trigger) {
            (Some(ta), Some(tb)) => {
                if ta == tb {
                    1.0
                } else {
                    match (self.vocab.get(ta), self.vocab.get(tb)) {
                        (Some(ia), Some(ib)) => {
                            f64::from(self.encoder.embeddings().cosine(ia, ib))
                        }
                        _ => 0.0,
                    }
                }
            }
            _ => 0.0,
        };
        let ents = |e: &StoryEvent| -> Vec<String> {
            e.entities
                .iter()
                .flat_map(|&n| self.snapshot.node(n).phrase.tokens.clone())
                .collect()
        };
        let ea = ents(a);
        let eb = ents(b);
        let f_e = self.tfidf.similarity(
            ea.iter().map(|s| s.as_str()),
            eb.iter().map(|s| s.as_str()),
        );
        f_m + f_g + f_e
    }
}

/// Story-tree parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoryTreeConfig {
    /// Agglomerative merge threshold on eq. (8) similarity (range ~[0, 3]).
    pub merge_threshold: f64,
}

impl Default for StoryTreeConfig {
    fn default() -> Self {
        Self {
            merge_threshold: 1.2,
        }
    }
}

/// The assembled story tree: time-ordered branches of coherent events.
#[derive(Debug, Clone)]
pub struct StoryTree {
    /// All events, sorted by day.
    pub events: Vec<StoryEvent>,
    /// Branches: each is a set of indices into `events`, internally
    /// day-ordered; branches are ordered by their earliest event.
    pub branches: Vec<Vec<usize>>,
}

impl StoryTree {
    /// ASCII rendering in the spirit of Figure 5.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (bi, branch) in self.branches.iter().enumerate() {
            out.push_str(&format!("branch {}:\n", bi + 1));
            for (step, &ei) in branch.iter().enumerate() {
                let e = &self.events[ei];
                let connector = if step == 0 { "├─" } else { "│  └─" };
                out.push_str(&format!(
                    "{connector} [day {:>2}] {}\n",
                    e.day,
                    e.tokens.join(" ")
                ));
            }
        }
        out
    }

    /// Total number of events.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }
}

/// Retrieves the events correlated with `seed`: sharing at least one entity,
/// or sharing the trigger ("the criteria to retrieve 'correlated' events can
/// be flexible").
pub fn retrieve_related<'a>(
    seed: &StoryEvent,
    pool: &'a [StoryEvent],
) -> Vec<&'a StoryEvent> {
    let seed_entities: HashSet<NodeId> = seed.entities.iter().copied().collect();
    pool.iter()
        .filter(|e| {
            e.node != seed.node
                && (e.entities.iter().any(|x| seed_entities.contains(x))
                    || (e.trigger.is_some() && e.trigger == seed.trigger))
        })
        .collect()
}

/// Builds the story tree around `seed` from its related events.
pub fn build_story_tree(
    seed: StoryEvent,
    related: Vec<StoryEvent>,
    sim: &EventSimilarity<'_>,
    cfg: &StoryTreeConfig,
) -> StoryTree {
    let mut events = vec![seed];
    events.extend(related);
    events.sort_by_key(|e| e.day);
    let n = events.len();
    // Similarity matrix.
    let mut s = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let v = sim.similarity(&events[i], &events[j]);
            s[i][j] = v;
            s[j][i] = v;
        }
    }
    // Average-linkage agglomerative clustering down to the threshold.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in a + 1..clusters.len() {
                let mut total = 0.0;
                let mut count: f64 = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        total += s[i][j];
                        count += 1.0;
                    }
                }
                let avg = total / count.max(1.0);
                if best.map(|(_, _, bs)| avg > bs).unwrap_or(true) {
                    best = Some((a, b, avg));
                }
            }
        }
        match best {
            Some((a, b, score)) if score >= cfg.merge_threshold => {
                let merged = clusters.remove(b);
                clusters[a].extend(merged);
            }
            _ => break,
        }
    }
    // "Order the events by time, and put the events in the same cluster into
    // the same branch."
    let mut branches: Vec<Vec<usize>> = clusters
        .into_iter()
        .map(|mut c| {
            c.sort_by_key(|&i| events[i].day);
            c
        })
        .collect();
    branches.sort_by_key(|b| b.first().map(|&i| events[i].day).unwrap_or(u32::MAX));
    StoryTree { events, branches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giant_ontology::{NodeKind, Ontology, Phrase};
    use giant_text::embedding::{SgnsConfig, WordEmbeddings};

    /// A miniature trade-war world: two coherent sub-stories.
    struct Fixture {
        snapshot: OntologySnapshot,
        vocab: Vocab,
        encoder: PhraseEncoder,
        tfidf: TfIdf,
        events: Vec<StoryEvent>,
    }

    fn fixture() -> Fixture {
        let mut ontology = Ontology::new();
        let mut vocab = Vocab::new();
        let usa = ontology.add_node(NodeKind::Entity, Phrase::from_text("usa"), 1.0);
        let china = ontology.add_node(NodeKind::Entity, Phrase::from_text("china"), 1.0);
        let band = ontology.add_node(NodeKind::Entity, Phrase::from_text("velora"), 1.0);
        let texts = [
            ("usa raises tariffs on china", Some("raises"), vec![usa, china], 2u32),
            ("china imposes tariffs on usa", Some("imposes"), vec![china, usa], 5),
            ("usa raises tariffs again", Some("raises"), vec![usa, china], 9),
            ("velora announces world tour", Some("announces"), vec![band], 3),
        ];
        // Train tiny embeddings on sentences echoing the two topics.
        let mut sents = Vec::new();
        for _ in 0..40 {
            sents.push(
                giant_text::tokenize("usa china tariffs trade war imposes raises")
                    .iter()
                    .map(|t| vocab.intern(t))
                    .collect::<Vec<_>>(),
            );
            sents.push(
                giant_text::tokenize("velora tour concert announces stage music")
                    .iter()
                    .map(|t| vocab.intern(t))
                    .collect::<Vec<_>>(),
            );
        }
        let emb = WordEmbeddings::train(&sents, vocab.len(), &SgnsConfig::default());
        let encoder = PhraseEncoder::new(emb);
        let mut tfidf = TfIdf::new();
        tfidf.add_doc(["usa", "china", "tariffs"]);
        tfidf.add_doc(["velora", "tour"]);
        let mut events = Vec::new();
        for (text, trig, ents, day) in texts {
            let node = ontology.add_event(Phrase::from_text(text), 1.0, day);
            events.push(StoryEvent {
                node,
                tokens: giant_text::tokenize(text),
                trigger: trig.map(|s| s.to_owned()),
                entities: ents,
                day,
            });
        }
        Fixture {
            snapshot: OntologySnapshot::freeze(&ontology),
            vocab,
            encoder,
            tfidf,
            events,
        }
    }

    #[test]
    fn retrieval_uses_shared_entities_or_trigger() {
        let f = fixture();
        let related = retrieve_related(&f.events[0], &f.events);
        let days: Vec<u32> = related.iter().map(|e| e.day).collect();
        assert!(days.contains(&5)); // shares usa/china
        assert!(days.contains(&9));
        assert!(!days.contains(&3)); // the concert shares nothing
    }

    #[test]
    fn tree_orders_events_by_time() {
        let f = fixture();
        let sim = EventSimilarity {
            encoder: &f.encoder,
            vocab: &f.vocab,
            tfidf: &f.tfidf,
            snapshot: &f.snapshot,
        };
        let related: Vec<StoryEvent> = retrieve_related(&f.events[0], &f.events)
            .into_iter()
            .cloned()
            .collect();
        let tree = build_story_tree(f.events[0].clone(), related, &sim, &StoryTreeConfig::default());
        assert_eq!(tree.n_events(), 3);
        let days: Vec<u32> = tree.events.iter().map(|e| e.day).collect();
        let mut sorted = days.clone();
        sorted.sort_unstable();
        assert_eq!(days, sorted);
        // Every event appears in exactly one branch.
        let mut seen: Vec<usize> = tree.branches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        // Rendering mentions each phrase.
        let txt = tree.render();
        assert!(txt.contains("raises tariffs"));
    }

    #[test]
    fn unrelated_event_lands_in_separate_branch() {
        let f = fixture();
        let sim = EventSimilarity {
            encoder: &f.encoder,
            vocab: &f.vocab,
            tfidf: &f.tfidf,
            snapshot: &f.snapshot,
        };
        // Force-build a tree over all four events.
        let tree = build_story_tree(
            f.events[0].clone(),
            f.events[1..].to_vec(),
            &sim,
            &StoryTreeConfig::default(),
        );
        // The concert event must not share a branch with a tariff event.
        let concert_idx = tree
            .events
            .iter()
            .position(|e| e.tokens.contains(&"tour".to_owned()))
            .unwrap();
        let branch_of_concert = tree
            .branches
            .iter()
            .find(|b| b.contains(&concert_idx))
            .unwrap();
        assert_eq!(branch_of_concert.len(), 1, "concert merged into trade war");
    }

    #[test]
    fn similarity_is_symmetric_and_higher_for_related() {
        let f = fixture();
        let sim = EventSimilarity {
            encoder: &f.encoder,
            vocab: &f.vocab,
            tfidf: &f.tfidf,
            snapshot: &f.snapshot,
        };
        let ab = sim.similarity(&f.events[0], &f.events[1]);
        let ba = sim.similarity(&f.events[1], &f.events[0]);
        assert!((ab - ba).abs() < 1e-9);
        let unrelated = sim.similarity(&f.events[0], &f.events[3]);
        assert!(ab > unrelated, "related {ab} vs unrelated {unrelated}");
    }
}

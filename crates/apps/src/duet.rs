//! Simplified Duet semantic matcher (Mitra et al. 2017; paper §4).
//!
//! The paper classifies whether an event/topic phrase matches a document
//! with "Duet-based semantic matching": a *local* channel over exact term
//! interactions and a *distributed* channel over learned representations.
//! This reproduction keeps both channels as feature extractors — local:
//! overlap/LCS/bigram statistics; distributed: embedding cosine — feeding a
//! small MLP trained with logistic loss (DESIGN.md S4: scale reduced, signal
//! structure preserved).

use giant_nn::{act, loss, Adam, Linear, Matrix};
use giant_text::embedding::PhraseEncoder;
use giant_text::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Number of match features.
pub const DUET_FEATURE_DIM: usize = 6;

/// Extracts the local + distributed match features for (phrase, text).
pub fn duet_features(
    phrase: &[String],
    text: &[String],
    encoder: &PhraseEncoder,
    vocab: &Vocab,
) -> Vec<f64> {
    // Local channel.
    let pset: HashSet<&str> = phrase.iter().map(|s| s.as_str()).collect();
    let tset: HashSet<&str> = text.iter().map(|s| s.as_str()).collect();
    let overlap = if pset.is_empty() {
        0.0
    } else {
        pset.intersection(&tset).count() as f64 / pset.len() as f64
    };
    let lcs = giant_text::lcs_len(phrase, text) as f64 / phrase.len().max(1) as f64;
    fn bigrams(xs: &[String]) -> HashSet<(&str, &str)> {
        xs.windows(2)
            .map(|w| (w[0].as_str(), w[1].as_str()))
            .collect()
    }
    let pb = bigrams(phrase);
    let tb = bigrams(text);
    let bigram_overlap = if pb.is_empty() {
        0.0
    } else {
        pb.intersection(&tb).count() as f64 / pb.len() as f64
    };
    // Distributed channel.
    let ids = |xs: &[String]| -> Vec<giant_text::TokenId> {
        xs.iter().filter_map(|t| vocab.get(t)).collect()
    };
    let cos = giant_text::embedding::cosine(
        &encoder.encode(&ids(phrase)),
        &encoder.encode(&ids(text)),
    ) as f64;
    let len_ratio = phrase.len() as f64 / text.len().max(1) as f64;
    let exact_span = f64::from(
        text.windows(phrase.len().max(1))
            .any(|w| w.iter().zip(phrase).all(|(a, b)| a == b)),
    );
    vec![overlap, lcs, bigram_overlap, cos, len_ratio.min(1.0), exact_span]
}

/// Duet MLP parameters.
#[derive(Debug, Clone, Copy)]
pub struct DuetConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for DuetConfig {
    fn default() -> Self {
        Self {
            hidden: 8,
            lr: 0.05,
            epochs: 60,
            seed: 3,
        }
    }
}

/// The trained matcher. (Layers are `pub(crate)` so `crate::ckpt` can
/// persist and restore the trained weights.)
#[derive(Debug)]
pub struct DuetMatcher {
    pub(crate) l1: Linear,
    pub(crate) l2: Linear,
}

impl DuetMatcher {
    /// Trains on `(features, is_match)` pairs.
    pub fn train(examples: &[(Vec<f64>, bool)], cfg: DuetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = Self {
            l1: Linear::new(DUET_FEATURE_DIM, cfg.hidden, &mut rng),
            l2: Linear::new(cfg.hidden, 1, &mut rng),
        };
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            for (f, y) in examples {
                let x = Matrix::from_vec(1, DUET_FEATURE_DIM, f.clone());
                let h_pre = model.l1.forward(&x);
                let h = act::relu(&h_pre);
                let logit = model.l2.forward(&h);
                let (_, dl) = loss::bce_with_logits(&logit, &[f64::from(*y)]);
                let dh = model.l2.backward(&dl);
                let dh_pre = act::relu_backward(&h_pre, &dh);
                let _ = model.l1.backward(&dh_pre);
                let mut params = model.l1.params_mut();
                params.extend(model.l2.params_mut());
                opt.step(&mut params);
            }
        }
        model
    }

    /// Match probability.
    pub fn score(&self, features: &[f64]) -> f64 {
        let x = Matrix::from_vec(1, DUET_FEATURE_DIM, features.to_vec());
        let h = act::relu(&self.l1.forward_inference(&x));
        let logit = self.l2.forward_inference(&h);
        act::sigmoid(logit.get(0, 0))
    }

    /// Hard decision at 0.5.
    pub fn matches(&self, features: &[f64]) -> bool {
        self.score(features) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giant_text::embedding::{SgnsConfig, WordEmbeddings};

    fn toks(s: &str) -> Vec<String> {
        giant_text::tokenize(s)
    }

    fn encoder_fixture() -> (Vocab, PhraseEncoder) {
        let mut vocab = Vocab::new();
        let sents: Vec<Vec<giant_text::TokenId>> = (0..30)
            .map(|_| {
                toks("quanta corp launches lineup market reacts strongly")
                    .iter()
                    .map(|t| vocab.intern(t))
                    .collect()
            })
            .collect();
        let emb = WordEmbeddings::train(&sents, vocab.len(), &SgnsConfig::default());
        (vocab, PhraseEncoder::new(emb))
    }

    #[test]
    fn features_separate_match_from_mismatch() {
        let (vocab, enc) = encoder_fixture();
        let phrase = toks("quanta corp launches lineup");
        let pos = duet_features(&phrase, &toks("breaking quanta corp launches lineup today"), &enc, &vocab);
        let neg = duet_features(&phrase, &toks("completely different text about nothing"), &enc, &vocab);
        assert_eq!(pos.len(), DUET_FEATURE_DIM);
        assert!(pos[0] > neg[0]); // overlap
        assert!(pos[1] > neg[1]); // lcs
        assert!(pos[5] > neg[5]); // exact span
    }

    #[test]
    fn matcher_learns_threshold() {
        let mut examples = Vec::new();
        for i in 0..30 {
            let x = i as f64 / 30.0;
            examples.push((vec![0.9, 0.9, 0.8, 0.7 + 0.1 * x, 0.5, 1.0], true));
            examples.push((vec![0.1 * x, 0.1, 0.0, 0.1, 0.3, 0.0], false));
        }
        let m = DuetMatcher::train(&examples, DuetConfig::default());
        assert!(m.matches(&[0.9, 0.9, 0.8, 0.75, 0.5, 1.0]));
        assert!(!m.matches(&[0.05, 0.1, 0.0, 0.1, 0.3, 0.0]));
        let hi = m.score(&[1.0, 1.0, 1.0, 0.9, 0.5, 1.0]);
        let lo = m.score(&[0.0, 0.0, 0.0, 0.0, 0.3, 0.0]);
        assert!(hi > lo);
    }

    #[test]
    fn empty_phrase_is_safe() {
        let (vocab, enc) = encoder_fixture();
        let f = duet_features(&[], &toks("some text"), &enc, &vocab);
        assert_eq!(f.len(), DUET_FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}

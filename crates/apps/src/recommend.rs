//! News-feed recommendation simulator (paper §5.4, Figures 6–7).
//!
//! Substitution note (DESIGN.md S7): the paper ran a month-long A/B test on
//! Tencent QQ Browser. We simulate the same measurement: users and articles
//! are tagged with Attention Ontology nodes; a content-based recommender
//! matches them through shared tags; the *click decision* comes from a
//! ground-truth user model over the synthetic world (users follow topical
//! stories and like concepts). The paper's claims are relative — adding
//! concept/event/topic tags lifts CTR, and per-kind CTR orders
//! topic > event > entity > concept > category — and those orderings emerge
//! here from the interest structure, not from hard-coded CTR constants:
//! topic tags reach *fresh follow-up* events, event tags reach the same
//! story but grow stale, entity/concept tags reach narrower or more diffuse
//! material, category tags mostly reach irrelevant same-domain documents.

use giant_data::{Corpus, DocSource, World};
use giant_ontology::{NodeId, NodeKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// One document as the recommender sees it.
#[derive(Debug, Clone)]
pub struct SimDoc {
    /// Corpus doc id.
    pub id: usize,
    /// Publication day.
    pub day: u32,
    /// Ontology tags with their kinds (from the document tagger).
    pub tags: Vec<(NodeId, NodeKind)>,
}

/// Which tag kinds the recommender may match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagStrategy {
    /// Traditional recommender: category + entity tags only (Figure 6 red).
    CategoryEntity,
    /// Full Attention Ontology tags (Figure 6 blue).
    AllTags,
    /// A single-kind recommendation channel (Figure 7 measures the CTR of
    /// "the recommendations given by different types of tags").
    Only(NodeKind),
}

impl TagStrategy {
    /// True when this strategy may match on `kind`.
    pub fn allows(self, kind: NodeKind) -> bool {
        match self {
            TagStrategy::CategoryEntity => {
                matches!(kind, NodeKind::Category | NodeKind::Entity)
            }
            TagStrategy::AllTags => true,
            TagStrategy::Only(k) => kind == k,
        }
    }
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct FeedSimConfig {
    /// Simulated user count.
    pub n_users: usize,
    /// Recommendations per user per day.
    pub slate_size: usize,
    /// Topics each user follows.
    pub topics_per_user: usize,
    /// Concepts each user likes.
    pub concepts_per_user: usize,
    /// Documents stay recommendable for this many days.
    pub recency_window: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FeedSimConfig {
    fn default() -> Self {
        Self {
            n_users: 200,
            slate_size: 8,
            topics_per_user: 2,
            concepts_per_user: 2,
            recency_window: 2,
            seed: 97,
        }
    }
}

/// Daily CTR series.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// CTR per day (percent).
    pub daily_ctr: Vec<f64>,
    /// Mean over days with impressions (percent).
    pub avg_ctr: f64,
    /// Total impressions.
    pub impressions: u64,
}

/// Daily CTR per tag kind (indexed by `NodeKind::index()`).
#[derive(Debug, Clone)]
pub struct KindSeries {
    /// Per-kind daily CTR (percent; NaN-free, 0 when no impressions).
    pub daily: [Vec<f64>; 5],
    /// Per-kind mean CTR over days with impressions (percent).
    pub avg: [f64; 5],
}

#[derive(Debug, Clone)]
struct SimUser {
    followed_topics: HashSet<usize>,
    liked_concepts: HashSet<usize>,
    liked_entities: HashSet<usize>,
    domains: HashSet<usize>,
    profile: HashSet<NodeId>,
}

fn build_users(world: &World, cfg: &FeedSimConfig, rng: &mut StdRng) -> Vec<SimUser> {
    let mut users = Vec::with_capacity(cfg.n_users);
    for _ in 0..cfg.n_users {
        let mut followed_topics = HashSet::new();
        let mut liked_concepts = HashSet::new();
        let mut domains = HashSet::new();
        for _ in 0..cfg.topics_per_user.min(world.topics.len()) {
            let t = rng.random_range(0..world.topics.len());
            followed_topics.insert(t);
            domains.insert(world.topics[t].domain);
        }
        for _ in 0..cfg.concepts_per_user.min(world.concepts.len()) {
            let c = rng.random_range(0..world.concepts.len());
            liked_concepts.insert(c);
            domains.insert(world.concepts[c].domain);
        }
        let liked_entities: HashSet<usize> = liked_concepts
            .iter()
            .flat_map(|&c| world.concepts[c].members.iter().copied())
            .collect();
        users.push(SimUser {
            followed_topics,
            liked_concepts,
            liked_entities,
            domains,
            profile: HashSet::new(),
        });
    }
    users
}

/// Ground-truth click probability: how interesting `doc` truly is to `user`
/// on `day`. Independent of the recommender under test.
fn click_probability(
    world: &World,
    corpus: &Corpus,
    user: &SimUser,
    doc_id: usize,
    day: u32,
) -> f64 {
    let doc = &corpus.docs[doc_id];
    match doc.source {
        DocSource::Event(e) => {
            let ev = &world.events[e];
            if user.followed_topics.contains(&ev.topic) {
                // Fresh follow-ups are compelling; stale reruns are not.
                if day.saturating_sub(doc.day) <= 2 {
                    0.38
                } else {
                    0.14
                }
            } else if user.domains.contains(&doc.domain) {
                0.07
            } else {
                0.02
            }
        }
        DocSource::Entity(ent) => {
            if user.liked_entities.contains(&ent) {
                0.22
            } else if user.domains.contains(&doc.domain) {
                0.07
            } else {
                0.03
            }
        }
        DocSource::Concept(c) => {
            if user.liked_concepts.contains(&c) {
                0.18
            } else if user.domains.contains(&doc.domain) {
                0.07
            } else {
                0.03
            }
        }
    }
}

/// Seeds each user's profile with the tags of documents genuinely relevant
/// to them ("integrate different nodes to user profiles… based on his/her
/// historical viewing behavior").
fn build_profiles(
    world: &World,
    corpus: &Corpus,
    docs: &[SimDoc],
    users: &mut [SimUser],
    strategy: TagStrategy,
) {
    for user in users.iter_mut() {
        for d in docs {
            // "Viewed historically" = genuinely relevant at generation time.
            let p = click_probability(world, corpus, user, d.id, d.day);
            if p < 0.15 {
                continue;
            }
            for (tag, kind) in &d.tags {
                if strategy.allows(*kind) {
                    user.profile.insert(*tag);
                }
            }
        }
    }
}

/// Runs the simulation with one strategy, returning the daily CTR series.
pub fn simulate_feed(
    world: &World,
    corpus: &Corpus,
    docs: &[SimDoc],
    cfg: &FeedSimConfig,
    strategy: TagStrategy,
) -> SimResult {
    let n_days = world.config.n_days;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut users = build_users(world, cfg, &mut rng);
    build_profiles(world, corpus, docs, &mut users, strategy);

    let mut daily_imp = vec![0u64; n_days as usize];
    let mut daily_clicks = vec![0u64; n_days as usize];

    for day in 0..n_days {
        // Recommendable documents.
        let fresh: Vec<&SimDoc> = docs
            .iter()
            .filter(|d| d.day <= day && day - d.day <= cfg.recency_window)
            .collect();
        if fresh.is_empty() {
            continue;
        }
        for user in &users {
            // Score = count of shared allowed tags.
            let mut scored: Vec<(usize, &SimDoc)> = Vec::new();
            for d in &fresh {
                let score = d
                    .tags
                    .iter()
                    .filter(|(tag, kind)| strategy.allows(*kind) && user.profile.contains(tag))
                    .count();
                if score > 0 {
                    scored.push((score, d));
                }
            }
            scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.id.cmp(&b.1.id)));
            for (_, d) in scored.into_iter().take(cfg.slate_size) {
                let p = click_probability(world, corpus, user, d.id, day);
                daily_imp[day as usize] += 1;
                if rng.random::<f64>() < p {
                    daily_clicks[day as usize] += 1;
                }
            }
        }
    }

    let daily_ctr: Vec<f64> = daily_imp
        .iter()
        .zip(&daily_clicks)
        .map(|(&i, &c)| if i == 0 { 0.0 } else { 100.0 * c as f64 / i as f64 })
        .collect();
    let active: Vec<f64> = daily_imp
        .iter()
        .zip(&daily_ctr)
        .filter(|(&i, _)| i > 0)
        .map(|(_, &c)| c)
        .collect();
    let avg_ctr = if active.is_empty() {
        0.0
    } else {
        active.iter().sum::<f64>() / active.len() as f64
    };
    SimResult {
        daily_ctr,
        avg_ctr,
        impressions: daily_imp.iter().sum(),
    }
}

/// Runs one single-kind recommendation channel per tag kind (Figure 7).
pub fn simulate_by_kind(
    world: &World,
    corpus: &Corpus,
    docs: &[SimDoc],
    cfg: &FeedSimConfig,
) -> KindSeries {
    let mut daily: [Vec<f64>; 5] = Default::default();
    let mut avg = [0.0f64; 5];
    for kind in NodeKind::ALL {
        let r = simulate_feed(world, corpus, docs, cfg, TagStrategy::Only(kind));
        daily[kind.index()] = r.daily_ctr;
        avg[kind.index()] = r.avg_ctr;
    }
    KindSeries { daily, avg }
}

/// Ground-truth tags for a document (used by tests and as the upper-bound
/// tagging oracle in ablations): its category chain, mentioned entities,
/// source concept/event, and the event's topic.
pub fn ground_truth_tags(
    world: &World,
    corpus: &Corpus,
    node_of: &dyn Fn(NodeKind, usize) -> NodeId,
) -> Vec<SimDoc> {
    corpus
        .docs
        .iter()
        .map(|d| {
            let mut tags = vec![
                (node_of(NodeKind::Category, d.leaf_category), NodeKind::Category),
                (node_of(NodeKind::Category, d.sub_category), NodeKind::Category),
            ];
            for &e in &d.mentioned_entities {
                tags.push((node_of(NodeKind::Entity, e), NodeKind::Entity));
            }
            match d.source {
                DocSource::Concept(c) => tags.push((node_of(NodeKind::Concept, c), NodeKind::Concept)),
                DocSource::Entity(e) => {
                    for &c in &world.entities[e].concepts {
                        tags.push((node_of(NodeKind::Concept, c), NodeKind::Concept));
                    }
                }
                DocSource::Event(e) => {
                    tags.push((node_of(NodeKind::Event, e), NodeKind::Event));
                    tags.push((node_of(NodeKind::Topic, world.events[e].topic), NodeKind::Topic));
                }
            }
            SimDoc {
                id: d.id,
                day: d.day,
                tags,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use giant_data::{generate_corpus, CorpusConfig, WorldConfig};

    fn node_of(kind: NodeKind, id: usize) -> NodeId {
        // Disjoint id spaces per kind for the oracle tagging.
        NodeId((kind.index() * 100_000 + id) as u32)
    }

    fn setup() -> (World, Corpus, Vec<SimDoc>) {
        let world = World::generate(WorldConfig::default());
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        let docs = ground_truth_tags(&world, &corpus, &node_of);
        (world, corpus, docs)
    }

    #[test]
    fn all_tags_beats_category_entity() {
        let (world, corpus, docs) = setup();
        let cfg = FeedSimConfig::default();
        let all = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::AllTags);
        let base = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::CategoryEntity);
        assert!(all.impressions > 0 && base.impressions > 0);
        assert!(
            all.avg_ctr > base.avg_ctr,
            "AllTags {:.2}% must beat CategoryEntity {:.2}%",
            all.avg_ctr,
            base.avg_ctr
        );
    }

    #[test]
    fn per_kind_ordering_matches_figure7() {
        let (world, corpus, docs) = setup();
        let cfg = FeedSimConfig::default();
        let kinds = simulate_by_kind(&world, &corpus, &docs, &cfg);
        let topic = kinds.avg[NodeKind::Topic.index()];
        let event = kinds.avg[NodeKind::Event.index()];
        let entity = kinds.avg[NodeKind::Entity.index()];
        let category = kinds.avg[NodeKind::Category.index()];
        assert!(topic > entity, "topic {topic} vs entity {entity}");
        assert!(event > entity, "event {event} vs entity {entity}");
        assert!(entity > category, "entity {entity} vs category {category}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let (world, corpus, docs) = setup();
        let cfg = FeedSimConfig {
            n_users: 50,
            ..FeedSimConfig::default()
        };
        let a = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::AllTags);
        let b = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::AllTags);
        assert_eq!(a.daily_ctr, b.daily_ctr);
        assert_eq!(a.impressions, b.impressions);
    }

    #[test]
    fn strategy_filter_is_enforced() {
        assert!(TagStrategy::CategoryEntity.allows(NodeKind::Category));
        assert!(TagStrategy::CategoryEntity.allows(NodeKind::Entity));
        assert!(!TagStrategy::CategoryEntity.allows(NodeKind::Topic));
        assert!(!TagStrategy::CategoryEntity.allows(NodeKind::Concept));
        assert!(TagStrategy::AllTags.allows(NodeKind::Topic));
    }

    #[test]
    fn daily_series_has_one_point_per_day() {
        let (world, corpus, docs) = setup();
        let cfg = FeedSimConfig {
            n_users: 30,
            ..FeedSimConfig::default()
        };
        let r = simulate_feed(&world, &corpus, &docs, &cfg, TagStrategy::AllTags);
        let kinds = simulate_by_kind(&world, &corpus, &docs, &cfg);
        assert_eq!(r.daily_ctr.len(), world.config.n_days as usize);
        for k in &kinds.daily {
            assert_eq!(k.len(), world.config.n_days as usize);
        }
    }
}

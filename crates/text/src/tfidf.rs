//! TF-IDF vectors and cosine similarity over sparse term maps.
//!
//! GIANT uses TF-IDF similarity in several places: phrase normalization
//! compares *context-enriched representations* (the phrase plus its top-5
//! clicked titles, §3.1); document tagging scores concept/document coherence
//! (§4); story-tree formation compares event entity sets (eq. 11).

use std::collections::HashMap;

/// Sparse vector cosine similarity.
///
/// Accumulation runs in sorted key order: float addition is
/// order-sensitive, and `HashMap`'s per-instance random iteration order
/// would make the same inputs produce answers differing in the last ulp
/// from call to call — which the serving layer's byte-identical-responses
/// guarantee cannot tolerate. The vectors here are short (titles, phrase
/// contexts, entity sets), so the sort is noise.
pub fn cosine_sparse(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    fn sorted(m: &HashMap<String, f64>) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = m.iter().map(|(k, x)| (k.as_str(), *x)).collect();
        v.sort_unstable_by(|x, y| x.0.cmp(y.0));
        v
    }
    let sa = sorted(a);
    let sb = sorted(b);
    // Iterate the smaller side, in key order, probing the larger map.
    let (small, large) = if a.len() <= b.len() { (&sa, b) } else { (&sb, a) };
    let dot: f64 = small
        .iter()
        .filter_map(|(k, va)| large.get(*k).map(|vb| va * vb))
        .sum();
    let norm = |v: &[(&str, f64)]| -> f64 { v.iter().map(|(_, x)| x * x).sum::<f64>().sqrt() };
    let na = norm(&sa);
    let nb = norm(&sb);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Document-frequency table with smoothed IDF.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    df: HashMap<String, u32>,
    n_docs: u32,
}

impl TfIdf {
    /// An empty table (IDF falls back to the uniform smoothing value).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document's tokens to the document-frequency counts.
    pub fn add_doc<'a, I: IntoIterator<Item = &'a str>>(&mut self, tokens: I) {
        self.n_docs += 1;
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for t in tokens {
            if seen.insert(t, ()).is_none() {
                *self.df.entry(t.to_owned()).or_insert(0) += 1;
            }
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Every `(term, document frequency)` pair, sorted by term — the
    /// checkpoint serialisation view (sorted so the same table always
    /// serialises to the same bytes).
    pub fn doc_frequencies(&self) -> Vec<(&str, u32)> {
        let mut out: Vec<(&str, u32)> =
            self.df.iter().map(|(t, &c)| (t.as_str(), c)).collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Rebuilds a table from serialized parts (checkpoint restore) —
    /// exact: IDF depends only on the df map and the doc count, both
    /// carried through verbatim.
    pub fn from_parts(df: impl IntoIterator<Item = (String, u32)>, n_docs: u32) -> Self {
        Self {
            df: df.into_iter().collect(),
            n_docs,
        }
    }

    /// Smoothed inverse document frequency: `ln(1 + N / (1 + df))`.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.df.get(term).copied().unwrap_or(0) as f64;
        (1.0 + self.n_docs as f64 / (1.0 + df)).ln()
    }

    /// TF-IDF vector for a token multiset.
    pub fn vector<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        let mut total = 0.0f64;
        for t in tokens {
            *tf.entry(t.to_owned()).or_insert(0.0) += 1.0;
            total += 1.0;
        }
        if total == 0.0 {
            return tf;
        }
        for (term, v) in tf.iter_mut() {
            *v = (*v / total) * self.idf(term);
        }
        tf
    }

    /// TF-IDF cosine similarity of two token multisets.
    pub fn similarity<'a, I, J>(&self, a: I, b: J) -> f64
    where
        I: IntoIterator<Item = &'a str>,
        J: IntoIterator<Item = &'a str>,
    {
        cosine_sparse(&self.vector(a), &self.vector(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TfIdf {
        let mut t = TfIdf::new();
        t.add_doc(["the", "trade", "war", "begins"]);
        t.add_doc(["the", "trade", "deal", "signed"]);
        t.add_doc(["the", "concert", "tour", "announced"]);
        t
    }

    #[test]
    fn idf_orders_by_rarity() {
        let t = table();
        assert!(t.idf("concert") > t.idf("trade"));
        assert!(t.idf("trade") > t.idf("the"));
        // Unseen terms get the highest idf.
        assert!(t.idf("zebra") >= t.idf("concert"));
    }

    #[test]
    fn similarity_prefers_shared_rare_terms() {
        let t = table();
        let s_related = t.similarity(
            ["trade", "war", "tariffs"],
            ["trade", "war", "escalates"],
        );
        let s_unrelated = t.similarity(["trade", "war"], ["concert", "tour"]);
        assert!(s_related > s_unrelated);
        assert!(s_related > 0.0);
        assert_eq!(s_unrelated, 0.0);
    }

    #[test]
    fn self_similarity_is_one() {
        let t = table();
        let s = t.similarity(["trade", "war", "begins"], ["trade", "war", "begins"]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let t = table();
        assert_eq!(t.similarity([], ["a"]), 0.0);
        assert_eq!(cosine_sparse(&HashMap::new(), &HashMap::new()), 0.0);
    }

    #[test]
    fn duplicate_tokens_count_once_for_df() {
        let mut t = TfIdf::new();
        t.add_doc(["a", "a", "a"]);
        t.add_doc(["a", "b"]);
        // df("a") must be 2 (documents), not 4 (occurrences).
        assert!(t.idf("a") < t.idf("b"));
    }
}

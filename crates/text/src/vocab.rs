//! String interning: maps token strings to dense ids and back.
//!
//! Every other subsystem (click graph, QTIG, neural feature builders) works
//! with [`TokenId`]s so that hot paths compare integers, not strings.

use std::collections::HashMap;

/// Dense identifier for an interned token string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional token string <-> [`TokenId`] map.
///
/// Ids are assigned densely in first-seen order, which keeps downstream
/// embedding tables compact.
#[derive(Debug, Default, Clone)]
pub struct Vocab {
    by_str: HashMap<String, TokenId>,
    by_id: Vec<String>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> TokenId {
        if let Some(&id) = self.by_str.get(s) {
            return id;
        }
        let id = TokenId(self.by_id.len() as u32);
        self.by_id.push(s.to_owned());
        self.by_str.insert(s.to_owned(), id);
        id
    }

    /// Looks up an already-interned token.
    pub fn get(&self, s: &str) -> Option<TokenId> {
        self.by_str.get(s).copied()
    }

    /// Returns the string for `id`. Panics if `id` was not produced by this
    /// vocabulary.
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.by_id[id.index()]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Interns every token in `tokens`, returning the id sequence.
    pub fn intern_all<'a, I: IntoIterator<Item = &'a str>>(&mut self, tokens: I) -> Vec<TokenId> {
        tokens.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Iterates `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (TokenId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("honda");
        let b = v.intern("civic");
        let a2 = v.intern("honda");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut v = Vocab::new();
        for word in ["alpha", "beta", "gamma"] {
            let id = v.intern(word);
            assert_eq!(v.resolve(id), word);
            assert_eq!(v.get(word), Some(id));
        }
        assert_eq!(v.get("delta"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocab::new();
        let ids = v.intern_all(["a", "b", "c"]);
        assert_eq!(ids, vec![TokenId(0), TokenId(1), TokenId(2)]);
        let collected: Vec<&str> = v.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_vocab_reports_empty() {
        let v = Vocab::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}

//! Part-of-speech tagging.
//!
//! Two taggers are provided:
//!
//! * [`Lexicon`] — a deterministic dictionary tagger with suffix heuristics
//!   for unknown words. The synthetic world ships a complete lexicon, so this
//!   is the default annotator used by the pipeline.
//! * [`HmmTagger`] — a first-order hidden Markov model trained from a tagged
//!   corpus and decoded with Viterbi. It exists so the substrate exercises a
//!   *trainable* tagger exactly like the production stack, and to double-check
//!   the lexicon tags on held-out text (tested against the lexicon in unit
//!   tests).

use std::collections::HashMap;

/// Coarse part-of-speech tag set (Universal-Dependencies-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (entity names).
    ProperNoun,
    /// Verb (including event triggers such as "announces").
    Verb,
    /// Adjective.
    Adjective,
    /// Adverb.
    Adverb,
    /// Determiner / article.
    Determiner,
    /// Pronoun.
    Pronoun,
    /// Preposition.
    Preposition,
    /// Conjunction.
    Conjunction,
    /// Numeral.
    Numeral,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl PosTag {
    /// Every tag, in a stable order (used to size embedding tables).
    pub const ALL: [PosTag; 12] = [
        PosTag::Noun,
        PosTag::ProperNoun,
        PosTag::Verb,
        PosTag::Adjective,
        PosTag::Adverb,
        PosTag::Determiner,
        PosTag::Pronoun,
        PosTag::Preposition,
        PosTag::Conjunction,
        PosTag::Numeral,
        PosTag::Punct,
        PosTag::Other,
    ];

    /// Stable dense index of the tag.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|t| *t == self).expect("tag in ALL")
    }

    /// True for noun-like tags (heads of noun phrases).
    pub fn is_nominal(self) -> bool {
        matches!(self, PosTag::Noun | PosTag::ProperNoun | PosTag::Pronoun)
    }
}

/// Dictionary part-of-speech tagger with closed-class defaults and suffix
/// heuristics for unknown words.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    entries: HashMap<String, PosTag>,
}

impl Lexicon {
    /// An empty lexicon (falls back entirely to heuristics).
    pub fn new() -> Self {
        Self::default()
    }

    /// A lexicon pre-seeded with English closed-class words; open-class words
    /// should be added by the corpus generator via [`Lexicon::insert`].
    pub fn with_closed_class() -> Self {
        let mut lx = Self::new();
        for w in ["a", "an", "the", "this", "that", "these", "those"] {
            lx.insert(w, PosTag::Determiner);
        }
        for w in ["i", "you", "he", "she", "it", "we", "they", "who", "what", "which"] {
            lx.insert(w, PosTag::Pronoun);
        }
        for w in [
            "of", "in", "on", "at", "to", "for", "with", "by", "from", "about", "into", "as",
        ] {
            lx.insert(w, PosTag::Preposition);
        }
        for w in ["and", "or", "but", "if", "than", "then", "so"] {
            lx.insert(w, PosTag::Conjunction);
        }
        for w in [
            "is", "are", "was", "were", "be", "been", "am", "do", "does", "did", "have", "has",
            "had", "will", "would", "can", "could", "should", "may", "might", "must",
        ] {
            lx.insert(w, PosTag::Verb);
        }
        for w in ["very", "most", "quite", "officially", "reportedly", "newly"] {
            lx.insert(w, PosTag::Adverb);
        }
        lx
    }

    /// Registers the tag of `word` (lowercased key, last writer wins).
    pub fn insert(&mut self, word: &str, tag: PosTag) {
        self.entries.insert(word.to_lowercase(), tag);
    }

    /// Looks up a word without applying heuristics.
    pub fn lookup(&self, word: &str) -> Option<PosTag> {
        self.entries.get(word).copied()
    }

    /// Tags one token: dictionary first, then shape/suffix heuristics.
    pub fn tag(&self, word: &str) -> PosTag {
        if crate::tokenize::is_punct(word) {
            return PosTag::Punct;
        }
        if let Some(t) = self.lookup(word) {
            return t;
        }
        if word.chars().all(|c| c.is_ascii_digit()) {
            return PosTag::Numeral;
        }
        // Suffix heuristics for unknown open-class words.
        if word.ends_with("ly") {
            PosTag::Adverb
        } else if word.ends_with("ing") || word.ends_with("ed") || word.ends_with("izes") {
            PosTag::Verb
        } else if word.ends_with("ous") || word.ends_with("ful") || word.ends_with("ive") {
            PosTag::Adjective
        } else {
            PosTag::Noun
        }
    }

    /// Tags a token sequence.
    pub fn tag_all(&self, tokens: &[String]) -> Vec<PosTag> {
        tokens.iter().map(|t| self.tag(t)).collect()
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// First-order HMM part-of-speech tagger with add-one smoothing, decoded with
/// Viterbi in log space.
#[derive(Debug, Clone)]
pub struct HmmTagger {
    /// transition[i][j] = log P(tag_j | tag_i); row `n_tags` is the start state.
    transition: Vec<Vec<f64>>,
    /// emission\[tag\]\[word\] = log P(word | tag).
    emission: Vec<HashMap<String, f64>>,
    /// log-probability for unseen (tag, word) pairs, per tag.
    unk: Vec<f64>,
}

impl HmmTagger {
    /// Trains from `(tokens, tags)` pairs.
    pub fn train(corpus: &[(Vec<String>, Vec<PosTag>)]) -> Self {
        let n = PosTag::ALL.len();
        let mut trans = vec![vec![1.0f64; n]; n + 1]; // add-one
        let mut emit_counts: Vec<HashMap<String, f64>> = vec![HashMap::new(); n];
        let mut tag_totals = vec![0.0f64; n];
        for (tokens, tags) in corpus {
            assert_eq!(tokens.len(), tags.len(), "token/tag length mismatch");
            let mut prev = n; // start state
            for (tok, tag) in tokens.iter().zip(tags) {
                let ti = tag.index();
                trans[prev][ti] += 1.0;
                *emit_counts[ti].entry(tok.clone()).or_insert(0.0) += 1.0;
                tag_totals[ti] += 1.0;
                prev = ti;
            }
        }
        let transition = trans
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.into_iter().map(|c| (c / total).ln()).collect()
            })
            .collect();
        // Smooth emissions with the *global* vocabulary size so that tags
        // unseen in training do not get probability 1 for unknown words.
        let global_vocab: std::collections::HashSet<&String> =
            emit_counts.iter().flat_map(|m| m.keys()).collect();
        let vocab_size = global_vocab.len() as f64 + 1.0;
        drop(global_vocab);
        let mut emission = Vec::with_capacity(n);
        let mut unk = Vec::with_capacity(n);
        for (ti, counts) in emit_counts.into_iter().enumerate() {
            let denom = tag_totals[ti] + vocab_size;
            let probs = counts
                .into_iter()
                .map(|(w, c)| (w, ((c + 1.0) / denom).ln()))
                .collect();
            emission.push(probs);
            unk.push((1.0 / denom).ln());
        }
        Self {
            transition,
            emission,
            unk,
        }
    }

    fn emit(&self, tag: usize, word: &str) -> f64 {
        self.emission[tag].get(word).copied().unwrap_or(self.unk[tag])
    }

    /// Viterbi-decodes the most likely tag sequence for `tokens`.
    pub fn tag_all(&self, tokens: &[String]) -> Vec<PosTag> {
        let n = PosTag::ALL.len();
        if tokens.is_empty() {
            return Vec::new();
        }
        let t_len = tokens.len();
        let mut score = vec![vec![f64::NEG_INFINITY; n]; t_len];
        let mut back = vec![vec![0usize; n]; t_len];
        for (j, s) in score[0].iter_mut().enumerate() {
            *s = self.transition[n][j] + self.emit(j, &tokens[0]);
        }
        for t in 1..t_len {
            for j in 0..n {
                let e = self.emit(j, &tokens[t]);
                let (bi, bs) = (0..n)
                    .map(|i| (i, score[t - 1][i] + self.transition[i][j]))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("n > 0");
                score[t][j] = bs + e;
                back[t][j] = bi;
            }
        }
        let mut best = (0..n)
            .max_by(|&a, &b| score[t_len - 1][a].total_cmp(&score[t_len - 1][b]))
            .expect("n > 0");
        let mut tags = vec![PosTag::ALL[best]; t_len];
        for t in (1..t_len).rev() {
            best = back[t][best];
            tags[t - 1] = PosTag::ALL[best];
        }
        tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize::tokenize(s)
    }

    #[test]
    fn tag_indices_are_dense() {
        for (i, t) in PosTag::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn lexicon_closed_class() {
        let lx = Lexicon::with_closed_class();
        assert_eq!(lx.tag("the"), PosTag::Determiner);
        assert_eq!(lx.tag("of"), PosTag::Preposition);
        assert_eq!(lx.tag("is"), PosTag::Verb);
        assert_eq!(lx.tag(","), PosTag::Punct);
        assert_eq!(lx.tag("2018"), PosTag::Numeral);
    }

    #[test]
    fn lexicon_suffix_heuristics() {
        let lx = Lexicon::with_closed_class();
        assert_eq!(lx.tag("quickly"), PosTag::Adverb);
        assert_eq!(lx.tag("running"), PosTag::Verb);
        assert_eq!(lx.tag("famous"), PosTag::Adjective);
        assert_eq!(lx.tag("car"), PosTag::Noun);
    }

    #[test]
    fn lexicon_entries_override_heuristics() {
        let mut lx = Lexicon::with_closed_class();
        lx.insert("running", PosTag::Noun);
        assert_eq!(lx.tag("running"), PosTag::Noun);
    }

    #[test]
    fn hmm_learns_simple_patterns() {
        // Tiny corpus: "the N V" patterns.
        let corpus = vec![
            (
                toks("the dog runs"),
                vec![PosTag::Determiner, PosTag::Noun, PosTag::Verb],
            ),
            (
                toks("the cat sleeps"),
                vec![PosTag::Determiner, PosTag::Noun, PosTag::Verb],
            ),
            (
                toks("a dog sleeps"),
                vec![PosTag::Determiner, PosTag::Noun, PosTag::Verb],
            ),
        ];
        let hmm = HmmTagger::train(&corpus);
        let tags = hmm.tag_all(&toks("the dog sleeps"));
        assert_eq!(tags, vec![PosTag::Determiner, PosTag::Noun, PosTag::Verb]);
        // Unknown word in noun position should still be tagged Noun thanks to
        // the learned transition Determiner -> Noun.
        let tags = hmm.tag_all(&toks("the zebra runs"));
        assert_eq!(tags[1], PosTag::Noun);
    }

    #[test]
    fn hmm_empty_input() {
        let hmm = HmmTagger::train(&[(toks("a dog"), vec![PosTag::Determiner, PosTag::Noun])]);
        assert!(hmm.tag_all(&[]).is_empty());
    }
}

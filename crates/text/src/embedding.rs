//! Skip-gram-with-negative-sampling (SGNS) word embeddings.
//!
//! Substitution note (DESIGN.md S3): the paper encodes event phrases with
//! BERT (eq. 9) and triggers with directional skip-gram vectors (eq. 10).
//! Both serve purely as *similarity oracles*. We train classic SGNS on the
//! synthetic corpus, which provides the same property — words from the same
//! topic/context end up close — while staying dependency-free and exactly
//! reproducible from a seed.

use crate::vocab::TokenId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SGNS training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Symmetric context window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 10%).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 3,
            negative: 4,
            epochs: 5,
            lr: 0.05,
            seed: 7,
        }
    }
}

/// Trained word vectors, indexed by [`TokenId`].
#[derive(Debug, Clone)]
pub struct WordEmbeddings {
    dim: usize,
    /// Input ("center") vectors, row per token; these are the embeddings.
    vectors: Vec<f32>,
    vocab_size: usize,
}

impl WordEmbeddings {
    /// Trains SGNS on sentences of token ids drawn from a vocabulary of
    /// `vocab_size` tokens.
    pub fn train(sentences: &[Vec<TokenId>], vocab_size: usize, cfg: &SgnsConfig) -> Self {
        let dim = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 0.5 / dim as f32;
        let mut input: Vec<f32> = (0..vocab_size * dim)
            .map(|_| (rng.random::<f32>() - 0.5) * scale * 2.0)
            .collect();
        let mut output = vec![0.0f32; vocab_size * dim];

        // Unigram^0.75 negative-sampling table.
        let mut counts = vec![0u64; vocab_size];
        for s in sentences {
            for &t in s {
                if t.index() < vocab_size {
                    counts[t.index()] += 1;
                }
            }
        }
        let table = build_sampling_table(&counts);
        if table.is_empty() {
            return Self {
                dim,
                vectors: input,
                vocab_size,
            };
        }

        let total_steps = (cfg.epochs * sentences.len()).max(1);
        let mut step = 0usize;
        let mut grad = vec![0.0f32; dim];
        for epoch in 0..cfg.epochs {
            let _ = epoch;
            for sent in sentences {
                step += 1;
                let progress = step as f32 / total_steps as f32;
                let lr = cfg.lr * (1.0 - 0.9 * progress);
                for (ci, &center) in sent.iter().enumerate() {
                    let c = center.index();
                    if c >= vocab_size {
                        continue;
                    }
                    let lo = ci.saturating_sub(cfg.window);
                    let hi = (ci + cfg.window + 1).min(sent.len());
                    for (wi, &ctx) in sent.iter().enumerate().take(hi).skip(lo) {
                        if wi == ci || ctx.index() >= vocab_size {
                            continue;
                        }
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair.
                        sgd_pair(
                            &mut input[c * dim..(c + 1) * dim],
                            &mut output[ctx.index() * dim..(ctx.index() + 1) * dim],
                            1.0,
                            lr,
                            &mut grad,
                        );
                        // Negative samples.
                        for _ in 0..cfg.negative {
                            let neg = table[rng.random_range(0..table.len())];
                            if neg == ctx.index() {
                                continue;
                            }
                            sgd_pair(
                                &mut input[c * dim..(c + 1) * dim],
                                &mut output[neg * dim..(neg + 1) * dim],
                                0.0,
                                lr,
                                &mut grad,
                            );
                        }
                        let row = &mut input[c * dim..(c + 1) * dim];
                        for (v, g) in row.iter_mut().zip(&grad) {
                            *v += g;
                        }
                    }
                }
            }
        }
        Self {
            dim,
            vectors: input,
            vocab_size,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw row-major vector table (`vocab_size × dim`) — the
    /// checkpoint serialisation view.
    pub fn raw_vectors(&self) -> &[f32] {
        &self.vectors
    }

    /// Rebuilds trained embeddings from serialized parts (checkpoint
    /// restore). `vectors` is row-major, one `dim`-wide row per token.
    pub fn from_parts(dim: usize, vocab_size: usize, vectors: Vec<f32>) -> Self {
        assert_eq!(vectors.len(), dim * vocab_size, "vector table shape mismatch");
        Self {
            dim,
            vectors,
            vocab_size,
        }
    }

    /// Number of rows.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The vector for a token (zeros for out-of-range ids).
    pub fn vector(&self, id: TokenId) -> &[f32] {
        let i = id.index();
        if i < self.vocab_size {
            &self.vectors[i * self.dim..(i + 1) * self.dim]
        } else {
            &[]
        }
    }

    /// Cosine similarity between two token vectors.
    pub fn cosine(&self, a: TokenId, b: TokenId) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }
}

/// Accumulates the SGD update for one (center, context, label) triple.
/// `grad` receives the center-vector gradient; the context row is updated in
/// place (word2vec's usual asymmetric update order).
fn sgd_pair(center: &mut [f32], context: &mut [f32], label: f32, lr: f32, grad: &mut [f32]) {
    let dot: f32 = center.iter().zip(context.iter()).map(|(a, b)| a * b).sum();
    let pred = 1.0 / (1.0 + (-dot).exp());
    let g = (label - pred) * lr;
    for i in 0..center.len() {
        grad[i] += g * context[i];
        context[i] += g * center[i];
    }
}

fn build_sampling_table(counts: &[u64]) -> Vec<usize> {
    const TABLE_SIZE: usize = 1 << 14;
    let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return Vec::new();
    }
    let mut table = Vec::with_capacity(TABLE_SIZE);
    for (i, w) in weights.iter().enumerate() {
        let n = ((w / total) * TABLE_SIZE as f64).round() as usize;
        table.extend(std::iter::repeat_n(i, n.max(usize::from(*w > 0.0))));
    }
    table
}

/// Cosine similarity of two dense vectors (0 when either is empty/zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    if a.is_empty() || b.is_empty() || a.len() != b.len() {
        return 0.0;
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Mean-pools word vectors into a phrase vector (the BERT substitute).
#[derive(Debug, Clone)]
pub struct PhraseEncoder {
    emb: WordEmbeddings,
}

impl PhraseEncoder {
    /// Wraps trained embeddings.
    pub fn new(emb: WordEmbeddings) -> Self {
        Self { emb }
    }

    /// Borrow the underlying word embeddings.
    pub fn embeddings(&self) -> &WordEmbeddings {
        &self.emb
    }

    /// Mean of the known token vectors, L2-normalized; zeros when no token is
    /// known.
    pub fn encode(&self, ids: &[TokenId]) -> Vec<f32> {
        let dim = self.emb.dim();
        let mut acc = vec![0.0f32; dim];
        let mut n = 0usize;
        for &id in ids {
            let v = self.emb.vector(id);
            if v.is_empty() {
                continue;
            }
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
            n += 1;
        }
        if n == 0 {
            return acc;
        }
        let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for a in acc.iter_mut() {
                *a /= norm;
            }
        }
        acc
    }

    /// Cosine similarity of two phrases.
    pub fn phrase_similarity(&self, a: &[TokenId], b: &[TokenId]) -> f32 {
        cosine(&self.encode(a), &self.encode(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    /// Corpus with two cleanly separated topics; SGNS must place same-topic
    /// words closer than cross-topic words.
    fn topic_corpus() -> (Vocab, Vec<Vec<TokenId>>) {
        let mut v = Vocab::new();
        let mut sents = Vec::new();
        let topic_a = ["trade", "war", "tariffs", "imports", "exports"];
        let topic_b = ["concert", "singer", "album", "tour", "stage"];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let topic = if rng.random::<bool>() { &topic_a } else { &topic_b };
            let mut s = Vec::new();
            for _ in 0..6 {
                let w = topic[rng.random_range(0..topic.len())];
                s.push(v.intern(w));
            }
            sents.push(s);
        }
        (v, sents)
    }

    #[test]
    fn sgns_separates_topics() {
        let (v, sents) = topic_corpus();
        let emb = WordEmbeddings::train(&sents, v.len(), &SgnsConfig::default());
        let trade = v.get("trade").unwrap();
        let tariffs = v.get("tariffs").unwrap();
        let concert = v.get("concert").unwrap();
        let tour = v.get("tour").unwrap();
        assert!(
            emb.cosine(trade, tariffs) > emb.cosine(trade, concert),
            "same-topic words should be closer: {} vs {}",
            emb.cosine(trade, tariffs),
            emb.cosine(trade, concert)
        );
        assert!(emb.cosine(concert, tour) > emb.cosine(tariffs, tour));
    }

    #[test]
    fn training_is_deterministic() {
        let (v, sents) = topic_corpus();
        let cfg = SgnsConfig {
            epochs: 2,
            ..SgnsConfig::default()
        };
        let e1 = WordEmbeddings::train(&sents, v.len(), &cfg);
        let e2 = WordEmbeddings::train(&sents, v.len(), &cfg);
        let a = v.get("trade").unwrap();
        assert_eq!(e1.vector(a), e2.vector(a));
    }

    #[test]
    fn phrase_encoder_mean_pooling() {
        let (v, sents) = topic_corpus();
        let emb = WordEmbeddings::train(&sents, v.len(), &SgnsConfig::default());
        let enc = PhraseEncoder::new(emb);
        let p1 = [v.get("trade").unwrap(), v.get("war").unwrap()];
        let p2 = [v.get("tariffs").unwrap(), v.get("imports").unwrap()];
        let p3 = [v.get("concert").unwrap(), v.get("tour").unwrap()];
        assert!(enc.phrase_similarity(&p1, &p2) > enc.phrase_similarity(&p1, &p3));
        // Encoded phrases are unit length (or zero).
        let e = enc.encode(&p1);
        let norm: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unknown_tokens_encode_to_zero() {
        let (v, sents) = topic_corpus();
        let emb = WordEmbeddings::train(&sents, v.len(), &SgnsConfig::default());
        let enc = PhraseEncoder::new(emb);
        let e = enc.encode(&[TokenId(9999)]);
        assert!(e.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[], &[]), 0.0);
        assert_eq!(cosine(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_corpus_trains_without_panic() {
        let emb = WordEmbeddings::train(&[], 4, &SgnsConfig::default());
        assert_eq!(emb.vocab_size(), 4);
    }
}

//! Sequence and set similarity primitives.
//!
//! * [`lcs_len`] — longest common subsequence length, used by event/topic
//!   document tagging ("LCS-based textural matching", §4) and by the
//!   query–title alignment candidate extractor.
//! * [`jaccard`] — token-set overlap, used by phrase normalization heuristics.
//! * [`edit_distance`] — Levenshtein distance, used for near-duplicate
//!   detection in the synthetic data generator and tests.

use std::collections::HashSet;

/// Longest-common-subsequence length between two sequences.
pub fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Rolling single-row DP: O(|a|*|b|) time, O(|b|) space.
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Jaccard similarity of two token sets.
pub fn jaccard<'a, I, J>(a: I, b: J) -> f64
where
    I: IntoIterator<Item = &'a str>,
    J: IntoIterator<Item = &'a str>,
{
    let sa: HashSet<&str> = a.into_iter().collect();
    let sb: HashSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Levenshtein edit distance over characters.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.is_empty() {
        return bc.len();
    }
    if bc.is_empty() {
        return ac.len();
    }
    let mut prev: Vec<usize> = (0..=bc.len()).collect();
    let mut cur = vec![0usize; bc.len() + 1];
    for (i, ca) in ac.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in bc.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bc.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basic() {
        let a = ["trade", "war", "begins"];
        let b = ["the", "trade", "war", "officially", "begins"];
        assert_eq!(lcs_len(&a, &b), 3);
        assert_eq!(lcs_len::<&str>(&[], &b), 0);
        assert_eq!(lcs_len(&a, &a), 3);
    }

    #[test]
    fn lcs_no_overlap() {
        assert_eq!(lcs_len(&["a", "b"], &["c", "d"]), 0);
    }

    #[test]
    fn jaccard_basic() {
        assert!((jaccard(["a", "b"], ["b", "c"]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(["a"], ["a"]), 1.0);
        assert_eq!(jaccard::<_, [&str; 0]>(["a"], []), 0.0);
        assert_eq!(jaccard::<[&str; 0], [&str; 0]>([], []), 1.0);
    }

    #[test]
    fn edit_distance_basic() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
    }

    #[test]
    fn edit_distance_symmetry() {
        for (a, b) in [("honda", "hond"), ("civic", "civil"), ("x", "yz")] {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
        }
    }
}

//! Deterministic rule-based dependency parsing.
//!
//! The Query-Title Interaction Graph (paper §3.1, Figure 3) connects
//! non-adjacent tokens with *typed syntactic dependency edges* such as
//! `compound:nn`, `amod` and `dobj`. The production system used a statistical
//! parser; here a deterministic head-finding parser supplies the same edge
//! types. Because the R-GCN learns relation-specific weights from whatever
//! annotation it is given, consistency matters more than linguistic
//! perfection — and a rule parser is perfectly consistent between training
//! and inference.

use crate::pos::PosTag;

/// Dependency relation labels emitted by [`DependencyParser`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepRel {
    /// Noun compound (`compound:nn`): "miyazaki film".
    Compound,
    /// Adjectival modifier: "famous film".
    Amod,
    /// Adverbial modifier: "officially released".
    Advmod,
    /// Direct object of the clause's verb.
    Dobj,
    /// Nominal subject of the clause's verb.
    Nsubj,
    /// Determiner: "the film".
    Det,
    /// Numeric modifier: "5 films".
    Num,
    /// Preposition attached to its governor.
    Prep,
    /// Object of a preposition.
    Pobj,
    /// Conjoined verb or coordinator.
    Conj,
    /// Punctuation.
    Punct,
    /// Fallback attachment.
    Dep,
}

impl DepRel {
    /// Every relation in stable order (used for R-GCN relation indexing).
    pub const ALL: [DepRel; 12] = [
        DepRel::Compound,
        DepRel::Amod,
        DepRel::Advmod,
        DepRel::Dobj,
        DepRel::Nsubj,
        DepRel::Det,
        DepRel::Num,
        DepRel::Prep,
        DepRel::Pobj,
        DepRel::Conj,
        DepRel::Punct,
        DepRel::Dep,
    ];

    /// Stable dense index of the relation.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|r| *r == self).expect("rel in ALL")
    }
}

/// One dependency arc: `head --rel--> dependent` (indices into the token
/// sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepArc {
    /// Index of the governing token.
    pub head: usize,
    /// Index of the dependent token.
    pub dep: usize,
    /// Typed relation.
    pub rel: DepRel,
}

/// Rule-based dependency parser over POS-tagged tokens.
#[derive(Debug, Clone, Copy, Default)]
pub struct DependencyParser;

impl DependencyParser {
    /// Creates the parser (stateless).
    pub fn new() -> Self {
        Self
    }

    /// Parses a POS-tagged sentence into arcs. Every token except the root
    /// receives exactly one head; the root is the first main verb, else the
    /// last nominal token, else token 0.
    pub fn parse(&self, tags: &[PosTag]) -> Vec<DepArc> {
        let n = tags.len();
        if n == 0 {
            return Vec::new();
        }
        let root = Self::find_root(tags);
        let mut head: Vec<Option<(usize, DepRel)>> = vec![None; n];

        // 1. Noun phrases: maximal runs of NP-internal tags; internal tokens
        //    attach to the NP head (the last nominal in the run).
        let mut np_head_of = vec![usize::MAX; n]; // NP head index per token, if in an NP
        let mut i = 0;
        while i < n {
            if Self::np_internal(tags[i]) {
                let mut j = i;
                while j + 1 < n && Self::np_internal(tags[j + 1]) {
                    j += 1;
                }
                let h = (i..=j)
                    .rev()
                    .find(|&k| tags[k].is_nominal())
                    .unwrap_or(j);
                for k in i..=j {
                    np_head_of[k] = h;
                    if k == h {
                        continue;
                    }
                    let rel = match tags[k] {
                        PosTag::Determiner => DepRel::Det,
                        PosTag::Numeral => DepRel::Num,
                        PosTag::Adjective => DepRel::Amod,
                        t if t.is_nominal() => DepRel::Compound,
                        _ => DepRel::Dep,
                    };
                    head[k] = Some((h, rel));
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }

        // 2. Attach NP heads: preposition governs the following NP head
        //    (pobj); otherwise subject/object relative to the root verb.
        for h in 0..n {
            if np_head_of[h] != h || h == root {
                continue;
            }
            // Find the nearest non-punct token before the NP start.
            let np_start = (0..=h).rev().take_while(|&k| np_head_of[k] == h).last().unwrap_or(h);
            let prev = (0..np_start).rev().find(|&k| tags[k] != PosTag::Punct);
            if let Some(p) = prev {
                if tags[p] == PosTag::Preposition {
                    head[h] = Some((p, DepRel::Pobj));
                    continue;
                }
            }
            if tags[root] == PosTag::Verb {
                let rel = if h < root { DepRel::Nsubj } else { DepRel::Dobj };
                head[h] = Some((root, rel));
            } else {
                head[h] = Some((root, DepRel::Dep));
            }
        }

        // 3. Remaining tokens.
        for k in 0..n {
            if k == root || head[k].is_some() {
                continue;
            }
            let attach = match tags[k] {
                PosTag::Punct => (root, DepRel::Punct),
                PosTag::Adverb => (Self::nearest_verb(tags, k).unwrap_or(root), DepRel::Advmod),
                PosTag::Preposition => (
                    Self::nearest_governor_left(tags, k).unwrap_or(root),
                    DepRel::Prep,
                ),
                PosTag::Verb => (root, DepRel::Conj),
                PosTag::Conjunction => (root, DepRel::Conj),
                _ => (root, DepRel::Dep),
            };
            if attach.0 != k {
                head[k] = Some(attach);
            } else {
                head[k] = Some((root, DepRel::Dep));
            }
        }

        head.iter()
            .enumerate()
            .filter(|(k, _)| *k != root)
            .filter_map(|(k, h)| h.map(|(hd, rel)| DepArc { head: hd, dep: k, rel }))
            .collect()
    }

    fn np_internal(tag: PosTag) -> bool {
        matches!(
            tag,
            PosTag::Determiner | PosTag::Numeral | PosTag::Adjective
        ) || tag.is_nominal()
    }

    fn find_root(tags: &[PosTag]) -> usize {
        if let Some(v) = tags.iter().position(|&t| t == PosTag::Verb) {
            return v;
        }
        if let Some(nn) = (0..tags.len()).rev().find(|&k| tags[k].is_nominal()) {
            return nn;
        }
        0
    }

    fn nearest_verb(tags: &[PosTag], k: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &t) in tags.iter().enumerate() {
            if t == PosTag::Verb {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        if i.abs_diff(k) < b.abs_diff(k) {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        best
    }

    fn nearest_governor_left(tags: &[PosTag], k: usize) -> Option<usize> {
        (0..k)
            .rev()
            .find(|&i| tags[i] == PosTag::Verb || tags[i].is_nominal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::Lexicon;

    fn parse(sentence: &str, lx: &Lexicon) -> (Vec<String>, Vec<DepArc>) {
        let toks = crate::tokenize::tokenize(sentence);
        let tags = lx.tag_all(&toks);
        let arcs = DependencyParser::new().parse(&tags);
        (toks, arcs)
    }

    fn lexicon() -> Lexicon {
        let mut lx = Lexicon::with_closed_class();
        for w in ["miyazaki", "film", "dog", "bone", "civic", "car"] {
            lx.insert(w, PosTag::Noun);
        }
        lx.insert("famous", PosTag::Adjective);
        lx.insert("eats", PosTag::Verb);
        lx
    }

    fn has_arc(arcs: &[DepArc], toks: &[String], head: &str, dep: &str, rel: DepRel) -> bool {
        arcs.iter().any(|a| {
            toks[a.head] == head && toks[a.dep] == dep && a.rel == rel
        })
    }

    #[test]
    fn compound_and_amod() {
        let lx = lexicon();
        let (toks, arcs) = parse("the famous miyazaki film", &lx);
        assert!(has_arc(&arcs, &toks, "film", "the", DepRel::Det));
        assert!(has_arc(&arcs, &toks, "film", "famous", DepRel::Amod));
        assert!(has_arc(&arcs, &toks, "film", "miyazaki", DepRel::Compound));
    }

    #[test]
    fn subject_and_object() {
        let lx = lexicon();
        let (toks, arcs) = parse("the dog eats a bone", &lx);
        assert!(has_arc(&arcs, &toks, "eats", "dog", DepRel::Nsubj));
        assert!(has_arc(&arcs, &toks, "eats", "bone", DepRel::Dobj));
    }

    #[test]
    fn every_non_root_token_has_one_head() {
        let lx = lexicon();
        let (toks, arcs) = parse("the famous dog eats a bone in 2018 .", &lx);
        // n tokens, 1 root => n-1 arcs, all dependents distinct.
        assert_eq!(arcs.len(), toks.len() - 1);
        let mut deps: Vec<usize> = arcs.iter().map(|a| a.dep).collect();
        deps.sort_unstable();
        deps.dedup();
        assert_eq!(deps.len(), toks.len() - 1);
    }

    #[test]
    fn no_self_loops() {
        let lx = lexicon();
        let (_, arcs) = parse("famous famous famous", &lx);
        assert!(arcs.iter().all(|a| a.head != a.dep));
    }

    #[test]
    fn empty_input() {
        assert!(DependencyParser::new().parse(&[]).is_empty());
    }

    #[test]
    fn rel_indices_dense() {
        for (i, r) in DepRel::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}

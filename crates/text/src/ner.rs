//! Named-entity tagging via gazetteer with longest-match multiword lookup.
//!
//! The Attention Ontology's event nodes carry entity/time/location attributes,
//! and QTIG node features include each token's NER tag. The synthetic world
//! knows its entities, so a gazetteer (dictionary of surface forms → tag) is a
//! faithful and deterministic stand-in for a learned NER model. Time
//! expressions (years, month names, dates) are recognised by rule.

use std::collections::HashMap;

/// Named-entity tag set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NerTag {
    /// Not an entity.
    None,
    /// A person.
    Person,
    /// An organization / company / team.
    Organization,
    /// A geographic location.
    Location,
    /// A product (cars, phones, games…).
    Product,
    /// A creative work (film, series, song…).
    Work,
    /// A time expression.
    Time,
}

impl NerTag {
    /// Every tag in stable order.
    pub const ALL: [NerTag; 7] = [
        NerTag::None,
        NerTag::Person,
        NerTag::Organization,
        NerTag::Location,
        NerTag::Product,
        NerTag::Work,
        NerTag::Time,
    ];

    /// Stable dense index.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|t| *t == self).expect("tag in ALL")
    }

    /// True for any tag other than [`NerTag::None`].
    pub fn is_entity(self) -> bool {
        self != NerTag::None
    }
}

const MONTHS: &[&str] = &[
    "january", "february", "march", "april", "may", "june", "july", "august",
    "september", "october", "november", "december",
];

/// Dictionary of entity surface forms, with greedy longest-match tagging.
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    /// Multiword entries keyed by their first token; values are
    /// `(remaining tokens, tag)` sorted by decreasing length at build time.
    entries: HashMap<String, Vec<(Vec<String>, NerTag)>>,
    len: usize,
}

impl Gazetteer {
    /// An empty gazetteer (only time rules will fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a (possibly multiword) surface form.
    pub fn insert(&mut self, surface: &str, tag: NerTag) {
        let toks = crate::tokenize::tokenize(surface);
        if toks.is_empty() {
            return;
        }
        let first = toks[0].clone();
        let rest: Vec<String> = toks[1..].to_vec();
        let bucket = self.entries.entry(first).or_default();
        bucket.push((rest, tag));
        // Longest continuation first so lookup is greedy.
        bucket.sort_by_key(|entry| std::cmp::Reverse(entry.0.len()));
        self.len += 1;
    }

    /// Number of registered surface forms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn time_rule(tok: &str) -> bool {
        (tok.len() == 4 && tok.chars().all(|c| c.is_ascii_digit()))
            || MONTHS.contains(&tok)
            || tok == "today"
            || tok == "yesterday"
            || tok == "tomorrow"
    }

    /// Tags a lowercased token sequence. Multiword entities receive the same
    /// tag on every covered token (the QTIG works per token, not per span).
    pub fn tag_all(&self, tokens: &[String]) -> Vec<NerTag> {
        let mut tags = vec![NerTag::None; tokens.len()];
        let mut i = 0;
        while i < tokens.len() {
            let tok = tokens[i].as_str();
            let mut matched = 0usize;
            if let Some(bucket) = self.entries.get(tok) {
                for (rest, tag) in bucket {
                    let end = i + 1 + rest.len();
                    if end <= tokens.len()
                        && rest.iter().zip(&tokens[i + 1..end]).all(|(a, b)| a == b)
                    {
                        for t in tags.iter_mut().take(end).skip(i) {
                            *t = *tag;
                        }
                        matched = 1 + rest.len();
                        break;
                    }
                }
            }
            if matched == 0 {
                if Self::time_rule(tok) {
                    tags[i] = NerTag::Time;
                }
                i += 1;
            } else {
                i += matched;
            }
        }
        tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize::tokenize(s)
    }

    #[test]
    fn tag_indices_are_dense() {
        for (i, t) in NerTag::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn single_word_entity() {
        let mut g = Gazetteer::new();
        g.insert("honda", NerTag::Organization);
        let tags = g.tag_all(&toks("the honda sedan"));
        assert_eq!(tags, vec![NerTag::None, NerTag::Organization, NerTag::None]);
    }

    #[test]
    fn multiword_longest_match_wins() {
        let mut g = Gazetteer::new();
        g.insert("iron", NerTag::Product);
        g.insert("iron man", NerTag::Work);
        let tags = g.tag_all(&toks("iron man returns"));
        assert_eq!(tags, vec![NerTag::Work, NerTag::Work, NerTag::None]);
        let tags = g.tag_all(&toks("an iron gate"));
        assert_eq!(tags[1], NerTag::Product);
    }

    #[test]
    fn time_rules() {
        let g = Gazetteer::new();
        let tags = g.tag_all(&toks("apple event in september 2018"));
        assert_eq!(tags[3], NerTag::Time);
        assert_eq!(tags[4], NerTag::Time);
        assert_eq!(tags[0], NerTag::None);
    }

    #[test]
    fn overlapping_entities_do_not_panic() {
        let mut g = Gazetteer::new();
        g.insert("new york", NerTag::Location);
        g.insert("york university", NerTag::Organization);
        // Greedy left-to-right: "new york" matched first, then "university" alone.
        let tags = g.tag_all(&toks("new york university"));
        assert_eq!(tags[0], NerTag::Location);
        assert_eq!(tags[1], NerTag::Location);
        assert_eq!(tags[2], NerTag::None);
    }

    #[test]
    fn is_entity_flag() {
        assert!(!NerTag::None.is_entity());
        assert!(NerTag::Person.is_entity());
    }
}

//! Stop-word list.
//!
//! GIANT uses stop-word filtering in three places: the random-walk cluster
//! filter ("the number of non-stop words in q is more than a half"),
//! CoverRank's query-coverage score ("counting the covered nonstop query
//! words"), and phrase normalization ("the non-stop words in p_n shall be
//! similar"). The list therefore includes both classic function words and the
//! *query wrapper* words users type around an attention phrase ("what",
//! "top", "best", …), which the synthetic query generator also draws from.

use std::collections::HashSet;

/// Function words and query wrappers treated as stop words.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    // articles / determiners / pronouns
    "a", "an", "the", "this", "that", "these", "those", "my", "your", "his",
    "her", "its", "our", "their", "it", "he", "she", "they", "we", "you", "i",
    "who", "whom", "whose", "which",
    // auxiliaries / copulas
    "is", "are", "was", "were", "be", "been", "being", "am", "do", "does",
    "did", "have", "has", "had", "will", "would", "can", "could", "should",
    "shall", "may", "might", "must",
    // prepositions / conjunctions / particles
    "of", "in", "on", "at", "to", "for", "with", "by", "from", "about",
    "as", "into", "and", "or", "but", "not", "no", "so", "if", "than", "then",
    "there", "here", "when", "where", "how", "why", "what", "s",
    // query wrappers seen in search logs
    "top", "best", "list", "please", "find", "show", "me", "some", "any",
    "most", "famous", "good", "great", "recommend", "recommended", "popular",
];

/// A fast membership set over stop words.
#[derive(Debug, Clone)]
pub struct StopWords {
    set: HashSet<String>,
}

impl Default for StopWords {
    fn default() -> Self {
        Self::standard()
    }
}

impl StopWords {
    /// The default list ([`DEFAULT_STOPWORDS`]).
    pub fn standard() -> Self {
        Self::from_words(DEFAULT_STOPWORDS.iter().copied())
    }

    /// Builds a list from arbitrary words (lowercased on insert).
    pub fn from_words<'a, I: IntoIterator<Item = &'a str>>(words: I) -> Self {
        Self {
            set: words.into_iter().map(|w| w.to_lowercase()).collect(),
        }
    }

    /// Adds a word (lowercased).
    pub fn insert(&mut self, w: &str) {
        self.set.insert(w.to_lowercase());
    }

    /// True when `w` is a stop word or punctuation.
    pub fn is_stop(&self, w: &str) -> bool {
        crate::tokenize::is_punct(w) || self.set.contains(w)
    }

    /// Filters `tokens`, keeping only content (non-stop) tokens.
    pub fn content_tokens<'a>(&self, tokens: &'a [String]) -> Vec<&'a str> {
        tokens
            .iter()
            .map(|t| t.as_str())
            .filter(|t| !self.is_stop(t))
            .collect()
    }

    /// Number of non-stop tokens in `tokens`.
    pub fn count_content(&self, tokens: &[String]) -> usize {
        tokens.iter().filter(|t| !self.is_stop(t)).count()
    }

    /// Number of entries (excluding the implicit punctuation rule).
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_list_contains_wrappers() {
        let sw = StopWords::standard();
        for w in ["what", "the", "top", "best", "is"] {
            assert!(sw.is_stop(w), "{w} should be a stop word");
        }
        assert!(!sw.is_stop("honda"));
        assert!(!sw.is_stop("miyazaki"));
    }

    #[test]
    fn punctuation_is_always_stop() {
        let sw = StopWords::from_words([]);
        assert!(sw.is_stop(","));
        assert!(sw.is_stop("?"));
    }

    #[test]
    fn content_token_filtering() {
        let sw = StopWords::standard();
        let toks: Vec<String> = ["what", "are", "miyazaki", "animated", "films", "?"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(sw.content_tokens(&toks), vec!["miyazaki", "animated", "films"]);
        assert_eq!(sw.count_content(&toks), 3);
    }

    #[test]
    fn custom_insert() {
        let mut sw = StopWords::from_words(["foo"]);
        assert!(sw.is_stop("foo"));
        sw.insert("BAR");
        assert!(sw.is_stop("bar"));
        assert_eq!(sw.len(), 2);
    }
}

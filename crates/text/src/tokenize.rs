//! Deterministic tokenization and sentence splitting.
//!
//! The synthetic corpus is ASCII English-like text; queries and titles are
//! short. The tokenizer lowercases, splits on whitespace, and separates
//! punctuation into standalone tokens (QTIG treats punctuation as nodes and
//! CoverRank splits subtitles on it, so punctuation must survive).

/// Characters treated as standalone punctuation tokens.
pub const PUNCT: &[char] = &[
    '.', ',', ';', ':', '!', '?', '(', ')', '[', ']', '"', '\'', '-', '|', '/',
];

/// True when `tok` is a single punctuation token.
pub fn is_punct(tok: &str) -> bool {
    tok.chars().count() == 1 && tok.chars().all(|c| PUNCT.contains(&c))
}

/// Lowercases and tokenizes `text` into words and punctuation tokens.
///
/// ```
/// let toks = giant_text::tokenize("What are Hayao Miyazaki's animated films?");
/// assert_eq!(
///     toks,
///     vec!["what", "are", "hayao", "miyazaki", "'", "s", "animated", "films", "?"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_impl(text, true)
}

/// Tokenizes without lowercasing (used by NER capitalisation heuristics).
pub fn tokenize_keep_case(text: &str) -> Vec<String> {
    tokenize_impl(text, false)
}

fn tokenize_impl(text: &str, lowercase: bool) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_whitespace() {
            flush(&mut cur, &mut out);
        } else if PUNCT.contains(&ch) {
            flush(&mut cur, &mut out);
            out.push(ch.to_string());
        } else {
            if lowercase {
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else {
                cur.push(ch);
            }
        }
    }
    flush(&mut cur, &mut out);
    out
}

fn flush(cur: &mut String, out: &mut Vec<String>) {
    if !cur.is_empty() {
        out.push(std::mem::take(cur));
    }
}

/// Splits `text` into sentences on terminal punctuation (`.`, `!`, `?`, `;`).
///
/// Returns the raw sentence substrings with surrounding whitespace trimmed;
/// empty segments are dropped.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        if matches!(ch, '.' | '!' | '?' | ';') {
            let seg = text[start..i].trim();
            if !seg.is_empty() {
                out.push(seg);
            }
            start = i + ch.len_utf8();
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Splits a title into subtitles on punctuation (the event-candidate step of
/// §3.1 splits "original unsegmented document titles into subtitles by
/// punctuations and spaces" — we split on punctuation, keeping word spacing).
pub fn subtitles(title: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in title.chars() {
        if PUNCT.contains(&ch) {
            let seg = cur.trim();
            if !seg.is_empty() {
                out.push(seg.to_string());
            }
            cur.clear();
        } else {
            cur.push(ch);
        }
    }
    let seg = cur.trim();
    if !seg.is_empty() {
        out.push(seg.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_words_and_punct() {
        assert_eq!(
            tokenize("Honda Civic, a fuel-efficient car."),
            vec!["honda", "civic", ",", "a", "fuel", "-", "efficient", "car", "."]
        );
    }

    #[test]
    fn keeps_case_when_requested() {
        assert_eq!(
            tokenize_keep_case("Iron Man!"),
            vec!["Iron", "Man", "!"]
        );
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn punct_detection() {
        assert!(is_punct(","));
        assert!(is_punct("|"));
        assert!(!is_punct("a"));
        assert!(!is_punct(",,"));
    }

    #[test]
    fn sentence_split() {
        let s = sentences("Trade war begins. Tariffs rise! What next? End");
        assert_eq!(
            s,
            vec!["Trade war begins", "Tariffs rise", "What next", "End"]
        );
    }

    #[test]
    fn subtitle_split() {
        let s = subtitles("breaking: trade war begins, markets fall");
        assert_eq!(s, vec!["breaking", "trade war begins", "markets fall"]);
    }

    #[test]
    fn unicode_is_not_mangled() {
        // The production system is Chinese; our tokenizer must at least not
        // panic or split inside multi-byte characters.
        let toks = tokenize("宫崎骏 动画 电影");
        assert_eq!(toks, vec!["宫崎骏", "动画", "电影"]);
    }
}

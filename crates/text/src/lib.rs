//! # giant-text — NLP substrate for the GIANT reproduction
//!
//! GIANT (SIGMOD 2020) consumes search queries and document titles that have
//! been tokenized and annotated with part-of-speech tags, named-entity tags
//! and syntactic dependencies. The production system used off-the-shelf
//! Chinese NLP tooling; this crate provides a from-scratch, deterministic
//! substrate with the same interface obligations:
//!
//! * [`vocab`] — string interning ([`Vocab`], [`TokenId`]).
//! * [`mod@tokenize`] — lowercasing word/punctuation tokenizer and sentence split.
//! * [`stopwords`] — stop-word list including query wrapper words.
//! * [`pos`] — part-of-speech tags, a lexicon tagger and a trainable HMM
//!   (Viterbi) tagger.
//! * [`ner`] — named-entity tags and a gazetteer tagger with longest-match
//!   multiword entities.
//! * [`dep`] — deterministic rule-based dependency parser producing the typed
//!   edges the Query-Title Interaction Graph needs (compound, amod, dobj, …).
//! * [`embedding`] — skip-gram-with-negative-sampling word vectors (stands in
//!   for the paper's BERT / directional-skip-gram encoders as a similarity
//!   oracle).
//! * [`tfidf`] — document-frequency table and TF-IDF cosine similarity.
//! * [`similarity`] — LCS, Jaccard and edit distance.
//!
//! Everything is deterministic given a seed so experiments reproduce exactly.

pub mod annotate;
pub mod dep;
pub mod embedding;
pub mod ner;
pub mod pos;
pub mod similarity;
pub mod stopwords;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use annotate::{AnnotatedText, Annotator, Token};
pub use dep::{DepArc, DepRel, DependencyParser};
pub use embedding::{PhraseEncoder, SgnsConfig, WordEmbeddings};
pub use ner::{Gazetteer, NerTag};
pub use pos::{HmmTagger, Lexicon, PosTag};
pub use similarity::{edit_distance, jaccard, lcs_len};
pub use stopwords::StopWords;
pub use tfidf::{cosine_sparse, TfIdf};
pub use tokenize::{sentences, tokenize, tokenize_keep_case};
pub use vocab::{TokenId, Vocab};

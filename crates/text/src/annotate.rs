//! The annotation front-end: tokenize + POS + NER + stop flags + dependencies.
//!
//! [`Annotator`] bundles the substrate components into the single entry point
//! the mining pipeline uses for every query and title.

use crate::dep::{DepArc, DependencyParser};
use crate::ner::{Gazetteer, NerTag};
use crate::pos::{Lexicon, PosTag};
use crate::stopwords::StopWords;

/// One annotated token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased surface form.
    pub text: String,
    /// Part-of-speech tag.
    pub pos: PosTag,
    /// Named-entity tag.
    pub ner: NerTag,
    /// True when the token is a stop word or punctuation.
    pub is_stop: bool,
}

/// A fully annotated text passage.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedText {
    /// Annotated tokens in order.
    pub tokens: Vec<Token>,
    /// Dependency arcs over the tokens.
    pub arcs: Vec<DepArc>,
}

impl AnnotatedText {
    /// The token surface forms.
    pub fn texts(&self) -> Vec<&str> {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when there are no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Bundles lexicon POS tagging, gazetteer NER, stop words and dependency
/// parsing behind one call.
#[derive(Debug, Clone)]
pub struct Annotator {
    /// POS dictionary.
    pub lexicon: Lexicon,
    /// Entity dictionary.
    pub gazetteer: Gazetteer,
    /// Stop-word list.
    pub stopwords: StopWords,
    parser: DependencyParser,
}

impl Default for Annotator {
    fn default() -> Self {
        Self::new(
            Lexicon::with_closed_class(),
            Gazetteer::new(),
            StopWords::standard(),
        )
    }
}

impl Annotator {
    /// Creates an annotator from its components.
    pub fn new(lexicon: Lexicon, gazetteer: Gazetteer, stopwords: StopWords) -> Self {
        Self {
            lexicon,
            gazetteer,
            stopwords,
            parser: DependencyParser::new(),
        }
    }

    /// Annotates a raw text passage.
    pub fn annotate(&self, text: &str) -> AnnotatedText {
        let toks = crate::tokenize::tokenize(text);
        self.annotate_tokens(toks)
    }

    /// Annotates pre-tokenized (lowercased) tokens.
    pub fn annotate_tokens(&self, toks: Vec<String>) -> AnnotatedText {
        let pos = self.lexicon.tag_all(&toks);
        let ner = self.gazetteer.tag_all(&toks);
        let arcs = self.parser.parse(&pos);
        let tokens = toks
            .into_iter()
            .zip(pos)
            .zip(ner)
            .map(|((text, pos), ner)| {
                let is_stop = self.stopwords.is_stop(&text);
                Token {
                    text,
                    pos,
                    ner,
                    is_stop,
                }
            })
            .collect();
        AnnotatedText { tokens, arcs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_annotation() {
        let mut lx = Lexicon::with_closed_class();
        lx.insert("films", PosTag::Noun);
        lx.insert("animated", PosTag::Adjective);
        let mut gz = Gazetteer::new();
        gz.insert("hayao miyazaki", NerTag::Person);
        let ann = Annotator::new(lx, gz, StopWords::standard());
        let out = ann.annotate("What are the Hayao Miyazaki animated films?");
        let texts = out.texts();
        assert_eq!(
            texts,
            vec!["what", "are", "the", "hayao", "miyazaki", "animated", "films", "?"]
        );
        assert!(out.tokens[0].is_stop);
        assert_eq!(out.tokens[3].ner, NerTag::Person);
        assert_eq!(out.tokens[4].ner, NerTag::Person);
        assert_eq!(out.tokens[5].pos, PosTag::Adjective);
        assert!(!out.tokens[6].is_stop);
        // Dependency arcs exist and reference valid indices.
        assert!(!out.arcs.is_empty());
        for a in &out.arcs {
            assert!(a.head < out.len() && a.dep < out.len());
        }
    }

    #[test]
    fn empty_text() {
        let ann = Annotator::default();
        let out = ann.annotate("");
        assert!(out.is_empty());
        assert!(out.arcs.is_empty());
    }
}

//! The binary wire protocol: framing, checksums, and the typed message
//! codecs.
//!
//! ## Frame layout
//!
//! Both directions use the WAL's frame discipline
//! (`giant_incr::wal`), with the request id where the WAL carries its
//! sequence number:
//!
//! ```text
//! frame    := len u32 | id u64 | checksum u64 | payload (len bytes)
//! checksum := FNV-1a-64 over id_le ++ payload
//! payload  := kind u8 | body            (binio primitive encodings)
//! ```
//!
//! `id` is chosen by the client and echoed verbatim in the reply, so
//! pipelined clients match responses to requests even when server-side
//! batching completes them out of order. `len` is checked against
//! [`MAX_PAYLOAD`] on **both** ends before any allocation, and the
//! checksum is verified before any decoding — a corrupted or malicious
//! frame yields a typed [`NetError`], never a panic or a huge allocation.
//!
//! ## Encode-side length discipline
//!
//! Every length prefix is a checked conversion: an oversized message
//! fails with [`NetError::TooLarge`] before a single byte hits the
//! socket (the same sticky-overflow machinery
//! `giant_ontology::binio::Writer` provides to the checkpoint and WAL
//! writers — an unchecked `as u32` would desync the stream instead).

use giant_apps::query::{QueryUnderstanding, Recommendations};
use giant_apps::serving::{ServeError, ServeRequest, ServeResponse};
use giant_apps::storytree::{StoryEvent, StoryTree};
use giant_apps::tagging::DocTags;
use giant_obs::{HistogramSummary, MetricRow, MetricValue, MetricsSnapshot};
use giant_ontology::binio::{fnv1a64, BinError, Reader, Writer};
use giant_ontology::NodeId;
use std::fmt;
use std::io::Write as _;

use crate::stats::{KindRow, StatsReport};

/// Hard cap on one frame's payload bytes, enforced before allocation on
/// the read side and before transmission on the write side. Generous for
/// every real message (a full story-tree reply on the bench world is
/// ~10 KiB) while bounding what a malformed length prefix can make the
/// server allocate.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Fixed frame prefix size: `len u32 | id u64 | checksum u64`.
pub const FRAME_HEADER: usize = 4 + 8 + 8;

/// Number of [`ServeRequest`] kinds (the per-kind stats arrays index by
/// [`kind_index`]).
pub const N_KINDS: usize = 5;

/// Typed failures of the wire layer.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// A frame announced (or a message encoded to) a payload larger than
    /// [`MAX_PAYLOAD`].
    TooLarge {
        /// The offending payload length.
        len: u64,
        /// The enforced maximum.
        max: u64,
    },
    /// The frame arrived complete but its checksum does not match —
    /// bits changed in flight, or the stream desynced.
    ChecksumMismatch {
        /// The id field as read (untrustworthy, for diagnostics only).
        id: u64,
    },
    /// The checksum held but the payload is not a valid message.
    Malformed(BinError),
    /// The payload's kind byte names no known message.
    BadKind {
        /// The unknown discriminant.
        kind: u8,
    },
    /// The server replied with a protocol-level rejection (the peer's
    /// view of one of the errors above).
    Rejected {
        /// The server's reason string.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "wire i/o: {e}"),
            NetError::TooLarge { len, max } => {
                write!(f, "frame payload {len} bytes exceeds the {max}-byte cap")
            }
            NetError::ChecksumMismatch { id } => {
                write!(f, "frame checksum mismatch (id field read as {id})")
            }
            NetError::Malformed(e) => write!(f, "malformed message: {e}"),
            NetError::BadKind { kind } => write!(f, "unknown message kind {kind}"),
            NetError::Rejected { reason } => write!(f, "server rejected the frame: {reason}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<BinError> for NetError {
    fn from(e: BinError) -> Self {
        NetError::Malformed(e)
    }
}

/// A client → server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// A typed serving request, to be answered from the live frame.
    Serve(ServeRequest),
    /// The stats endpoint: per-kind latency percentiles, queue depth,
    /// shed counts. Answered inline by the connection's read thread, so
    /// it works even when the admission queue is saturated.
    Stats,
    /// The unified metrics endpoint (DESIGN.md §13): every registered
    /// `giant-obs` metric — WAL counters, span histograms, ingest
    /// counters — merged with this server's namespaced `net.*` rows.
    /// Like [`Request::Stats`], answered inline by the read thread.
    Metrics,
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum Reply {
    /// The serving answer.
    Ok(ServeResponse),
    /// The serving layer's typed refusal (e.g. unknown story seed).
    Err(ServeError),
    /// Load shed: the admission queue was full when the request arrived.
    /// The request was **not** queued; the client may retry later.
    Shed {
        /// Queue depth observed at rejection time.
        depth: u32,
        /// The configured queue bound.
        cap: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// Answer to [`Request::Metrics`]: name-sorted rows of counters,
    /// gauges, and histogram summaries.
    Metrics(MetricsSnapshot),
    /// Protocol-level rejection of a malformed frame; the server closes
    /// the connection after sending this (the stream may be desynced).
    Bad {
        /// What the server could not parse.
        reason: String,
    },
}

/// The stable label of a request kind (stats rows, bench reports).
pub fn kind_label(req: &ServeRequest) -> &'static str {
    match req {
        ServeRequest::Conceptualize { .. } => "conceptualize",
        ServeRequest::Recommend { .. } => "recommend",
        ServeRequest::TagDocument { .. } => "tag_document",
        ServeRequest::StoryTree { .. } => "story_tree",
        ServeRequest::ExportSubgraph { .. } => "export_subgraph",
    }
}

/// The dense index of a request kind (see [`N_KINDS`]).
pub fn kind_index(req: &ServeRequest) -> usize {
    match req {
        ServeRequest::Conceptualize { .. } => 0,
        ServeRequest::Recommend { .. } => 1,
        ServeRequest::TagDocument { .. } => 2,
        ServeRequest::StoryTree { .. } => 3,
        ServeRequest::ExportSubgraph { .. } => 4,
    }
}

/// Labels in [`kind_index`] order.
pub const KIND_LABELS: [&str; N_KINDS] =
    ["conceptualize", "recommend", "tag_document", "story_tree", "export_subgraph"];

// ---------------------------------------------------------------------------
// Small shared codecs.

fn write_opt_node(w: &mut Writer, n: &Option<NodeId>) {
    match n {
        Some(id) => {
            w.bool(true);
            w.u32(id.0);
        }
        None => w.bool(false),
    }
}

fn read_opt_node(r: &mut Reader<'_>) -> Result<Option<NodeId>, BinError> {
    Ok(if r.bool()? {
        Some(NodeId(r.u32()?))
    } else {
        None
    })
}

fn write_nodes(w: &mut Writer, xs: &[NodeId]) {
    w.len_prefix(xs.len(), "node list");
    for n in xs {
        w.u32(n.0);
    }
}

fn read_nodes(r: &mut Reader<'_>) -> Result<Vec<NodeId>, BinError> {
    let n = r.len(4, "node list")?;
    (0..n).map(|_| Ok(NodeId(r.u32()?))).collect()
}

fn write_scored_nodes(w: &mut Writer, xs: &[(NodeId, f64)]) {
    w.len_prefix(xs.len(), "scored node list");
    for (n, s) in xs {
        w.u32(n.0);
        w.f64(*s);
    }
}

fn read_scored_nodes(r: &mut Reader<'_>) -> Result<Vec<(NodeId, f64)>, BinError> {
    let n = r.len(12, "scored node list")?;
    (0..n).map(|_| Ok((NodeId(r.u32()?), r.f64()?))).collect()
}

fn write_opt_str(w: &mut Writer, s: &Option<String>) {
    match s {
        Some(s) => {
            w.bool(true);
            w.str(s);
        }
        None => w.bool(false),
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, BinError> {
    Ok(if r.bool()? { Some(r.str()?) } else { None })
}

fn write_story_event(w: &mut Writer, e: &StoryEvent) {
    w.u32(e.node.0);
    w.str_slice(&e.tokens);
    write_opt_str(w, &e.trigger);
    write_nodes(w, &e.entities);
    w.u32(e.day);
}

fn read_story_event(r: &mut Reader<'_>) -> Result<StoryEvent, BinError> {
    Ok(StoryEvent {
        node: NodeId(r.u32()?),
        tokens: r.str_vec()?,
        trigger: read_opt_str(r)?,
        entities: read_nodes(r)?,
        day: r.u32()?,
    })
}

// ---------------------------------------------------------------------------
// Request codec.

const REQ_CONCEPTUALIZE: u8 = 0;
const REQ_RECOMMEND: u8 = 1;
const REQ_TAG_DOCUMENT: u8 = 2;
const REQ_STORY_TREE: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_EXPORT_SUBGRAPH: u8 = 5;
const REQ_METRICS: u8 = 6;

/// Serialises one request payload (kind byte + body).
pub fn write_request(w: &mut Writer, req: &Request) {
    match req {
        Request::Serve(ServeRequest::Conceptualize { query }) => {
            w.u8(REQ_CONCEPTUALIZE);
            w.str(query);
        }
        Request::Serve(ServeRequest::Recommend { query }) => {
            w.u8(REQ_RECOMMEND);
            w.str(query);
        }
        Request::Serve(ServeRequest::TagDocument { title, sentences }) => {
            w.u8(REQ_TAG_DOCUMENT);
            w.str(title);
            w.str_slice(sentences);
        }
        Request::Serve(ServeRequest::StoryTree { seed }) => {
            w.u8(REQ_STORY_TREE);
            w.u32(seed.0);
        }
        Request::Serve(ServeRequest::ExportSubgraph { root }) => {
            w.u8(REQ_EXPORT_SUBGRAPH);
            write_opt_node(w, root);
        }
        Request::Stats => w.u8(REQ_STATS),
        Request::Metrics => w.u8(REQ_METRICS),
    }
}

/// Decodes one request payload. Every failure is typed; oversized inner
/// lengths are rejected by the reader's allocation caps.
pub fn decode_request(payload: &[u8]) -> Result<Request, NetError> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let req = match kind {
        REQ_CONCEPTUALIZE => Request::Serve(ServeRequest::Conceptualize { query: r.str()? }),
        REQ_RECOMMEND => Request::Serve(ServeRequest::Recommend { query: r.str()? }),
        REQ_TAG_DOCUMENT => Request::Serve(ServeRequest::TagDocument {
            title: r.str()?,
            sentences: r.str_vec()?,
        }),
        REQ_STORY_TREE => Request::Serve(ServeRequest::StoryTree {
            seed: NodeId(r.u32()?),
        }),
        REQ_STATS => Request::Stats,
        REQ_EXPORT_SUBGRAPH => Request::Serve(ServeRequest::ExportSubgraph {
            root: read_opt_node(&mut r)?,
        }),
        REQ_METRICS => Request::Metrics,
        kind => return Err(NetError::BadKind { kind }),
    };
    r.expect_exhausted()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Reply codec.

const REP_CONCEPTUALIZE: u8 = 0;
const REP_RECOMMEND: u8 = 1;
const REP_TAG_DOCUMENT: u8 = 2;
const REP_STORY_TREE: u8 = 3;
const REP_ERR_UNKNOWN_SEED: u8 = 4;
const REP_SHED: u8 = 5;
const REP_STATS: u8 = 6;
const REP_BAD: u8 = 7;
const REP_EXPORT_SUBGRAPH: u8 = 8;
const REP_ERR_UNKNOWN_EXPORT_ROOT: u8 = 9;
const REP_ERR_EXPORT_DISABLED: u8 = 10;
const REP_ERR_EXPORT_FAILED: u8 = 11;
const REP_METRICS: u8 = 12;

/// Tag bytes for [`MetricValue`] rows inside a `Metrics` reply.
const METRIC_COUNTER: u8 = 0;
const METRIC_GAUGE: u8 = 1;
const METRIC_HISTOGRAM: u8 = 2;

fn write_metrics_snapshot(w: &mut Writer, snap: &MetricsSnapshot) {
    w.len_prefix(snap.rows.len(), "metric rows");
    for row in &snap.rows {
        w.str(&row.name);
        match &row.value {
            MetricValue::Counter(n) => {
                w.u8(METRIC_COUNTER);
                w.u64(*n);
            }
            // binio carries no signed integers; gauges ride as
            // two's-complement u64, losslessly.
            MetricValue::Gauge(v) => {
                w.u8(METRIC_GAUGE);
                w.u64(*v as u64);
            }
            MetricValue::Histogram(h) => {
                w.u8(METRIC_HISTOGRAM);
                w.u64(h.count);
                w.u64(h.sum_us);
                w.f64(h.p50_us);
                w.f64(h.p99_us);
            }
        }
    }
}

fn read_metrics_snapshot(r: &mut Reader<'_>) -> Result<MetricsSnapshot, NetError> {
    // Min row size: 4-byte name length + 1 tag + 8 value bytes.
    let n = r.len(13, "metric rows")?;
    let rows = (0..n)
        .map(|_| {
            let name = r.str()?;
            let value = match r.u8()? {
                METRIC_COUNTER => MetricValue::Counter(r.u64()?),
                METRIC_GAUGE => MetricValue::Gauge(r.u64()? as i64),
                METRIC_HISTOGRAM => MetricValue::Histogram(HistogramSummary {
                    count: r.u64()?,
                    sum_us: r.u64()?,
                    p50_us: r.f64()?,
                    p99_us: r.f64()?,
                }),
                kind => return Err(NetError::BadKind { kind }),
            };
            Ok(MetricRow { name, value })
        })
        .collect::<Result<Vec<_>, NetError>>()?;
    Ok(MetricsSnapshot { rows })
}

/// Serialises one reply payload (kind byte + body).
pub fn write_reply(w: &mut Writer, reply: &Reply) {
    match reply {
        Reply::Ok(ServeResponse::Conceptualize(u)) => {
            w.u8(REP_CONCEPTUALIZE);
            write_opt_node(w, &u.concept);
            write_opt_node(w, &u.entity);
            w.str_slice(&u.rewrites);
            write_nodes(w, &u.recommendations);
        }
        Reply::Ok(ServeResponse::Recommend(rec)) => {
            w.u8(REP_RECOMMEND);
            write_opt_node(w, &rec.entity);
            write_nodes(w, &rec.items);
        }
        Reply::Ok(ServeResponse::TagDocument(tags)) => {
            w.u8(REP_TAG_DOCUMENT);
            write_scored_nodes(w, &tags.concepts);
            write_scored_nodes(w, &tags.events);
            write_scored_nodes(w, &tags.topics);
        }
        Reply::Ok(ServeResponse::StoryTree(tree)) => {
            w.u8(REP_STORY_TREE);
            w.len_prefix(tree.events.len(), "story events");
            for e in &tree.events {
                write_story_event(w, e);
            }
            w.len_prefix(tree.branches.len(), "story branches");
            for b in &tree.branches {
                w.len_prefix(b.len(), "story branch");
                for &i in b {
                    w.usize(i);
                }
            }
        }
        Reply::Ok(ServeResponse::ExportSubgraph(json)) => {
            w.u8(REP_EXPORT_SUBGRAPH);
            w.str(json);
        }
        Reply::Err(ServeError::UnknownStorySeed(n)) => {
            w.u8(REP_ERR_UNKNOWN_SEED);
            w.u32(n.0);
        }
        Reply::Err(ServeError::UnknownExportRoot(n)) => {
            w.u8(REP_ERR_UNKNOWN_EXPORT_ROOT);
            w.u32(n.0);
        }
        Reply::Err(ServeError::ExportDisabled) => w.u8(REP_ERR_EXPORT_DISABLED),
        Reply::Err(ServeError::ExportFailed(msg)) => {
            w.u8(REP_ERR_EXPORT_FAILED);
            w.str(msg);
        }
        Reply::Shed { depth, cap } => {
            w.u8(REP_SHED);
            w.u32(*depth);
            w.u32(*cap);
        }
        Reply::Stats(s) => {
            w.u8(REP_STATS);
            w.u64(s.version);
            w.u64(s.served);
            w.u64(s.shed);
            w.u64(s.batches);
            w.u32(s.max_batch);
            w.u32(s.queue_depth);
            w.u32(s.queue_max_depth);
            w.u32(s.queue_cap);
            w.len_prefix(s.kinds.len(), "stat rows");
            for row in &s.kinds {
                w.str(&row.kind);
                w.u64(row.count);
                w.f64(row.p50_us);
                w.f64(row.p99_us);
            }
        }
        Reply::Metrics(snap) => {
            w.u8(REP_METRICS);
            write_metrics_snapshot(w, snap);
        }
        Reply::Bad { reason } => {
            w.u8(REP_BAD);
            w.str(reason);
        }
    }
}

/// Decodes one reply payload.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, NetError> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let reply = match kind {
        REP_CONCEPTUALIZE => Reply::Ok(ServeResponse::Conceptualize(QueryUnderstanding {
            concept: read_opt_node(&mut r)?,
            entity: read_opt_node(&mut r)?,
            rewrites: r.str_vec()?,
            recommendations: read_nodes(&mut r)?,
        })),
        REP_RECOMMEND => Reply::Ok(ServeResponse::Recommend(Recommendations {
            entity: read_opt_node(&mut r)?,
            items: read_nodes(&mut r)?,
        })),
        REP_TAG_DOCUMENT => Reply::Ok(ServeResponse::TagDocument(DocTags {
            concepts: read_scored_nodes(&mut r)?,
            events: read_scored_nodes(&mut r)?,
            topics: read_scored_nodes(&mut r)?,
        })),
        REP_STORY_TREE => {
            let n = r.len(14, "story events")?;
            let events = (0..n)
                .map(|_| read_story_event(&mut r))
                .collect::<Result<Vec<_>, _>>()?;
            let nb = r.len(4, "story branches")?;
            let branches = (0..nb)
                .map(|_| {
                    let n = r.len(8, "story branch")?;
                    (0..n).map(|_| r.usize()).collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Reply::Ok(ServeResponse::StoryTree(StoryTree { events, branches }))
        }
        REP_ERR_UNKNOWN_SEED => Reply::Err(ServeError::UnknownStorySeed(NodeId(r.u32()?))),
        REP_EXPORT_SUBGRAPH => Reply::Ok(ServeResponse::ExportSubgraph(r.str()?)),
        REP_ERR_UNKNOWN_EXPORT_ROOT => Reply::Err(ServeError::UnknownExportRoot(NodeId(r.u32()?))),
        REP_ERR_EXPORT_DISABLED => Reply::Err(ServeError::ExportDisabled),
        REP_ERR_EXPORT_FAILED => Reply::Err(ServeError::ExportFailed(r.str()?)),
        REP_SHED => Reply::Shed {
            depth: r.u32()?,
            cap: r.u32()?,
        },
        REP_STATS => {
            let version = r.u64()?;
            let served = r.u64()?;
            let shed = r.u64()?;
            let batches = r.u64()?;
            let max_batch = r.u32()?;
            let queue_depth = r.u32()?;
            let queue_max_depth = r.u32()?;
            let queue_cap = r.u32()?;
            let n = r.len(25, "stat rows")?;
            let kinds = (0..n)
                .map(|_| {
                    Ok(KindRow {
                        kind: r.str()?,
                        count: r.u64()?,
                        p50_us: r.f64()?,
                        p99_us: r.f64()?,
                    })
                })
                .collect::<Result<Vec<_>, BinError>>()?;
            Reply::Stats(StatsReport {
                version,
                served,
                shed,
                batches,
                max_batch,
                queue_depth,
                queue_max_depth,
                queue_cap,
                kinds,
            })
        }
        REP_METRICS => Reply::Metrics(read_metrics_snapshot(&mut r)?),
        REP_BAD => Reply::Bad { reason: r.str()? },
        kind => return Err(NetError::BadKind { kind }),
    };
    r.expect_exhausted()?;
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Framing.

fn frame_checksum(id: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a64(&buf)
}

/// Builds one complete frame (header + payload) for transmission,
/// checking the payload length against [`MAX_PAYLOAD`].
pub fn encode_frame(id: u64, payload: Vec<u8>) -> Result<Vec<u8>, NetError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_PAYLOAD)
        .ok_or(NetError::TooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_PAYLOAD),
        })?;
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&id.to_le_bytes());
    frame.extend_from_slice(&frame_checksum(id, &payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Encodes a request as a complete frame.
pub fn encode_request_frame(id: u64, req: &Request) -> Result<Vec<u8>, NetError> {
    let mut w = Writer::new();
    write_request(&mut w, req);
    encode_frame(id, w.into_bytes_checked()?)
}

/// Encodes a reply as a complete frame.
pub fn encode_reply_frame(id: u64, reply: &Reply) -> Result<Vec<u8>, NetError> {
    let mut w = Writer::new();
    write_reply(&mut w, reply);
    encode_frame(id, w.into_bytes_checked()?)
}

/// The canonical payload bytes of a reply — what byte-identity tests
/// compare (two replies are equal iff their encodings are).
pub fn encode_reply_payload(reply: &Reply) -> Result<Vec<u8>, NetError> {
    let mut w = Writer::new();
    write_reply(&mut w, reply);
    Ok(w.into_bytes_checked()?)
}

/// Writes one frame to `stream`.
pub fn write_frame(stream: &mut std::net::TcpStream, id: u64, payload: Vec<u8>) -> Result<(), NetError> {
    let frame = encode_frame(id, payload)?;
    stream.write_all(&frame)?;
    Ok(())
}

/// Reads one frame from `stream`: `(id, payload)`, with the length cap
/// enforced **before** the payload allocation and the checksum verified
/// before returning. A peer that vanishes mid-frame surfaces as
/// [`NetError::Io`] (`UnexpectedEof`).
pub fn read_frame(stream: &mut impl std::io::Read) -> Result<(u64, Vec<u8>), NetError> {
    let mut header = [0u8; FRAME_HEADER];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let id = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if len > MAX_PAYLOAD {
        return Err(NetError::TooLarge {
            len: u64::from(len),
            max: u64::from(MAX_PAYLOAD),
        });
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    if frame_checksum(id, &payload) != checksum {
        return Err(NetError::ChecksumMismatch { id });
    }
    Ok((id, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Serve(ServeRequest::Conceptualize {
                query: "best electric cars".into(),
            }),
            Request::Serve(ServeRequest::Recommend {
                query: "veltro x9 review".into(),
            }),
            Request::Serve(ServeRequest::TagDocument {
                title: "veltro x9 wins award".into(),
                sentences: vec!["a great day".into(), "for electric cars".into()],
            }),
            Request::Serve(ServeRequest::StoryTree { seed: NodeId(7) }),
            Request::Serve(ServeRequest::ExportSubgraph { root: None }),
            Request::Serve(ServeRequest::ExportSubgraph {
                root: Some(NodeId(12)),
            }),
            Request::Stats,
            Request::Metrics,
        ]
    }

    fn sample_replies() -> Vec<Reply> {
        vec![
            Reply::Ok(ServeResponse::Conceptualize(QueryUnderstanding {
                concept: Some(NodeId(3)),
                entity: None,
                rewrites: vec!["best electric cars kario s4".into()],
                recommendations: vec![NodeId(9), NodeId(4)],
            })),
            Reply::Ok(ServeResponse::Recommend(Recommendations {
                entity: Some(NodeId(1)),
                items: vec![NodeId(2)],
            })),
            Reply::Ok(ServeResponse::TagDocument(DocTags {
                concepts: vec![(NodeId(1), 0.5)],
                events: vec![],
                topics: vec![(NodeId(2), -0.0)],
            })),
            Reply::Ok(ServeResponse::StoryTree(StoryTree {
                events: vec![StoryEvent {
                    node: NodeId(11),
                    tokens: vec!["veltro".into(), "x9".into()],
                    trigger: Some("wins".into()),
                    entities: vec![NodeId(1)],
                    day: 3,
                }],
                branches: vec![vec![0], vec![]],
            })),
            Reply::Err(ServeError::UnknownStorySeed(NodeId(999))),
            Reply::Ok(ServeResponse::ExportSubgraph(
                "{\n  \"nodes\": []\n}".into(),
            )),
            Reply::Err(ServeError::UnknownExportRoot(NodeId(404))),
            Reply::Err(ServeError::ExportDisabled),
            Reply::Err(ServeError::ExportFailed("node 3: missing property".into())),
            Reply::Shed { depth: 64, cap: 64 },
            Reply::Stats(StatsReport {
                version: 3,
                served: 100,
                shed: 2,
                batches: 10,
                max_batch: 16,
                queue_depth: 1,
                queue_max_depth: 32,
                queue_cap: 64,
                kinds: vec![KindRow {
                    kind: "conceptualize".into(),
                    count: 50,
                    p50_us: 12.5,
                    p99_us: 80.0,
                }],
            }),
            Reply::Metrics(MetricsSnapshot {
                rows: vec![
                    MetricRow {
                        name: "net.queue.depth".into(),
                        value: MetricValue::Gauge(-3),
                    },
                    MetricRow {
                        name: "net.queue.wait_us".into(),
                        value: MetricValue::Histogram(HistogramSummary {
                            count: 4,
                            sum_us: 52,
                            p50_us: 9.513656920021768,
                            p99_us: 26.908685288118864,
                        }),
                    },
                    MetricRow {
                        name: "wal.appends".into(),
                        value: MetricValue::Counter(128),
                    },
                ],
            }),
            Reply::Metrics(MetricsSnapshot { rows: vec![] }),
            Reply::Bad {
                reason: "checksum mismatch".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        for req in sample_requests() {
            let mut w = Writer::new();
            write_request(&mut w, &req);
            let bytes = w.into_bytes_checked().unwrap();
            let back = decode_request(&bytes).unwrap();
            let mut w2 = Writer::new();
            write_request(&mut w2, &back);
            assert_eq!(bytes, w2.into_bytes_checked().unwrap(), "{req:?}");
        }
    }

    #[test]
    fn replies_round_trip_bit_exactly() {
        for reply in sample_replies() {
            let bytes = encode_reply_payload(&reply).unwrap();
            let back = decode_reply(&bytes).unwrap();
            assert_eq!(
                bytes,
                encode_reply_payload(&back).unwrap(),
                "{reply:?}"
            );
        }
    }

    #[test]
    fn frames_carry_ids_and_catch_flips() {
        let payload = {
            let mut w = Writer::new();
            write_request(&mut w, &sample_requests()[0]);
            w.into_bytes_checked().unwrap()
        };
        let frame = encode_frame(77, payload.clone()).unwrap();
        let (id, got) = read_frame(&mut &frame[..]).unwrap();
        assert_eq!(id, 77);
        assert_eq!(got, payload);
        // Any single flipped byte is caught: header flips break the
        // length/id/checksum agreement, payload flips break the checksum.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(
                read_frame(&mut &bad[..]).is_err(),
                "flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        // Announced payload over the cap: rejected from the header alone.
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &frame[..]),
            Err(NetError::TooLarge { .. })
        ));
        // Encode side refuses the same way.
        assert!(matches!(
            encode_frame(1, vec![0u8; MAX_PAYLOAD as usize + 1]),
            Err(NetError::TooLarge { .. })
        ));
    }

    #[test]
    fn unknown_kinds_are_typed() {
        assert!(matches!(
            decode_request(&[200]),
            Err(NetError::BadKind { kind: 200 })
        ));
        assert!(matches!(
            decode_reply(&[250]),
            Err(NetError::BadKind { kind: 250 })
        ));
        // Trailing garbage after a valid message is malformed, not ignored.
        let mut w = Writer::new();
        write_request(&mut w, &Request::Stats);
        let mut bytes = w.into_bytes_checked().unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(NetError::Malformed(_))
        ));
    }
}

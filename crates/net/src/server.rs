//! The serving front door: accept/read threads, a bounded admission
//! queue, and a request-coalescing worker pool.
//!
//! ## Threading model
//!
//! ```text
//! accept thread ──► one reader thread per connection
//!                        │  decode frame → Job ──► bounded queue ──► workers
//!                        │  (queue full → Reply::Shed, not queued)     │
//!                        └─ Request::Stats answered inline             │
//!                                         drain ≤ batch_max jobs ◄─────┘
//!                                         OntologyService::serve_batch
//!                                         reply frames → per-conn mutex
//! ```
//!
//! Workers drain whatever has accumulated (up to `batch_max`) into a
//! single [`OntologyService::serve_batch`] call, which acquires **one**
//! serving frame for the whole batch and fans out through
//! `giant_exec::run_ordered`. Because each answer depends only on
//! (request, frame), coalescing is invisible in the response bytes: any
//! worker count, batch composition, or executor thread count produces
//! byte-identical replies.
//!
//! ## Overload semantics
//!
//! Admission is a bounded queue. The read thread rejects — it never
//! blocks and never buffers beyond the bound — so server memory under
//! overload is O(queue_cap + open connections), and a client always gets
//! a prompt, typed answer:
//!
//! | condition                    | client sees                          |
//! |------------------------------|--------------------------------------|
//! | queue has room               | reply, after queue + compute         |
//! | queue full                   | [`Reply::Shed`] immediately          |
//! | malformed / oversized frame  | [`Reply::Bad`], then connection close|
//! | `Request::Stats`, any load   | [`Reply::Stats`] inline (never shed) |

use giant_apps::serving::{OntologyService, ServeError, ServeRequest};
use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::stats::{ServerStats, StatsReport};
use crate::wire::{
    decode_request, encode_reply_frame, kind_index, read_frame, NetError, Reply, Request,
};

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue (each issues its own
    /// `serve_batch` calls).
    pub workers: usize,
    /// Threads handed to `serve_batch` for intra-batch fan-out.
    pub exec_threads: usize,
    /// Largest batch one worker coalesces per drain.
    pub batch_max: usize,
    /// Admission queue bound; requests arriving past it are shed.
    pub queue_cap: usize,
    /// Test/bench hook: artificial delay (µs) each worker sleeps before
    /// serving a drained batch, to make overload reproducible on fast
    /// machines. 0 (the default) in production.
    pub debug_batch_delay_us: u64,
    /// Whether [`ServeRequest::ExportSubgraph`] is admitted. Off by
    /// default: a full-graph export is orders of magnitude heavier than
    /// any other request and dumps the whole ontology to the peer, so the
    /// host must opt in (`giant_server --allow-export`). When disabled,
    /// export requests get a typed
    /// [`ServeError::ExportDisabled`](giant_apps::serving::ServeError)
    /// reply without ever entering the admission queue.
    pub allow_export: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            exec_threads: 4,
            batch_max: 32,
            queue_cap: 256,
            debug_batch_delay_us: 0,
            allow_export: false,
        }
    }
}

/// One admitted request waiting for a worker.
struct Job {
    id: u64,
    req: ServeRequest,
    kind: usize,
    conn: Arc<Conn>,
    enqueued: Instant,
}

/// A connection's write half. Replies from the worker pool and inline
/// stats answers interleave, so every frame write holds this mutex —
/// frames are atomic on the wire.
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    /// Encodes and writes one reply frame. Errors are swallowed: a peer
    /// that hung up forfeits its replies, which is its problem, not the
    /// batch's.
    fn send(&self, id: u64, reply: &Reply) {
        if let Ok(frame) = encode_reply_frame(id, reply) {
            use std::io::Write as _;
            let mut stream = self.stream.lock().expect("conn stream poisoned");
            let _ = stream.write_all(&frame);
        }
    }
}

/// State shared by the accept thread, reader threads, and workers.
struct Shared {
    svc: Arc<OntologyService>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    stop: AtomicBool,
    stats: ServerStats,
    /// Read halves of live connections, so shutdown can unblock readers.
    readers: Mutex<Vec<TcpStream>>,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops accepting, unblocks all threads, and joins them.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept, reader, and worker threads.
    pub fn start(
        svc: Arc<OntologyService>,
        addr: &str,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue_cap = u32::try_from(cfg.queue_cap).unwrap_or(u32::MAX);
        let shared = Arc::new(Shared {
            svc,
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: ServerStats::new(queue_cap),
            readers: Mutex::new(Vec::new()),
            reader_handles: Mutex::new(Vec::new()),
        });

        let worker_handles = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("giant-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("giant-net-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        Ok(Server {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A stats snapshot, as the wire endpoint would report it.
    pub fn stats_report(&self) -> StatsReport {
        self.shared.stats.report(self.shared.svc.frame().version)
    }

    /// The unified metrics snapshot, as [`Request::Metrics`] would
    /// report it: this server's `net.*` rows merged with the
    /// process-wide `giant-obs` registry.
    pub fn metrics_report(&self) -> giant_obs::MetricsSnapshot {
        self.shared
            .stats
            .metrics_snapshot(self.shared.svc.frame().version)
            .merge(giant_obs::registry().snapshot())
    }

    /// Stops the server: no new connections, in-flight work drains, all
    /// threads joined.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Unblock reader threads by shutting their sockets down.
        for s in self.shared.readers.lock().expect("readers poisoned").iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Unblock workers parked on the condvar.
        self.shared.not_empty.notify_all();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles = std::mem::take(
            &mut *self
                .shared
                .reader_handles
                .lock()
                .expect("reader handles poisoned"),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.stop.load(Ordering::SeqCst) {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared
            .readers
            .lock()
            .expect("readers poisoned")
            .push(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
        let conn = Arc::new(Conn {
            stream: Mutex::new(stream),
        });
        let reader_shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("giant-net-reader".into())
            .spawn(move || reader_loop(read_half, conn, &reader_shared))
        {
            shared
                .reader_handles
                .lock()
                .expect("reader handles poisoned")
                .push(handle);
        }
    }
}

fn reader_loop(mut read_half: TcpStream, conn: Arc<Conn>, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        let (id, payload) = match read_frame(&mut read_half) {
            Ok(frame) => frame,
            // Peer hung up (or shutdown unblocked us): close quietly.
            Err(NetError::Io(_)) => return,
            // The stream survived but the frame is bad; after a length or
            // checksum failure we cannot trust the stream position, so
            // reply (best effort) and close.
            Err(e) => {
                conn.send(0, &Reply::Bad {
                    reason: e.to_string(),
                });
                let _ = read_half.shutdown(Shutdown::Both);
                return;
            }
        };
        match decode_request(&payload) {
            Ok(Request::Stats) => {
                // Answered inline on the read thread: stats must respond
                // even when the admission queue is saturated.
                let report = shared.stats.report(shared.svc.frame().version);
                conn.send(id, &Reply::Stats(report));
            }
            Ok(Request::Metrics) => {
                // Same inline discipline as Stats. This server's
                // namespaced `net.*` rows merged with the process-wide
                // registry (WAL counters, span histograms, ingest
                // counters) — the one-report cross-layer view.
                let snap = shared
                    .stats
                    .metrics_snapshot(shared.svc.frame().version)
                    .merge(giant_obs::registry().snapshot());
                conn.send(id, &Reply::Metrics(snap));
            }
            Ok(Request::Serve(req)) => {
                // The export gate sits in front of admission: a disabled
                // export is a policy refusal, not load, so it neither
                // occupies a queue slot nor counts as shed.
                if matches!(req, ServeRequest::ExportSubgraph { .. }) && !shared.cfg.allow_export {
                    conn.send(id, &Reply::Err(ServeError::ExportDisabled));
                    continue;
                }
                let mut queue = shared.queue.lock().expect("admission queue poisoned");
                if queue.len() >= shared.cfg.queue_cap {
                    let depth = queue.len();
                    drop(queue);
                    shared.stats.record_shed();
                    conn.send(id, &Reply::Shed {
                        depth: depth as u32,
                        cap: shared.cfg.queue_cap as u32,
                    });
                } else {
                    queue.push_back(Job {
                        id,
                        kind: kind_index(&req),
                        req,
                        conn: Arc::clone(&conn),
                        enqueued: Instant::now(),
                    });
                    shared.stats.record_queue_depth(queue.len());
                    drop(queue);
                    shared.not_empty.notify_one();
                }
            }
            // A frame that decodes to garbage is recoverable (framing is
            // intact), so reply and keep the connection.
            Err(e) => conn.send(id, &Reply::Bad {
                reason: e.to_string(),
            }),
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("admission queue poisoned");
            while queue.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                queue = shared
                    .not_empty
                    .wait(queue)
                    .expect("admission queue poisoned");
            }
            if queue.is_empty() {
                return; // stop requested and nothing left to drain
            }
            let n = queue.len().min(shared.cfg.batch_max.max(1));
            let batch: Vec<Job> = queue.drain(..n).collect();
            shared.stats.record_queue_depth(queue.len());
            batch
        };
        if shared.cfg.debug_batch_delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(
                shared.cfg.debug_batch_delay_us,
            ));
        }
        shared.stats.record_batch(batch.len());
        // Queue wait is measured at drain time — the span between
        // admission and a worker picking the job up, the number the
        // ROADMAP's admission-quota work needs.
        for job in &batch {
            shared
                .stats
                .record_queue_wait(job.enqueued.elapsed().as_secs_f64() * 1e6);
        }
        let batch_span = giant_obs::span("net.batch");
        let requests: Vec<ServeRequest> = batch.iter().map(|j| j.req.clone()).collect();
        // One frame, one ordered fan-out for the whole batch — results
        // come back in request order, so zip matches job to answer.
        let serve_span = giant_obs::span("net.serve");
        let results = shared.svc.serve_batch(&requests, shared.cfg.exec_threads);
        drop(serve_span);
        let reply_span = giant_obs::span("net.reply");
        for (job, result) in batch.into_iter().zip(results) {
            let reply = match result {
                Ok(resp) => Reply::Ok(resp),
                Err(e) => Reply::Err(e),
            };
            // Record before sending: a client that has seen every reply
            // must also see consistent counters from the stats endpoint.
            let us = job.enqueued.elapsed().as_secs_f64() * 1e6;
            shared.stats.record_served(job.kind, us);
            job.conn.send(job.id, &reply);
        }
        drop(reply_span);
        drop(batch_span);
    }
}

//! Per-request-kind latency accounting.
//!
//! The server records one latency sample per served request — measured
//! from admission (the read thread enqueuing the job) to the reply frame
//! being handed to the socket, so queueing delay under load is visible,
//! not just compute. Samples land in lock-free log-scale histograms
//! (four buckets per octave of microseconds), from which the stats
//! endpoint derives p50/p99 per kind.
//!
//! Everything here is atomics: recording a sample on the serving path is
//! two relaxed `fetch_add`s, and a [`StatsReport`] is a snapshot — it
//! never blocks the workers.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::wire::{KIND_LABELS, N_KINDS};

/// Buckets per histogram: 4 per octave × 32 octaves covers <1 µs through
/// ~4000 s in one fixed array.
const BUCKETS: usize = 128;
const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// One log-scale latency histogram.
struct Histogram {
    count: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_of(us: f64) -> usize {
        if us <= 1.0 {
            return 0;
        }
        let idx = (us.log2() * BUCKETS_PER_OCTAVE).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower edge of bucket `idx` in microseconds — the conservative
    /// (under-)estimate reported for percentiles.
    fn bucket_floor_us(idx: usize) -> f64 {
        (2f64).powf(idx as f64 / BUCKETS_PER_OCTAVE)
    }

    fn record(&self, us: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// The latency at quantile `q` (0..=1), or 0 when empty. Resolution
    /// is one bucket (±~19%), which is plenty for p50/p99 curves.
    fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor_us(idx);
            }
        }
        Self::bucket_floor_us(BUCKETS - 1)
    }
}

/// Shared counters the server threads write and the stats endpoint reads.
pub struct ServerStats {
    per_kind: [Histogram; N_KINDS],
    served: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU32,
    queue_depth: AtomicU32,
    queue_max_depth: AtomicU32,
    queue_cap: u32,
}

impl ServerStats {
    /// Fresh zeroed counters for a server with the given admission bound.
    pub fn new(queue_cap: u32) -> Self {
        ServerStats {
            per_kind: std::array::from_fn(|_| Histogram::new()),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU32::new(0),
            queue_depth: AtomicU32::new(0),
            queue_max_depth: AtomicU32::new(0),
            queue_cap,
        }
    }

    /// Records one served request of kind `kind_idx` ([`crate::wire::kind_index`]).
    pub fn record_served(&self, kind_idx: usize, latency_us: f64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.per_kind[kind_idx].record(latency_us);
    }

    /// Records one shed (rejected at admission).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one drained batch of `n` requests.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u32, Ordering::Relaxed);
    }

    /// Tracks the admission queue's depth high-water mark.
    pub fn record_queue_depth(&self, depth: usize) {
        let d = depth as u32;
        self.queue_depth.store(d, Ordering::Relaxed);
        self.queue_max_depth.fetch_max(d, Ordering::Relaxed);
    }

    /// Total sheds so far (overload tests poll this).
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Snapshot for the wire. `version` is the serving frame's version at
    /// snapshot time (the caller owns that — stats does not know frames).
    pub fn report(&self, version: u64) -> StatsReport {
        StatsReport {
            version,
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_max_depth: self.queue_max_depth.load(Ordering::Relaxed),
            queue_cap: self.queue_cap,
            kinds: (0..N_KINDS)
                .map(|i| KindRow {
                    kind: KIND_LABELS[i].to_string(),
                    count: self.per_kind[i].count.load(Ordering::Relaxed),
                    p50_us: self.per_kind[i].quantile_us(0.50),
                    p99_us: self.per_kind[i].quantile_us(0.99),
                })
                .collect(),
        }
    }
}

/// One request kind's latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct KindRow {
    /// Stable label ("conceptualize", "recommend", ...).
    pub kind: String,
    /// Requests of this kind served.
    pub count: u64,
    /// Median admission-to-reply latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile admission-to-reply latency, microseconds.
    pub p99_us: f64,
}

/// The stats endpoint's answer — a consistent-enough snapshot of the
/// server's counters (individual fields are atomically read; the set is
/// not fenced, which is fine for monitoring).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Serving frame version the server was publishing at snapshot time.
    pub version: u64,
    /// Requests answered from the serving path.
    pub served: u64,
    /// Requests rejected at admission with [`crate::wire::Reply::Shed`].
    pub shed: u64,
    /// Batches drained by workers.
    pub batches: u64,
    /// Largest coalesced batch so far.
    pub max_batch: u32,
    /// Admission queue depth at snapshot time.
    pub queue_depth: u32,
    /// Queue depth high-water mark — overload tests assert this never
    /// exceeds `queue_cap`.
    pub queue_max_depth: u32,
    /// The configured admission bound.
    pub queue_cap: u32,
    /// Per-kind rows in [`crate::wire::kind_index`] order.
    pub kinds: Vec<KindRow>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_clamped() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(1.0), 0);
        let mut last = 0;
        for us in [2.0, 10.0, 100.0, 1e4, 1e6, 1e9, 1e30] {
            let b = Histogram::bucket_of(us);
            assert!(b >= last, "bucket_of({us}) went backwards");
            last = b;
        }
        assert!(Histogram::bucket_of(1e300) < BUCKETS);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10.0);
        }
        h.record(10_000.0);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // Bucket floors under-report by at most one bucket width (~19%).
        assert!((8.0..=10.0).contains(&p50), "p50 = {p50}");
        assert!((8.0..=10.0).contains(&p99), "p99 = {p99}");
        assert!(h.quantile_us(1.0) > 8_000.0);
    }

    #[test]
    fn report_reflects_recorded_traffic() {
        let s = ServerStats::new(64);
        s.record_served(0, 5.0);
        s.record_served(0, 7.0);
        s.record_served(3, 900.0);
        s.record_shed();
        s.record_batch(2);
        s.record_batch(1);
        s.record_queue_depth(9);
        s.record_queue_depth(3);
        let r = s.report(42);
        assert_eq!(r.version, 42);
        assert_eq!(r.served, 3);
        assert_eq!(r.shed, 1);
        assert_eq!(r.batches, 2);
        assert_eq!(r.max_batch, 2);
        assert_eq!(r.queue_depth, 3);
        assert_eq!(r.queue_max_depth, 9);
        assert_eq!(r.queue_cap, 64);
        assert_eq!(r.kinds.len(), N_KINDS);
        assert_eq!(r.kinds[0].kind, "conceptualize");
        assert_eq!(r.kinds[0].count, 2);
        assert_eq!(r.kinds[3].count, 1);
        assert_eq!(r.kinds[1].count, 0);
        assert_eq!(r.kinds[1].p50_us, 0.0);
    }
}

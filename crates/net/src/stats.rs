//! Per-request-kind latency accounting, now a thin wrapper over the
//! `giant-obs` primitives (DESIGN.md §13).
//!
//! The server records one latency sample per served request — measured
//! from admission (the read thread enqueuing the job) to the reply frame
//! being handed to the socket, so queueing delay under load is visible,
//! not just compute. Samples land in lock-free log-scale histograms
//! ([`giant_obs::Histogram`] — four buckets per octave of microseconds,
//! the design this module originated and `giant-obs` generalised), from
//! which the stats endpoint derives p50/p99 per kind.
//!
//! Counters are **instance-owned**, not global-registry entries: tests
//! and embedders run several servers per process, and each server's
//! [`StatsReport`] must describe that server alone. The wire `Metrics`
//! endpoint merges these rows (namespaced `net.*`, via
//! [`ServerStats::metrics_snapshot`]) with the process-wide registry
//! snapshot.
//!
//! Everything here is atomics: recording a sample on the serving path is
//! a few relaxed `fetch_add`s, and a [`StatsReport`] is a snapshot — it
//! never blocks the workers.

use giant_obs::{Counter, Gauge, Histogram, MetricRow, MetricValue, MetricsSnapshot};

use crate::wire::{KIND_LABELS, N_KINDS};

/// Shared counters the server threads write and the stats endpoint reads.
pub struct ServerStats {
    per_kind: [Histogram; N_KINDS],
    queue_wait: Histogram,
    served: Counter,
    shed: Counter,
    batches: Counter,
    max_batch: Gauge,
    queue_depth: Gauge,
    queue_max_depth: Gauge,
    queue_cap: u32,
}

impl ServerStats {
    /// Fresh zeroed counters for a server with the given admission bound.
    pub fn new(queue_cap: u32) -> Self {
        ServerStats {
            per_kind: std::array::from_fn(|_| Histogram::new()),
            queue_wait: Histogram::new(),
            served: Counter::new(),
            shed: Counter::new(),
            batches: Counter::new(),
            max_batch: Gauge::new(),
            queue_depth: Gauge::new(),
            queue_max_depth: Gauge::new(),
            queue_cap,
        }
    }

    /// Records one served request of kind `kind_idx` ([`crate::wire::kind_index`]).
    pub fn record_served(&self, kind_idx: usize, latency_us: f64) {
        self.served.inc();
        self.per_kind[kind_idx].record(latency_us);
    }

    /// Records one shed (rejected at admission).
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// Records one drained batch of `n` requests.
    pub fn record_batch(&self, n: usize) {
        self.batches.inc();
        self.max_batch.record_max(n as i64);
    }

    /// Records one job's admission-queue wait (enqueue to drain).
    pub fn record_queue_wait(&self, us: f64) {
        self.queue_wait.record(us);
    }

    /// Tracks the admission queue's depth high-water mark.
    pub fn record_queue_depth(&self, depth: usize) {
        let d = depth as i64;
        self.queue_depth.set(d);
        self.queue_max_depth.record_max(d);
    }

    /// Total sheds so far (overload tests poll this).
    pub fn shed_count(&self) -> u64 {
        self.shed.get()
    }

    /// Snapshot for the wire. `version` is the serving frame's version at
    /// snapshot time (the caller owns that — stats does not know frames).
    pub fn report(&self, version: u64) -> StatsReport {
        StatsReport {
            version,
            served: self.served.get(),
            shed: self.shed.get(),
            batches: self.batches.get(),
            max_batch: self.max_batch.get() as u32,
            queue_depth: self.queue_depth.get() as u32,
            queue_max_depth: self.queue_max_depth.get() as u32,
            queue_cap: self.queue_cap,
            kinds: (0..N_KINDS)
                .map(|i| KindRow {
                    kind: KIND_LABELS[i].to_string(),
                    count: self.per_kind[i].count(),
                    p50_us: self.per_kind[i].quantile_us(0.50),
                    p99_us: self.per_kind[i].quantile_us(0.99),
                })
                .collect(),
        }
    }

    /// This server's counters as namespaced `net.*` metric rows — what
    /// the wire `Metrics` endpoint merges with the process registry.
    pub fn metrics_snapshot(&self, version: u64) -> MetricsSnapshot {
        let mut rows = vec![
            MetricRow {
                name: "net.frame.version".to_string(),
                value: MetricValue::Gauge(version as i64),
            },
            MetricRow {
                name: "net.served".to_string(),
                value: MetricValue::Counter(self.served.get()),
            },
            MetricRow {
                name: "net.shed".to_string(),
                value: MetricValue::Counter(self.shed.get()),
            },
            MetricRow {
                name: "net.batches".to_string(),
                value: MetricValue::Counter(self.batches.get()),
            },
            MetricRow {
                name: "net.batch.max".to_string(),
                value: MetricValue::Gauge(self.max_batch.get()),
            },
            MetricRow {
                name: "net.queue.depth".to_string(),
                value: MetricValue::Gauge(self.queue_depth.get()),
            },
            MetricRow {
                name: "net.queue.depth.max".to_string(),
                value: MetricValue::Gauge(self.queue_max_depth.get()),
            },
            MetricRow {
                name: "net.queue.cap".to_string(),
                value: MetricValue::Gauge(i64::from(self.queue_cap)),
            },
            MetricRow {
                name: "net.queue.wait_us".to_string(),
                value: MetricValue::Histogram(self.queue_wait.summary()),
            },
        ];
        for (label, hist) in KIND_LABELS.iter().zip(self.per_kind.iter()) {
            rows.push(MetricRow {
                name: format!("net.latency.{label}"),
                value: MetricValue::Histogram(hist.summary()),
            });
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { rows }
    }
}

/// One request kind's latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct KindRow {
    /// Stable label ("conceptualize", "recommend", ...).
    pub kind: String,
    /// Requests of this kind served.
    pub count: u64,
    /// Median admission-to-reply latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile admission-to-reply latency, microseconds.
    pub p99_us: f64,
}

/// The stats endpoint's answer — a consistent-enough snapshot of the
/// server's counters (individual fields are atomically read; the set is
/// not fenced, which is fine for monitoring).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Serving frame version the server was publishing at snapshot time.
    pub version: u64,
    /// Requests answered from the serving path.
    pub served: u64,
    /// Requests rejected at admission with [`crate::wire::Reply::Shed`].
    pub shed: u64,
    /// Batches drained by workers.
    pub batches: u64,
    /// Largest coalesced batch so far.
    pub max_batch: u32,
    /// Admission queue depth at snapshot time.
    pub queue_depth: u32,
    /// Queue depth high-water mark — overload tests assert this never
    /// exceeds `queue_cap`.
    pub queue_max_depth: u32,
    /// The configured admission bound.
    pub queue_cap: u32,
    /// Per-kind rows in [`crate::wire::kind_index`] order.
    pub kinds: Vec<KindRow>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reflects_recorded_traffic() {
        let s = ServerStats::new(64);
        s.record_served(0, 5.0);
        s.record_served(0, 7.0);
        s.record_served(3, 900.0);
        s.record_shed();
        s.record_batch(2);
        s.record_batch(1);
        s.record_queue_depth(9);
        s.record_queue_depth(3);
        let r = s.report(42);
        assert_eq!(r.version, 42);
        assert_eq!(r.served, 3);
        assert_eq!(r.shed, 1);
        assert_eq!(r.batches, 2);
        assert_eq!(r.max_batch, 2);
        assert_eq!(r.queue_depth, 3);
        assert_eq!(r.queue_max_depth, 9);
        assert_eq!(r.queue_cap, 64);
        assert_eq!(r.kinds.len(), N_KINDS);
        assert_eq!(r.kinds[0].kind, "conceptualize");
        assert_eq!(r.kinds[0].count, 2);
        assert_eq!(r.kinds[3].count, 1);
        assert_eq!(r.kinds[1].count, 0);
        assert_eq!(r.kinds[1].p50_us, 0.0);
    }

    /// The generalised histogram must report the same percentiles the
    /// private implementation always did — the byte-compat contract.
    #[test]
    fn quantiles_match_the_pre_obs_implementation() {
        let s = ServerStats::new(8);
        for _ in 0..99 {
            s.record_served(1, 10.0);
        }
        s.record_served(1, 10_000.0);
        let r = s.report(0);
        assert!((8.0..=10.0).contains(&r.kinds[1].p50_us), "p50 = {}", r.kinds[1].p50_us);
        assert!((8.0..=10.0).contains(&r.kinds[1].p99_us), "p99 = {}", r.kinds[1].p99_us);
    }

    #[test]
    fn metrics_snapshot_rows_are_namespaced_and_sorted() {
        let s = ServerStats::new(16);
        s.record_served(0, 5.0);
        s.record_queue_wait(2.5);
        s.record_shed();
        let snap = s.metrics_snapshot(7);
        let names: Vec<&str> = snap.rows.iter().map(|r| r.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "rows must come out sorted");
        assert!(names.contains(&"net.queue.wait_us"));
        assert!(names.contains(&"net.latency.conceptualize"));
        assert_eq!(snap.counter("net.served"), Some(1));
        assert_eq!(snap.counter("net.shed"), Some(1));
        assert_eq!(snap.get("net.frame.version"), Some(&MetricValue::Gauge(7)));
        match snap.get("net.queue.wait_us") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum_us, 3); // 2.5 µs rounds to 3
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}

//! A small blocking client for the wire protocol.
//!
//! Supports both the simple one-shot shape ([`NetClient::call`]) and
//! pipelining ([`NetClient::send`] many ids, then [`NetClient::recv`]
//! each): the server's worker pool may complete requests out of send
//! order, so received frames are parked in a pending map until their id
//! is asked for.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};

use giant_apps::serving::ServeRequest;

use crate::wire::{decode_reply, encode_request_frame, read_frame, NetError, Reply, Request};

/// One connection to a `giant-net` server.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    pending: HashMap<u64, Reply>,
}

impl NetClient {
    /// Connects to a server (e.g. `server.local_addr()` or `"host:port"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(NetClient {
            stream: TcpStream::connect(addr)?,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    /// Sends one request without waiting; returns the id to [`recv`](Self::recv) on.
    pub fn send(&mut self, req: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request_frame(id, req)?;
        self.stream.write_all(&frame)?;
        Ok(id)
    }

    /// Blocks until the reply for `id` arrives. Replies to other
    /// in-flight ids received meanwhile are parked, not dropped.
    pub fn recv(&mut self, id: u64) -> Result<Reply, NetError> {
        if let Some(reply) = self.pending.remove(&id) {
            return Ok(reply);
        }
        loop {
            let (got_id, payload) = read_frame(&mut self.stream)?;
            let reply = decode_reply(&payload)?;
            // A Reply::Bad precedes a server-side close; surface it for
            // whichever id is being waited on.
            if let Reply::Bad { reason } = &reply {
                return Err(NetError::Rejected {
                    reason: reason.clone(),
                });
            }
            if got_id == id {
                return Ok(reply);
            }
            self.pending.insert(got_id, reply);
        }
    }

    /// One-shot: send a request and wait for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Reply, NetError> {
        let id = self.send(req)?;
        self.recv(id)
    }

    /// Convenience for the common case of a serving request.
    pub fn serve(&mut self, req: ServeRequest) -> Result<Reply, NetError> {
        self.call(&Request::Serve(req))
    }

    /// Fetches the server's stats snapshot.
    pub fn stats(&mut self) -> Result<crate::stats::StatsReport, NetError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(report) => Ok(report),
            other => Err(NetError::Rejected {
                reason: format!("expected a stats reply, got {other:?}"),
            }),
        }
    }

    /// Fetches the server's unified metrics snapshot (`net.*` rows plus
    /// every registered `giant-obs` metric in its process).
    pub fn metrics(&mut self) -> Result<giant_obs::MetricsSnapshot, NetError> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(snap) => Ok(snap),
            other => Err(NetError::Rejected {
                reason: format!("expected a metrics reply, got {other:?}"),
            }),
        }
    }
}

//! # giant-net — the network front door for the `OntologyService`
//!
//! The serving layer (`giant_apps::serving`) answers typed
//! [`ServeRequest`](giant_apps::ServeRequest)s in microseconds, but only
//! in-process. This crate puts a server in front of it — the deployment
//! shape of the paper's production system, where one ontology serves
//! recommendation and tagging traffic for millions of browser users:
//!
//! * [`wire`] — a length-prefixed, checksummed binary protocol over TCP,
//!   built on the same `giant_ontology::binio` primitives (and the same
//!   frame discipline) as the checkpoint and WAL formats. Every message
//!   decodes to a typed value or a typed [`NetError`] —
//!   never a panic, never an unbounded allocation.
//! * [`server`] — accept/read threads feed a **bounded admission queue**;
//!   worker threads drain it, **coalescing concurrent requests into
//!   `giant_exec::run_ordered` batches** through
//!   `OntologyService::serve_batch`, so a served answer is byte-identical
//!   to the in-process answer at any thread count and any batch
//!   composition. When the queue is full the server *sheds*: the client
//!   gets a typed [`Reply::Shed`](wire::Reply) immediately instead of the
//!   server queuing without bound.
//! * [`stats`] — per-request-kind latency accounting (p50/p99 over
//!   `giant-obs` log-scale histograms) served over the wire as a stats
//!   endpoint, so operators can watch SLOs without touching the serving
//!   path. The wider `Request::Metrics` endpoint merges these `net.*`
//!   rows with the process-wide `giant-obs` registry — WAL counters,
//!   span histograms, ingest counters — into one report (DESIGN.md §13).
//! * [`client`] — a small blocking client supporting both one-shot calls
//!   and pipelined send/receive (what the load generator and the
//!   equivalence suite drive).
//!
//! ## Determinism contract
//!
//! A response's bytes depend only on the request and the published frame:
//! `encode_reply(serve(req))` over the socket equals
//! `encode_reply(frame.serve(req))` in-process, regardless of server
//! thread count, batch size, or which batch a request happened to ride
//! in. `tests/net_equivalence.rs` (workspace root) byte-asserts this at
//! 1/2/4 server threads and several coalescing limits.

pub mod client;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::NetClient;
pub use server::{Server, ServerConfig};
pub use stats::{KindRow, StatsReport};
pub use wire::{NetError, Reply, Request, MAX_PAYLOAD};

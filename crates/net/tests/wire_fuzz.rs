//! Fuzz-style hardening of the wire layer, in the flip-a-byte discipline
//! of `tests/persistence_roundtrip.rs`:
//!
//! * encode → decode is the identity, and the codec is **canonical**:
//!   anything that decodes re-encodes to exactly the input bytes;
//! * any single flipped byte in a frame is detected (typed error, never a
//!   panic and never a silently different message);
//! * arbitrary garbage payloads never panic the decoder — they either
//!   decode (and then re-encode canonically) or fail with a typed error;
//! * announced lengths beyond the cap are rejected before allocation.

use giant_apps::serving::ServeRequest;
use giant_net::wire::{
    decode_reply, decode_request, encode_frame, read_frame, write_request, Request, MAX_PAYLOAD,
};
use giant_net::NetError;
use giant_ontology::binio::Writer;
use giant_ontology::NodeId;
use proptest::prelude::*;

/// Adversarial text: separators, escapes, multi-byte UTF-8, empties.
const PALETTE: [&str; 8] = ["a", "bc", " ", "\n", "\t", "\\", "é", ""];

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..4)
        .prop_map(|ixs| ixs.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..7,
        arb_text(),
        proptest::collection::vec(arb_text(), 0..3),
        0u32..=u32::MAX,
    )
        .prop_map(|(kind, text, texts, id)| match kind {
            0 => Request::Serve(ServeRequest::Conceptualize { query: text }),
            1 => Request::Serve(ServeRequest::Recommend { query: text }),
            2 => Request::Serve(ServeRequest::TagDocument {
                title: text,
                sentences: texts,
            }),
            3 => Request::Serve(ServeRequest::StoryTree { seed: NodeId(id) }),
            // Reuse the id draw for both the root choice and its value, so
            // None and Some roots are each exercised.
            4 => Request::Serve(ServeRequest::ExportSubgraph {
                root: (id % 2 == 0).then_some(NodeId(id)),
            }),
            5 => Request::Stats,
            _ => Request::Metrics,
        })
}

fn encode_request_payload(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    write_request(&mut w, req);
    w.into_bytes_checked().expect("small message")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode → encode is the identity on request bytes.
    #[test]
    fn request_codec_is_canonical(req in arb_request()) {
        let bytes = encode_request_payload(&req);
        let back = decode_request(&bytes).expect("own encoding must decode");
        prop_assert_eq!(bytes, encode_request_payload(&back));
    }

    /// Any single flipped byte anywhere in a frame — header or payload —
    /// fails typed. No flip may yield a different request silently,
    /// because the checksum covers id + payload and the header fields
    /// must agree with it.
    #[test]
    fn any_single_byte_flip_in_a_frame_is_detected(
        req in arb_request(),
        id in 0u64..=u64::MAX,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frame = encode_frame(id, encode_request_payload(&req)).expect("frame");
        let mut bad = frame.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        match read_frame(&mut &bad[..]) {
            Err(_) => {} // typed rejection: Io (short read), TooLarge, or ChecksumMismatch
            Ok(_) => prop_assert!(false, "flip at byte {} of {} went undetected", pos, frame.len()),
        }
    }

    /// Garbage in, typed error (or a canonical decode) out — the decoders
    /// must never panic and never accept a non-canonical encoding.
    #[test]
    fn garbage_payloads_never_panic_the_decoders(bytes in proptest::collection::vec(0u8..=u8::MAX, 0..64)) {
        if let Ok(req) = decode_request(&bytes) {
            prop_assert_eq!(&bytes, &encode_request_payload(&req));
        }
        if let Ok(reply) = decode_reply(&bytes) {
            let mut w = Writer::new();
            giant_net::wire::write_reply(&mut w, &reply);
            prop_assert_eq!(&bytes, &w.into_bytes_checked().expect("small message"));
        }
    }

    /// A header announcing an oversized payload is rejected from the
    /// header alone — the payload allocation never happens.
    #[test]
    fn oversized_announcements_are_rejected_before_allocation(
        over in 1u32..=u32::MAX - MAX_PAYLOAD,
        id in 0u64..=u64::MAX,
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_PAYLOAD + over).to_le_bytes());
        frame.extend_from_slice(&id.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        match read_frame(&mut &frame[..]) {
            Err(NetError::TooLarge { len, max }) => {
                prop_assert_eq!(len, u64::from(MAX_PAYLOAD + over));
                prop_assert_eq!(max, u64::from(MAX_PAYLOAD));
            }
            other => prop_assert!(false, "expected TooLarge, got {:?}", other.map(|_| ())),
        }
    }
}

//! Deterministic partitioning of the click graph into K disjoint shards.
//!
//! The sharded pipeline (ROADMAP: "shard the build, federate the serve")
//! runs the full plan→execute→merge mining pass per shard over a
//! *private* click graph, so partitioning must be a pure function of the
//! graph's content — independent of thread counts, of hash-map iteration
//! order, and of the order in which clicks happened to arrive.
//!
//! The split is **document-led**: the caller supplies a shard hint per
//! document (in GIANT, the level-1 category subtree the doc's leaf
//! category hangs under — the "horizontal segmentation" boundary of
//! PAPERS.md), and [`partition`] then assigns each *query* to the shard
//! holding the majority of its click mass. Queries whose mass ties across
//! shards — the cross-subtree components — fall back to a hash of the
//! query *text* (the cluster-hash fallback), never of its id, so the
//! choice survives re-interning in a different order.
//!
//! Edges whose query and document land on different shards are **boundary
//! edges**: they are excluded from every per-shard graph (each shard is
//! self-contained) and reported exactly in a [`BoundaryReport`], which the
//! federation stage uses to bound and account for the mass the split
//! ignored.
//!
//! ## Determinism
//!
//! * Per-query per-shard click mass is accumulated by **sorted
//!   summation**: the edge weights going to one shard are sorted by bit
//!   pattern before summing, so the result is identical for every edge
//!   insertion order (f64 addition is not associative; sorting restores a
//!   canonical order).
//! * Ties pick from the tied shard set by FNV-1a of the query text.
//! * Local ids in each shard graph are the global order restricted to the
//!   shard: `query_map`/`doc_map` are strictly ascending in global id, so
//!   stable assignments yield *prefix-extending* maps across incremental
//!   folds — the property the sharded caches key on.

use crate::click::{ClickGraph, DocId, QueryId};

/// FNV-1a 64-bit over a byte string. Stable, dependency-free, and fast;
/// used only for tie-breaking (and by callers routing keyless items, e.g.
/// sessions whose queries never reached the click graph) so distribution
/// quality is a non-issue.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sums `weights` in a canonical order (ascending bit pattern), making the
/// result independent of the caller's accumulation order.
fn sorted_sum(weights: &mut [u64]) -> f64 {
    weights.sort_unstable();
    weights.iter().map(|&b| f64::from_bits(b)).sum()
}

/// An edge `(q, d)` whose endpoints were assigned to different shards.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryEdge {
    /// Global query id.
    pub query: QueryId,
    /// Global doc id.
    pub doc: DocId,
    /// Shard owning the query.
    pub query_shard: usize,
    /// Shard owning the doc.
    pub doc_shard: usize,
    /// Click count on the edge.
    pub clicks: f64,
}

/// Exact accounting of the edges a K-way split severed.
#[derive(Debug, Clone, Default)]
pub struct BoundaryReport {
    /// Every severed edge, in (query id, edge row) order.
    pub edges: Vec<BoundaryEdge>,
    /// Total severed click mass (in-order sum over `edges`).
    pub mass: f64,
    /// Total click mass of the input graph (same canonical resum).
    pub total_mass: f64,
}

impl BoundaryReport {
    /// Fraction of total click mass the split severed (0 when the graph
    /// is empty).
    pub fn severed_fraction(&self) -> f64 {
        if self.total_mass == 0.0 {
            0.0
        } else {
            self.mass / self.total_mass
        }
    }
}

/// One shard's private click graph plus its id translation tables.
#[derive(Debug, Clone)]
pub struct GraphShard {
    /// The shard-local click graph (boundary edges removed).
    pub graph: ClickGraph,
    /// Local query id → global query id; strictly ascending.
    pub query_map: Vec<u32>,
    /// Local doc id → global doc id; strictly ascending.
    pub doc_map: Vec<u32>,
}

/// The full output of [`partition`].
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards K.
    pub k: usize,
    /// Per-global-query shard assignment.
    pub query_shard: Vec<usize>,
    /// Per-global-doc shard assignment (verbatim copy of the caller's
    /// hints, padded to the doc universe).
    pub doc_shard: Vec<usize>,
    /// The per-shard graphs and id maps, indexed by shard.
    pub shards: Vec<GraphShard>,
    /// Exact report of severed cross-shard edges.
    pub boundary: BoundaryReport,
}

/// Splits `g` into `k` disjoint shards.
///
/// `doc_shard[d]` is the caller's shard hint for global doc `d` (values
/// `< k`); its length defines the document universe and must cover every
/// doc the graph knows (`doc_shard.len() >= g.n_docs()`). Docs beyond the
/// graph's click range (clickless corpus docs) are carried into their
/// shard's `doc_map` so the per-shard corpus stays aligned with the
/// per-shard graph.
///
/// Queries go to the shard holding the strict majority of their click
/// mass (sorted summation per shard; ties broken by FNV-1a of the query
/// text over the tied set). `k == 0` is treated as `k == 1`.
pub fn partition(g: &ClickGraph, doc_shard: &[usize], k: usize) -> ShardPlan {
    let k = k.max(1);
    assert!(
        doc_shard.len() >= g.n_docs(),
        "doc universe ({}) smaller than click graph ({})",
        doc_shard.len(),
        g.n_docs()
    );
    for (d, &s) in doc_shard.iter().enumerate() {
        assert!(s < k, "doc {d} hinted to shard {s} but k={k}");
    }

    // --- assign queries by majority mass -------------------------------
    let mut query_shard = Vec::with_capacity(g.n_queries());
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); k];
    for q in g.query_ids() {
        for w in per_shard.iter_mut() {
            w.clear();
        }
        for &(d, c) in g.docs_of(q) {
            per_shard[doc_shard[d.index()]].push(c.to_bits());
        }
        let masses: Vec<f64> = per_shard.iter_mut().map(|w| sorted_sum(w)).collect();
        let best = masses
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| if b > a { b } else { a });
        let tied: Vec<usize> = (0..k).filter(|&s| masses[s] == best).collect();
        let shard = if tied.len() == 1 {
            tied[0]
        } else {
            // Cross-subtree component (or clickless query): hash the TEXT
            // so the pick survives any re-interning order.
            let h = fnv1a64(g.query_text(q).as_bytes());
            tied[(h % tied.len() as u64) as usize]
        };
        query_shard.push(shard);
    }

    // --- id maps: global order restricted to each shard -----------------
    let mut query_maps: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (q, &s) in query_shard.iter().enumerate() {
        query_maps[s].push(q as u32);
    }
    let mut doc_maps: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut doc_local = vec![0u32; doc_shard.len()];
    for (d, &s) in doc_shard.iter().enumerate() {
        doc_local[d] = doc_maps[s].len() as u32;
        doc_maps[s].push(d as u32);
    }

    // --- boundary report + canonical total mass -------------------------
    let mut boundary = BoundaryReport::default();
    for q in g.query_ids() {
        let qs = query_shard[q.index()];
        for &(d, c) in g.docs_of(q) {
            boundary.total_mass += c;
            let ds = doc_shard[d.index()];
            if ds != qs {
                boundary.mass += c;
                boundary.edges.push(BoundaryEdge {
                    query: q,
                    doc: d,
                    query_shard: qs,
                    doc_shard: ds,
                    clicks: c,
                });
            }
        }
    }

    // --- build each shard's private graph -------------------------------
    let mut shards = Vec::with_capacity(k);
    for (s, (query_map, doc_map)) in query_maps.into_iter().zip(doc_maps).enumerate() {
        let queries: Vec<String> = query_map
            .iter()
            .map(|&q| g.query_text(QueryId(q)).to_owned())
            .collect();
        let mut query_local = std::collections::HashMap::new();
        for (lq, &q) in query_map.iter().enumerate() {
            query_local.insert(QueryId(q), QueryId(lq as u32));
        }
        // Edge rows keep their global row order (insertion order), only
        // filtered and re-id'd — a fold and a rebuild that produced the
        // same global graph bytes produce the same shard graph bytes.
        let q_edges: Vec<Vec<(DocId, f64)>> = query_map
            .iter()
            .map(|&q| {
                g.docs_of(QueryId(q))
                    .iter()
                    .filter(|(d, _)| doc_shard[d.index()] == s)
                    .map(|&(d, c)| (DocId(doc_local[d.index()]), c))
                    .collect()
            })
            .collect();
        let d_edges: Vec<Vec<(QueryId, f64)>> = doc_map
            .iter()
            .map(|&d| {
                g.queries_of(DocId(d))
                    .iter()
                    .filter(|(q, _)| query_shard[q.index()] == s)
                    .map(|&(q, c)| (query_local[&q], c))
                    .collect()
            })
            .collect();
        // The shard's running total is the canonical in-order resum of its
        // rows: arrival order within one shard is not recoverable, and the
        // resum is identical for any history that built these rows.
        let total: f64 = q_edges
            .iter()
            .map(|row| row.iter().map(|(_, c)| c).sum::<f64>())
            .sum();
        shards.push(GraphShard {
            graph: ClickGraph::from_parts(queries, q_edges, d_edges, total),
            query_map,
            doc_map,
        });
    }

    ShardPlan {
        k,
        query_shard,
        doc_shard: doc_shard.to_vec(),
        shards,
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClickGraph {
        let mut g = ClickGraph::new();
        g.add_clicks("family road trip vehicles", DocId(0), 10.0);
        g.add_clicks("family road trip vehicles", DocId(1), 30.0);
        g.add_clicks("honda odyssey review", DocId(1), 20.0);
        g.add_clicks("honda odyssey review", DocId(2), 5.0);
        g.add_clicks("summer beach tips", DocId(3), 8.0);
        g
    }

    #[test]
    fn k1_is_the_identity_partition() {
        let g = sample();
        let plan = partition(&g, &[0, 0, 0, 0], 1);
        assert_eq!(plan.k, 1);
        assert!(plan.boundary.edges.is_empty());
        assert_eq!(plan.boundary.mass, 0.0);
        let shard = &plan.shards[0];
        assert_eq!(shard.query_map, vec![0, 1, 2]);
        assert_eq!(shard.doc_map, vec![0, 1, 2, 3]);
        assert_eq!(shard.graph.n_queries(), g.n_queries());
        assert_eq!(shard.graph.n_docs(), g.n_docs());
        for q in g.query_ids() {
            assert_eq!(shard.graph.docs_of(q), g.docs_of(q));
            assert_eq!(shard.graph.query_text(q), g.query_text(q));
        }
    }

    #[test]
    fn queries_follow_majority_mass_and_boundary_is_exact() {
        let g = sample();
        // Docs 0,1 → shard 0; docs 2,3 → shard 1.
        let plan = partition(&g, &[0, 0, 1, 1], 2);
        let q0 = g.query_id("family road trip vehicles").unwrap();
        let q1 = g.query_id("honda odyssey review").unwrap();
        let q2 = g.query_id("summer beach tips").unwrap();
        assert_eq!(plan.query_shard[q0.index()], 0); // all 40 mass on shard 0
        assert_eq!(plan.query_shard[q1.index()], 0); // 20 vs 5
        assert_eq!(plan.query_shard[q2.index()], 1); // all mass on shard 1
        // Exactly one severed edge: honda→doc2 (5 clicks).
        assert_eq!(plan.boundary.edges.len(), 1);
        let be = &plan.boundary.edges[0];
        assert_eq!((be.query, be.doc, be.clicks), (q1, DocId(2), 5.0));
        assert_eq!((be.query_shard, be.doc_shard), (0, 1));
        assert_eq!(plan.boundary.mass, 5.0);
        assert_eq!(plan.boundary.total_mass, 73.0);
        // Shard 0 graph: both queries, docs {0,1}, no doc2 edge.
        let s0 = &plan.shards[0];
        assert_eq!(s0.doc_map, vec![0, 1]);
        assert_eq!(s0.graph.n_queries(), 2);
        let lq1 = s0.graph.query_id("honda odyssey review").unwrap();
        assert_eq!(s0.graph.docs_of(lq1), &[(DocId(1), 20.0)]);
        // Shard 1 graph: the beach query only, docs {2,3} re-id'd.
        let s1 = &plan.shards[1];
        assert_eq!(s1.doc_map, vec![2, 3]);
        assert_eq!(s1.graph.n_queries(), 1);
        let lq2 = s1.graph.query_id("summer beach tips").unwrap();
        assert_eq!(s1.graph.docs_of(lq2), &[(DocId(1), 8.0)]);
    }

    #[test]
    fn tie_break_uses_query_text_not_id() {
        // One query with equal mass on both shards: assignment must be a
        // pure function of the text.
        let mut a = ClickGraph::new();
        a.add_clicks("decoy", DocId(0), 1.0);
        a.add_clicks("torn between worlds", DocId(0), 7.0);
        a.add_clicks("torn between worlds", DocId(1), 7.0);
        let mut b = ClickGraph::new(); // same content, different intern order
        b.add_clicks("torn between worlds", DocId(1), 7.0);
        b.add_clicks("torn between worlds", DocId(0), 7.0);
        b.add_clicks("decoy", DocId(0), 1.0);
        let pa = partition(&a, &[0, 1], 2);
        let pb = partition(&b, &[0, 1], 2);
        let qa = a.query_id("torn between worlds").unwrap();
        let qb = b.query_id("torn between worlds").unwrap();
        assert_eq!(
            pa.query_shard[qa.index()],
            pb.query_shard[qb.index()],
            "tie-break must not depend on intern order"
        );
    }

    #[test]
    fn clickless_docs_ride_into_their_shard_map() {
        let mut g = ClickGraph::new();
        g.add_clicks("q", DocId(0), 1.0);
        // Universe of 4 docs, only doc 0 clicked.
        let plan = partition(&g, &[0, 1, 0, 1], 2);
        assert_eq!(plan.shards[0].doc_map, vec![0, 2]);
        assert_eq!(plan.shards[1].doc_map, vec![1, 3]);
        assert_eq!(plan.shards[0].graph.n_docs(), 2);
        assert_eq!(plan.shards[1].graph.n_docs(), 2);
        assert_eq!(plan.shards[1].graph.n_queries(), 0);
    }

    #[test]
    fn maps_are_strictly_ascending() {
        let g = sample();
        let plan = partition(&g, &[1, 0, 1, 0], 2);
        for shard in &plan.shards {
            assert!(shard.query_map.windows(2).all(|w| w[0] < w[1]));
            assert!(shard.doc_map.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

//! The bipartite search click graph `G_sc = (Q, D, E)` of paper §3.1.
//!
//! Edges carry click counts `c(q_i, d_j)`; the transport probabilities
//!
//! ```text
//! P(d_j | q_i) = c(q_i, d_j) / Σ_{d_k ∈ N(q_i)} c(q_i, d_k)      (eq. 1)
//! P(q_i | d_j) = c(q_i, d_j) / Σ_{q_k ∈ N(d_j)} c(q_k, d_j)      (eq. 2)
//! ```
//!
//! drive the random walk in [`crate::walk`].

use std::collections::HashMap;

/// Dense id of a query node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a document node. Document payloads (title, category, time)
/// live in the data layer; the click graph only stores the linkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A saved endpoint row: its edge list and cached total at savepoint time.
type SavedRow<Id, Peer> = (Id, Vec<(Peer, f64)>, f64);

/// A bit-exact rollback point for a batch of click edits — see
/// [`ClickGraph::savepoint`].
#[derive(Debug)]
pub struct ClickSavepoint {
    n_queries: usize,
    n_docs: usize,
    total_clicks_bits: u64,
    saved_queries: Vec<SavedRow<QueryId, DocId>>,
    saved_docs: Vec<SavedRow<DocId, QueryId>>,
}

/// Weighted bipartite query–document click graph.
#[derive(Debug, Clone, Default)]
pub struct ClickGraph {
    queries: Vec<String>,
    query_index: HashMap<String, QueryId>,
    /// Per-query outgoing clicks `(doc, count)`.
    q_edges: Vec<Vec<(DocId, f64)>>,
    /// Per-doc incoming clicks `(query, count)`.
    d_edges: Vec<Vec<(QueryId, f64)>>,
    /// Cached per-query totals, kept bit-identical to an in-order sum over
    /// `q_edges[q]` (recomputed on every insert — the walk kernel reads
    /// totals once per touched node per iteration, so lookups must be O(1)).
    q_totals: Vec<f64>,
    /// Cached per-doc totals (same contract as `q_totals`).
    d_totals: Vec<f64>,
    total_clicks: f64,
}

impl ClickGraph {
    /// An empty click graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a query string, returning its id.
    pub fn intern_query(&mut self, query: &str) -> QueryId {
        if let Some(&id) = self.query_index.get(query) {
            return id;
        }
        let id = QueryId(self.queries.len() as u32);
        self.queries.push(query.to_owned());
        self.query_index.insert(query.to_owned(), id);
        self.q_edges.push(Vec::new());
        self.q_totals.push(0.0);
        id
    }

    /// Ensures doc storage covers `doc`.
    fn ensure_doc(&mut self, doc: DocId) {
        if doc.index() >= self.d_edges.len() {
            self.d_edges.resize(doc.index() + 1, Vec::new());
            self.d_totals.resize(doc.index() + 1, 0.0);
        }
    }

    /// Records `count` clicks from `query` to `doc` (accumulates).
    pub fn add_clicks(&mut self, query: &str, doc: DocId, count: f64) -> QueryId {
        assert!(count >= 0.0, "negative click count");
        let q = self.intern_query(query);
        self.ensure_doc(doc);
        // Cached-total maintenance must stay bit-compatible with the
        // in-order edge sum the pre-cache `query_clicks` computed at read
        // time. Appending a new edge extends that sum on the right, so
        // `total + count` is exact and O(1); merging into an *interior*
        // edge changes a middle term, so only a full in-order resum
        // reproduces the same rounding.
        match self.q_edges[q.index()].iter_mut().find(|(d, _)| *d == doc) {
            Some((_, c)) => {
                *c += count;
                self.q_totals[q.index()] = self.q_edges[q.index()].iter().map(|(_, c)| c).sum();
            }
            None => {
                self.q_edges[q.index()].push((doc, count));
                self.q_totals[q.index()] += count;
            }
        }
        match self.d_edges[doc.index()].iter_mut().find(|(qq, _)| *qq == q) {
            Some((_, c)) => {
                *c += count;
                self.d_totals[doc.index()] =
                    self.d_edges[doc.index()].iter().map(|(_, c)| c).sum();
            }
            None => {
                self.d_edges[doc.index()].push((q, count));
                self.d_totals[doc.index()] += count;
            }
        }
        self.total_clicks += count;
        q
    }

    /// Number of query nodes.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of document slots (max doc id + 1).
    pub fn n_docs(&self) -> usize {
        self.d_edges.len()
    }

    /// Total click mass.
    pub fn total_clicks(&self) -> f64 {
        self.total_clicks
    }

    /// The query string for `q`.
    pub fn query_text(&self, q: QueryId) -> &str {
        &self.queries[q.index()]
    }

    /// Id of an existing query string.
    pub fn query_id(&self, query: &str) -> Option<QueryId> {
        self.query_index.get(query).copied()
    }

    /// All query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        (0..self.queries.len() as u32).map(QueryId)
    }

    /// `(doc, count)` pairs clicked from `q`.
    pub fn docs_of(&self, q: QueryId) -> &[(DocId, f64)] {
        &self.q_edges[q.index()]
    }

    /// `(query, count)` pairs that clicked `d`.
    pub fn queries_of(&self, d: DocId) -> &[(QueryId, f64)] {
        if d.index() < self.d_edges.len() {
            &self.d_edges[d.index()]
        } else {
            &[]
        }
    }

    /// Raw click count `c(q, d)`.
    pub fn clicks(&self, q: QueryId, d: DocId) -> f64 {
        self.q_edges[q.index()]
            .iter()
            .find(|(dd, _)| *dd == d)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Total clicks issued from `q` (cached, O(1)).
    pub fn query_clicks(&self, q: QueryId) -> f64 {
        self.q_totals[q.index()]
    }

    /// Total clicks received by `d` (cached, O(1)).
    pub fn doc_clicks(&self, d: DocId) -> f64 {
        if d.index() < self.d_totals.len() {
            self.d_totals[d.index()]
        } else {
            0.0
        }
    }

    /// Transport probability `P(d | q)` (eq. 1). Zero when `q` has no clicks.
    pub fn p_doc_given_query(&self, q: QueryId, d: DocId) -> f64 {
        let total = self.query_clicks(q);
        if total == 0.0 {
            0.0
        } else {
            self.clicks(q, d) / total
        }
    }

    /// Transport probability `P(q | d)` (eq. 2). Zero when `d` has no clicks.
    pub fn p_query_given_doc(&self, q: QueryId, d: DocId) -> f64 {
        let total = self.doc_clicks(d);
        if total == 0.0 {
            0.0
        } else {
            self.clicks(q, d) / total
        }
    }

    /// Rebuilds a click graph from its serialized parts (checkpoint
    /// restore): query strings in id order, per-query and per-doc edge
    /// lists exactly as stored, and the historical running click total.
    ///
    /// The cached per-node totals are recomputed as in-order sums over the
    /// supplied edge lists — which is bit-exact: [`ClickGraph::add_clicks`]
    /// maintains each total as precisely that in-order sum (appends extend
    /// the sum on the right; interior merges trigger a full in-order
    /// resum), so after any mutation history the stored total *is* the
    /// in-order sum of the final edge list. `total_clicks` is the one
    /// value whose accumulation order is the (unrecoverable) global
    /// arrival order, so it is carried through verbatim.
    pub fn from_parts(
        queries: Vec<String>,
        q_edges: Vec<Vec<(DocId, f64)>>,
        d_edges: Vec<Vec<(QueryId, f64)>>,
        total_clicks: f64,
    ) -> Self {
        assert_eq!(queries.len(), q_edges.len(), "one edge row per query");
        let query_index = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.clone(), QueryId(i as u32)))
            .collect();
        let q_totals = q_edges.iter().map(|es| es.iter().map(|(_, c)| c).sum()).collect();
        let d_totals = d_edges.iter().map(|es| es.iter().map(|(_, c)| c).sum()).collect();
        Self {
            queries,
            query_index,
            q_edges,
            d_edges,
            q_totals,
            d_totals,
            total_clicks,
        }
    }

    /// Captures a bit-exact savepoint covering a prospective batch of
    /// click edits: the current node counts, the running total, and a
    /// verbatim copy of every edge row (plus cached total) the batch's
    /// `queries`/`docs` endpoints would touch. New queries and new doc
    /// slots need no saved rows — [`ClickGraph::rollback`] truncates them
    /// wholesale.
    ///
    /// The savepoint is only valid for rolling back edits whose endpoints
    /// were all declared here; cost is O(touched rows), not O(graph).
    pub fn savepoint<'a>(
        &self,
        queries: impl IntoIterator<Item = &'a str>,
        docs: impl IntoIterator<Item = usize>,
    ) -> ClickSavepoint {
        let mut saved_queries = Vec::new();
        let mut seen_q = std::collections::HashSet::new();
        for text in queries {
            if let Some(q) = self.query_id(text) {
                if seen_q.insert(q) {
                    saved_queries.push((q, self.q_edges[q.index()].clone(), self.q_totals[q.index()]));
                }
            }
        }
        let mut saved_docs = Vec::new();
        let mut seen_d = std::collections::HashSet::new();
        for d in docs {
            if d < self.d_edges.len() && seen_d.insert(d) {
                saved_docs.push((DocId(d as u32), self.d_edges[d].clone(), self.d_totals[d]));
            }
        }
        ClickSavepoint {
            n_queries: self.queries.len(),
            n_docs: self.d_edges.len(),
            total_clicks_bits: self.total_clicks.to_bits(),
            saved_queries,
            saved_docs,
        }
    }

    /// Rolls the graph back to `sp`, bit-exactly: queries and doc slots
    /// created since the savepoint are dropped (including their interned
    /// strings), every saved edge row and cached total is restored
    /// verbatim, and the running click total reverts to its saved bits.
    pub fn rollback(&mut self, sp: ClickSavepoint) {
        for q in self.queries.drain(sp.n_queries..) {
            self.query_index.remove(&q);
        }
        self.q_edges.truncate(sp.n_queries);
        self.q_totals.truncate(sp.n_queries);
        self.d_edges.truncate(sp.n_docs);
        self.d_totals.truncate(sp.n_docs);
        for (q, row, total) in sp.saved_queries {
            self.q_edges[q.index()] = row;
            self.q_totals[q.index()] = total;
        }
        for (d, row, total) in sp.saved_docs {
            self.d_edges[d.index()] = row;
            self.d_totals[d.index()] = total;
        }
        self.total_clicks = f64::from_bits(sp.total_clicks_bits);
    }

    /// Top-`k` documents of `q` by click count (ties broken by doc id for
    /// determinism). Used for context-enriched phrase representations.
    pub fn top_docs(&self, q: QueryId, k: usize) -> Vec<DocId> {
        let mut pairs: Vec<(DocId, f64)> = self.docs_of(q).to_vec();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        pairs.into_iter().take(k).map(|(d, _)| d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> ClickGraph {
        let mut g = ClickGraph::new();
        g.add_clicks("family road trip vehicles", DocId(0), 10.0);
        g.add_clicks("family road trip vehicles", DocId(1), 30.0);
        g.add_clicks("honda odyssey review", DocId(1), 20.0);
        g.add_clicks("honda odyssey review", DocId(2), 5.0);
        g
    }

    #[test]
    fn accumulates_clicks() {
        let mut g = sample();
        let q = g.add_clicks("family road trip vehicles", DocId(0), 5.0);
        assert_eq!(g.clicks(q, DocId(0)), 15.0);
        assert_eq!(g.n_queries(), 2);
        assert_eq!(g.n_docs(), 3);
        assert_eq!(g.total_clicks(), 70.0);
    }

    #[test]
    fn transport_probabilities_match_eq1_eq2() {
        let g = sample();
        let q0 = g.query_id("family road trip vehicles").unwrap();
        let q1 = g.query_id("honda odyssey review").unwrap();
        assert!((g.p_doc_given_query(q0, DocId(1)) - 0.75).abs() < 1e-12);
        assert!((g.p_doc_given_query(q0, DocId(0)) - 0.25).abs() < 1e-12);
        assert!((g.p_query_given_doc(q0, DocId(1)) - 0.6).abs() < 1e-12);
        assert!((g.p_query_given_doc(q1, DocId(1)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn missing_edges_have_zero_probability() {
        let g = sample();
        let q1 = g.query_id("honda odyssey review").unwrap();
        assert_eq!(g.clicks(q1, DocId(0)), 0.0);
        assert_eq!(g.p_doc_given_query(q1, DocId(0)), 0.0);
        assert_eq!(g.p_query_given_doc(q1, DocId(7)), 0.0);
    }

    #[test]
    fn top_docs_ordering() {
        let g = sample();
        let q0 = g.query_id("family road trip vehicles").unwrap();
        assert_eq!(g.top_docs(q0, 2), vec![DocId(1), DocId(0)]);
        assert_eq!(g.top_docs(q0, 1), vec![DocId(1)]);
    }

    #[test]
    fn savepoint_rolls_back_bit_exactly() {
        let mut g = sample();
        let before_edges: Vec<Vec<(DocId, f64)>> =
            g.query_ids().map(|q| g.docs_of(q).to_vec()).collect();
        let before_total = g.total_clicks().to_bits();
        // A batch touching an existing edge, a new edge on an existing
        // query, a brand-new query and a brand-new doc slot.
        let batch: Vec<(&str, usize, f64)> = vec![
            ("family road trip vehicles", 0, 2.5),
            ("honda odyssey review", 0, 1.0),
            ("toyota sienna cargo space", 5, 4.0),
        ];
        let sp = g.savepoint(
            batch.iter().map(|(q, _, _)| *q),
            batch.iter().map(|(_, d, _)| *d),
        );
        for (q, d, c) in &batch {
            g.add_clicks(q, DocId(*d as u32), *c);
        }
        assert_eq!(g.n_queries(), 3);
        assert_eq!(g.n_docs(), 6);
        g.rollback(sp);
        assert_eq!(g.n_queries(), 2);
        assert_eq!(g.n_docs(), 3);
        assert!(g.query_id("toyota sienna cargo space").is_none());
        assert_eq!(g.total_clicks().to_bits(), before_total);
        for (i, q) in g.query_ids().enumerate() {
            assert_eq!(g.docs_of(q), before_edges[i].as_slice());
            let resum: f64 = g.docs_of(q).iter().map(|(_, c)| c).sum();
            assert_eq!(g.query_clicks(q).to_bits(), resum.to_bits());
        }
        // The graph still behaves normally after rollback.
        let q = g.add_clicks("family road trip vehicles", DocId(0), 5.0);
        assert_eq!(g.clicks(q, DocId(0)), 15.0);
    }

    proptest! {
        /// Rolling back a random batch restores every observable — node
        /// counts, edge rows, cached totals, running total — bit for bit.
        #[test]
        fn savepoint_rollback_is_identity(
            base in proptest::collection::vec((0u32..5, 0u32..5, 1u32..20), 0..25),
            batch in proptest::collection::vec((0u32..8, 0u32..8, 1u32..20), 1..25),
        ) {
            let mut g = ClickGraph::new();
            for (q, d, c) in &base {
                g.add_clicks(&format!("q{q}"), DocId(*d), *c as f64);
            }
            let dump = |g: &ClickGraph| -> String {
                let mut s = format!("{} {} {:x}\n", g.n_queries(), g.n_docs(),
                    g.total_clicks().to_bits());
                for q in g.query_ids() {
                    s.push_str(&format!("{} {:x} {:?}\n", g.query_text(q),
                        g.query_clicks(q).to_bits(), g.docs_of(q)));
                }
                for d in 0..g.n_docs() {
                    let d = DocId(d as u32);
                    s.push_str(&format!("{:x} {:?}\n", g.doc_clicks(d).to_bits(),
                        g.queries_of(d)));
                }
                s
            };
            let before = dump(&g);
            let texts: Vec<String> = batch.iter().map(|(q, _, _)| format!("q{q}")).collect();
            let sp = g.savepoint(
                texts.iter().map(|s| s.as_str()),
                batch.iter().map(|(_, d, _)| *d as usize),
            );
            for (i, (_, d, c)) in batch.iter().enumerate() {
                g.add_clicks(&texts[i], DocId(*d), *c as f64);
            }
            g.rollback(sp);
            prop_assert_eq!(dump(&g), before);
        }

        /// P(·|q) over the clicked docs of q always sums to 1 (or q has no mass).
        #[test]
        fn doc_distribution_normalizes(edges in proptest::collection::vec(
            (0u32..6, 0u32..6, 1u32..50), 1..40)
        ) {
            let mut g = ClickGraph::new();
            for (q, d, c) in &edges {
                g.add_clicks(&format!("q{q}"), DocId(*d), *c as f64);
            }
            for q in g.query_ids() {
                let s: f64 = g.docs_of(q).iter()
                    .map(|(d, _)| g.p_doc_given_query(q, *d)).sum();
                prop_assert!((s - 1.0).abs() < 1e-9);
            }
            for d in 0..g.n_docs() {
                let d = DocId(d as u32);
                if g.doc_clicks(d) > 0.0 {
                    let s: f64 = g.queries_of(d).iter()
                        .map(|(q, _)| g.p_query_given_doc(*q, d)).sum();
                    prop_assert!((s - 1.0).abs() < 1e-9);
                }
            }
        }
    }
}

//! # giant-graph — click-graph substrate for the GIANT reproduction
//!
//! GIANT mines user attentions from a *search click graph*: the bipartite
//! graph whose left nodes are queries, right nodes are documents, and whose
//! weighted edges count how often a query led to a click on a document
//! (paper §3.1). This crate provides:
//!
//! * [`digraph`] — a generic directed graph with typed edges and BFS hop
//!   distances (used by the QTIG ATSP decoder and the ontology).
//! * [`click`] — the bipartite [`click::ClickGraph`] with the
//!   transport probabilities of eq. (1)/(2).
//! * [`walk`] — random walk with restart computing deterministic visit
//!   probabilities from a seed query.
//! * [`cluster`] — query–doc cluster extraction with the visit-probability
//!   threshold `δ_v` and the "more than half non-stop-word overlap" filter.
//! * [`plan`] — the sequential cluster-planning pass that partitions the
//!   query space into disjoint work items for parallel mining.

pub mod click;
pub mod cluster;
pub mod digraph;
pub mod plan;
pub mod shard;
pub mod walk;

pub use click::{ClickGraph, ClickSavepoint, DocId, QueryId};
pub use cluster::{extract_cluster, extract_cluster_tracked, extract_cluster_with, ClusterConfig, QueryDocCluster};
pub use digraph::DiGraph;
pub use plan::{plan_clusters, plan_clusters_cached, plan_clusters_parallel, ClusterPlan, ClusterWorkItem, DirtySet, PlanCache};
pub use shard::{partition, BoundaryEdge, BoundaryReport, GraphShard, ShardPlan};
pub use walk::{walk_from, WalkConfig, WalkFootprint, WalkResult, Walker};

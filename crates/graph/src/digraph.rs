//! A small directed multigraph with typed edges.
//!
//! Used by the ATSP decoder (BFS shortest-path costs over the directed-seq
//! QTIG variant) and as the backing store for ontology adjacency. Nodes are
//! dense `usize` ids; edge payloads are generic.

use std::collections::VecDeque;

/// Directed graph with dense node ids and typed edges.
#[derive(Debug, Clone)]
pub struct DiGraph<R> {
    out: Vec<Vec<(u32, R)>>,
    incoming: Vec<Vec<(u32, R)>>,
    n_edges: usize,
}

impl<R> Default for DiGraph<R> {
    fn default() -> Self {
        Self {
            out: Vec::new(),
            incoming: Vec::new(),
            n_edges: 0,
        }
    }
}

impl<R: Clone> DiGraph<R> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            out: vec![Vec::new(); n],
            incoming: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        self.out.len() - 1
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Adds a directed edge `u -> v` with payload `rel`.
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, rel: R) {
        assert!(u < self.n_nodes() && v < self.n_nodes(), "node out of range");
        self.out[u].push((v as u32, rel.clone()));
        self.incoming[v].push((u as u32, rel));
        self.n_edges += 1;
    }

    /// Outgoing `(target, payload)` pairs of `u`.
    pub fn out_edges(&self, u: usize) -> &[(u32, R)] {
        &self.out[u]
    }

    /// Incoming `(source, payload)` pairs of `v`.
    pub fn in_edges(&self, v: usize) -> &[(u32, R)] {
        &self.incoming[v]
    }

    /// True when any `u -> v` edge exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out[u].iter().any(|(t, _)| *t as usize == v)
    }

    /// True when an edge `u -> v` or `v -> u` exists.
    pub fn has_edge_undirected(&self, u: usize, v: usize) -> bool {
        self.has_edge(u, v) || self.has_edge(v, u)
    }

    /// BFS hop distance from `src` to every node (`None` when unreachable).
    pub fn bfs_hops(&self, src: usize) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.n_nodes()];
        let mut q = VecDeque::new();
        dist[src] = Some(0);
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("visited");
            for (v, _) in &self.out[u] {
                let v = *v as usize;
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// True when a path `src -> … -> dst` exists.
    pub fn reachable(&self, src: usize, dst: usize) -> bool {
        self.bfs_hops(src)[dst].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<&'static str> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, "a");
        g.add_edge(1, 3, "b");
        g.add_edge(0, 2, "c");
        g.add_edge(2, 3, "d");
        g
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.has_edge_undirected(1, 0));
        assert_eq!(g.out_edges(0).len(), 2);
        assert_eq!(g.in_edges(3).len(), 2);
    }

    #[test]
    fn bfs_distances() {
        let g = diamond();
        let d = g.bfs_hops(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(1), Some(2)]);
        let d3 = g.bfs_hops(3);
        assert_eq!(d3[0], None);
        assert!(g.reachable(0, 3));
        assert!(!g.reachable(3, 0));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g: DiGraph<u8> = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1);
        assert_eq!(g.n_nodes(), 2);
        assert!(g.has_edge(a, b));
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn edge_bounds_checked() {
        let mut g: DiGraph<u8> = DiGraph::with_nodes(1);
        g.add_edge(0, 5, 0);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1, "x");
        g.add_edge(0, 1, "y");
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.out_edges(0).len(), 2);
    }
}

//! Random walk with restart over the click graph.
//!
//! Paper §3.1: "From query q, we perform random walk according to transport
//! probabilities calculated above and compute the weights of visited queries
//! and documents." We compute the *stationary visit probabilities* exactly by
//! power iteration instead of Monte-Carlo sampling — the result is the same
//! quantity, deterministic, and cheap because each walk only touches the
//! seed's local neighbourhood.

use crate::click::{ClickGraph, DocId, QueryId};
use std::collections::BTreeMap;

/// Random-walk parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Restart probability back to the seed query at every step.
    pub restart: f64,
    /// Maximum power-iteration rounds (one round = query step + doc step).
    pub max_iter: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            restart: 0.3,
            max_iter: 12,
            tol: 1e-8,
        }
    }
}

/// Visit probabilities produced by [`walk_from`].
#[derive(Debug, Clone, Default)]
pub struct WalkResult {
    /// Visit probability per reached query.
    pub query_probs: BTreeMap<QueryId, f64>,
    /// Visit probability per reached document.
    pub doc_probs: BTreeMap<DocId, f64>,
}

impl WalkResult {
    /// Queries ordered by decreasing probability (ties by id, deterministic).
    pub fn ordered_queries(&self) -> Vec<(QueryId, f64)> {
        let mut v: Vec<(QueryId, f64)> = self.query_probs.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// Documents ordered by decreasing probability (ties by id).
    pub fn ordered_docs(&self) -> Vec<(DocId, f64)> {
        let mut v: Vec<(DocId, f64)> = self.doc_probs.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }
}

/// Runs a random walk with restart from `seed`, alternating
/// query→doc (eq. 1) and doc→query (eq. 2) steps, and returns visit
/// probabilities over the touched neighbourhood.
///
/// Internally the iteration runs over **dense per-layer buffers** instead
/// of fresh `BTreeMap`s: hub documents fan walks out to most of the
/// component, so tree inserts and their allocations dominated the old
/// implementation (this function is the pipeline's hottest kernel — every
/// planned cluster pays for one walk). Determinism is preserved exactly:
/// each layer keeps the id set it would have held as tree keys
/// (`SparseLayer`, membership-flag exact) and sorts it before every
/// ordered scan, so ids are visited in the same ascending order a
/// `BTreeMap` iterates, every f64 accumulation happens in the identical
/// sequence, and the results are bit-for-bit those of the tree-based
/// walk. Scans touch only registered ids — never a gap between them,
/// never the whole graph — so sparse neighbourhoods stay cheap no matter
/// how the component's ids are distributed.
pub fn walk_from(g: &ClickGraph, seed: QueryId, cfg: &WalkConfig) -> WalkResult {
    Walker::for_graph(g).walk(g, seed, cfg)
}

/// Reusable dense walk state. One walk allocates graph-sized buffers; the
/// planner (`giant_graph::plan::plan_clusters_parallel`) amortises them by
/// keeping one `Walker` per participant of its `giant_exec::run_speculative`
/// pipeline instead of reallocating per seed. Results are identical to a
/// fresh walker's: layers are empty on entry and re-emptied on exit, so no
/// state crosses walks.
#[derive(Debug, Clone)]
pub struct Walker {
    qp: SparseLayer,
    dp: SparseLayer,
    next_qp: SparseLayer,
    next_dp: SparseLayer,
}

impl Walker {
    /// A walker sized for `g` (buffers grow if a larger graph is walked).
    pub fn for_graph(g: &ClickGraph) -> Self {
        Self {
            qp: SparseLayer::with_capacity(g.n_queries()),
            dp: SparseLayer::with_capacity(g.n_docs()),
            next_qp: SparseLayer::with_capacity(g.n_queries()),
            next_dp: SparseLayer::with_capacity(g.n_docs()),
        }
    }

    fn ensure_capacity(&mut self, g: &ClickGraph) {
        self.qp.grow(g.n_queries());
        self.next_qp.grow(g.n_queries());
        self.dp.grow(g.n_docs());
        self.next_dp.grow(g.n_docs());
    }

    /// Runs one random walk with restart, reusing this walker's buffers.
    /// Bit-identical to [`walk_from`].
    pub fn walk(&mut self, g: &ClickGraph, seed: QueryId, cfg: &WalkConfig) -> WalkResult {
        self.ensure_capacity(g);
        let (qp, dp) = (&mut self.qp, &mut self.dp);
        let (next_qp, next_dp) = (&mut self.next_qp, &mut self.next_dp);
        qp.insert(seed.index(), 1.0);

        for _ in 0..cfg.max_iter {
            // Query layer -> doc layer.
            for &qi in qp.ids() {
                let qi = qi as usize;
                let p = qp.get(qi);
                if p == 0.0 {
                    continue;
                }
                let q = QueryId(qi as u32);
                let total = g.query_clicks(q);
                if total == 0.0 {
                    continue;
                }
                for (d, c) in g.docs_of(q) {
                    next_dp.add(d.index(), p * (c / total));
                }
            }
            next_dp.sort_ids();
            // Doc layer -> query layer, restart mass returning to the seed.
            next_qp.insert(seed.index(), cfg.restart);
            for &di in next_dp.ids() {
                let di = di as usize;
                let p = next_dp.get(di);
                if p == 0.0 {
                    continue;
                }
                let d = DocId(di as u32);
                let total = g.doc_clicks(d);
                if total == 0.0 {
                    continue;
                }
                for (q, c) in g.queries_of(d) {
                    next_qp.add(q.index(), (1.0 - cfg.restart) * p * (c / total));
                }
            }
            next_qp.sort_ids();
            // L1 delta, in ascending id order: entries of the new state
            // first, then vanished entries of the old — the exact term
            // order the tree-based implementation summed in (its first
            // clause iterated next_qp's keys, its second the old keys
            // absent from next_qp).
            let mut delta = 0.0f64;
            for &qi in next_qp.ids() {
                let qi = qi as usize;
                delta += (next_qp.get(qi) - qp.get(qi)).abs();
            }
            for &qi in qp.ids() {
                let qi = qi as usize;
                if !next_qp.contains(qi) {
                    delta += qp.get(qi).abs();
                }
            }
            // Advance: empty the old layers, swap in the new state.
            qp.clear();
            std::mem::swap(qp, next_qp);
            dp.clear();
            std::mem::swap(dp, next_dp);
            if delta < cfg.tol {
                break;
            }
        }

        // Materialise the sparse public view (ascending id order, like
        // the trees the API exposes), then empty the layers so the next
        // walk starts clean.
        let mut query_probs: BTreeMap<QueryId, f64> = BTreeMap::new();
        for &qi in qp.ids() {
            let p = qp.get(qi as usize);
            if p != 0.0 {
                query_probs.insert(QueryId(qi), p);
            }
        }
        let mut doc_probs: BTreeMap<DocId, f64> = BTreeMap::new();
        for &di in dp.ids() {
            let p = dp.get(di as usize);
            if p != 0.0 {
                doc_probs.insert(DocId(di), p);
            }
        }
        qp.clear();
        dp.clear();
        WalkResult {
            query_probs,
            doc_probs,
        }
    }
}

/// One layer of sparse walk state over a dense value buffer: membership
/// flags make insertion O(1) and the id list bounds every scan to the
/// entries actually present (never a gap, never the whole graph). The id
/// list mirrors a `BTreeMap`'s key set exactly — including keys holding
/// `0.0` — and iterating it after [`SparseLayer::sort_ids`] visits keys
/// in the same ascending order the tree would, which is what keeps every
/// f64 accumulation bit-identical to the tree-based implementation.
#[derive(Debug, Clone, Default)]
struct SparseLayer {
    vals: Vec<f64>,
    present: Vec<bool>,
    ids: Vec<u32>,
    min_id: usize,
    max_id: usize,
}

impl SparseLayer {
    fn with_capacity(n: usize) -> Self {
        Self {
            vals: vec![0.0; n],
            present: vec![false; n],
            ids: Vec::new(),
            min_id: usize::MAX,
            max_id: 0,
        }
    }

    fn grow(&mut self, n: usize) {
        if self.vals.len() < n {
            self.vals.resize(n, 0.0);
            self.present.resize(n, false);
        }
    }

    #[inline]
    fn register(&mut self, i: usize) {
        if !self.present[i] {
            self.present[i] = true;
            self.ids.push(i as u32);
            self.min_id = self.min_id.min(i);
            self.max_id = self.max_id.max(i);
        }
    }

    /// Tree-`insert` analogue: sets the value, registering the id.
    fn insert(&mut self, i: usize, v: f64) {
        self.register(i);
        self.vals[i] = v;
    }

    /// Tree-`entry().or_insert(0.0) +=` analogue.
    #[inline]
    fn add(&mut self, i: usize, term: f64) {
        self.register(i);
        self.vals[i] += term;
    }

    /// Value at `i` (0.0 when absent, like `get().copied().unwrap_or(0.0)`).
    #[inline]
    fn get(&self, i: usize) -> f64 {
        self.vals[i]
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.present[i]
    }

    /// Puts the id list into ascending (tree key) order. Call once per
    /// accumulation phase, before any ordered scan. When the occupied
    /// span is dense a membership scan rebuilds the list in O(span);
    /// when ids are scattered across a wide span it sorts instead — so
    /// neither contiguous components nor pathologically interleaved ones
    /// degrade. Both paths produce the identical ascending exact id
    /// list, keeping iteration order (and so every f64 accumulation)
    /// independent of which one ran.
    fn sort_ids(&mut self) {
        if self.ids.is_empty() {
            return;
        }
        let span = self.max_id - self.min_id + 1;
        if span <= self.ids.len().saturating_mul(8) {
            self.ids.clear();
            for i in self.min_id..=self.max_id {
                if self.present[i] {
                    self.ids.push(i as u32);
                }
            }
        } else {
            self.ids.sort_unstable();
        }
    }

    /// Registered ids (ascending iff [`SparseLayer::sort_ids`] ran after
    /// the last insertion).
    fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Removes every entry, restoring the all-absent invariant.
    fn clear(&mut self) {
        for &i in &self.ids {
            self.vals[i as usize] = 0.0;
            self.present[i as usize] = false;
        }
        self.ids.clear();
        self.min_id = usize::MAX;
        self.max_id = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disconnected components; the walk must stay inside the seed's.
    fn two_component_graph() -> ClickGraph {
        let mut g = ClickGraph::new();
        // Component A: q0, q1 share doc 0; q1 also clicks doc 1.
        g.add_clicks("qa0", DocId(0), 10.0);
        g.add_clicks("qa1", DocId(0), 10.0);
        g.add_clicks("qa1", DocId(1), 10.0);
        // Component B: q2 clicks doc 2.
        g.add_clicks("qb2", DocId(2), 50.0);
        g
    }

    #[test]
    fn walk_stays_in_component() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        assert!(r.query_probs.contains_key(&g.query_id("qa1").unwrap()));
        assert!(!r.query_probs.contains_key(&g.query_id("qb2").unwrap()));
        assert!(!r.doc_probs.contains_key(&DocId(2)));
    }

    #[test]
    fn seed_has_highest_query_probability() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        let ordered = r.ordered_queries();
        assert_eq!(ordered[0].0, seed);
        // All probabilities in (0, 1].
        for (_, p) in &ordered {
            assert!(*p > 0.0 && *p <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn query_mass_is_conserved() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        // After a doc->query step all doc mass (plus restart) lands on
        // queries, so the query layer always sums to 1.
        let total: f64 = r.query_probs.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total query mass = {total}");
    }

    #[test]
    fn stronger_coclick_means_higher_probability() {
        let mut g = ClickGraph::new();
        g.add_clicks("seed", DocId(0), 100.0);
        g.add_clicks("seed", DocId(1), 1.0);
        g.add_clicks("close", DocId(0), 100.0);
        g.add_clicks("far", DocId(1), 100.0);
        let seed = g.query_id("seed").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        let close = r.query_probs[&g.query_id("close").unwrap()];
        let far = r.query_probs[&g.query_id("far").unwrap()];
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn isolated_seed_keeps_all_mass() {
        let mut g = ClickGraph::new();
        let seed = g.intern_query("lonely");
        let r = walk_from(&g, seed, &WalkConfig::default());
        assert_eq!(r.query_probs.len(), 1);
        assert!(r.doc_probs.is_empty());
    }
}

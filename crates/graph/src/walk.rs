//! Random walk with restart over the click graph.
//!
//! Paper §3.1: "From query q, we perform random walk according to transport
//! probabilities calculated above and compute the weights of visited queries
//! and documents." We compute the *stationary visit probabilities* exactly by
//! power iteration instead of Monte-Carlo sampling — the result is the same
//! quantity, deterministic, and cheap because each walk only touches the
//! seed's local neighbourhood.

use crate::click::{ClickGraph, DocId, QueryId};
use std::collections::BTreeMap;

/// Random-walk parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Restart probability back to the seed query at every step.
    pub restart: f64,
    /// Maximum power-iteration rounds (one round = query step + doc step).
    pub max_iter: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
    /// Frontier prune: after each accumulation step, nodes holding less
    /// than this visit probability are dropped from the layer (their mass
    /// vanishes). Cluster extraction keeps only nodes above `δ_v` (0.01 —
    /// 0.03 in this repo), so carrying mass orders of magnitude below it
    /// across hub documents buys nothing but cost — on realistic logs a
    /// few uniform noise clicks weld the graph into one giant component,
    /// and an unpruned walk then reads (and depends on) *every* node of
    /// it. Pruning keeps the walk local: footprints shrink from the
    /// component to the meaningful neighbourhood, which is what makes
    /// walks fast and incremental invalidation selective. `0.0` restores
    /// the exhaustive behaviour.
    pub min_mass: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            restart: 0.3,
            max_iter: 12,
            tol: 1e-8,
            min_mass: 3e-3,
        }
    }
}

/// Visit probabilities produced by [`walk_from`].
#[derive(Debug, Clone, Default)]
pub struct WalkResult {
    /// Visit probability per reached query.
    pub query_probs: BTreeMap<QueryId, f64>,
    /// Visit probability per reached document.
    pub doc_probs: BTreeMap<DocId, f64>,
}

impl WalkResult {
    /// Queries ordered by decreasing probability (ties by id, deterministic).
    pub fn ordered_queries(&self) -> Vec<(QueryId, f64)> {
        let mut v: Vec<(QueryId, f64)> = self.query_probs.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// Documents ordered by decreasing probability (ties by id).
    pub fn ordered_docs(&self) -> Vec<(DocId, f64)> {
        let mut v: Vec<(DocId, f64)> = self.doc_probs.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }
}

/// Runs a random walk with restart from `seed`, alternating
/// query→doc (eq. 1) and doc→query (eq. 2) steps, and returns visit
/// probabilities over the touched neighbourhood.
///
/// Internally the iteration runs over **dense per-layer buffers** instead
/// of fresh `BTreeMap`s: hub documents fan walks out to most of the
/// component, so tree inserts and their allocations dominated the old
/// implementation (this function is the pipeline's hottest kernel — every
/// planned cluster pays for one walk). Determinism is preserved exactly:
/// each layer keeps the id set it would have held as tree keys
/// (`SparseLayer`, membership-flag exact) and sorts it before every
/// ordered scan, so ids are visited in the same ascending order a
/// `BTreeMap` iterates, every f64 accumulation happens in the identical
/// sequence, and the results are bit-for-bit those of the tree-based
/// walk. Scans touch only registered ids — never a gap between them,
/// never the whole graph — so sparse neighbourhoods stay cheap no matter
/// how the component's ids are distributed.
pub fn walk_from(g: &ClickGraph, seed: QueryId, cfg: &WalkConfig) -> WalkResult {
    Walker::for_graph(g).walk(g, seed, cfg)
}

/// The set of graph nodes whose edge lists (or cached totals) a walk
/// **read**: every query/document that carried nonzero mass in any
/// iteration. The walk's output is a pure function of exactly these nodes'
/// adjacency — if none of them changed between two graphs, re-walking the
/// same seed on the new graph reproduces the old result bit for bit (the
/// incremental planner's invalidation rule; see [`crate::plan::PlanCache`]).
///
/// The argument is inductive: the walk starts as `{seed}`, and each
/// iteration's frontier is computed only from the edges and totals of nodes
/// already carrying mass. If every such node is unchanged, every iteration
/// — and therefore the result — is unchanged. A graph edit can only steer
/// the walk by touching a node the walk actually reads, and any such node
/// is in this set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalkFootprint {
    /// Touched query ids, ascending.
    pub queries: Vec<u32>,
    /// Touched doc ids, ascending.
    pub docs: Vec<u32>,
}

impl WalkFootprint {
    /// Total touched nodes.
    pub fn len(&self) -> usize {
        self.queries.len() + self.docs.len()
    }

    /// True when nothing was touched (never the case for a real walk — the
    /// seed is always read).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty() && self.docs.is_empty()
    }
}

/// Reusable dense walk state. One walk allocates graph-sized buffers; the
/// planner (`giant_graph::plan::plan_clusters_parallel`) amortises them by
/// keeping one `Walker` per participant of its `giant_exec::run_speculative`
/// pipeline instead of reallocating per seed. Results are identical to a
/// fresh walker's: layers are empty on entry and re-emptied on exit, so no
/// state crosses walks.
#[derive(Debug, Clone)]
pub struct Walker {
    qp: SparseLayer,
    dp: SparseLayer,
    next_qp: SparseLayer,
    next_dp: SparseLayer,
    /// Touched-query flags for footprint tracking (empty outside walks).
    tq: TouchSet,
    /// Touched-doc flags for footprint tracking.
    td: TouchSet,
}

impl Walker {
    /// A walker sized for `g` (buffers grow if a larger graph is walked).
    pub fn for_graph(g: &ClickGraph) -> Self {
        Self {
            qp: SparseLayer::with_capacity(g.n_queries()),
            dp: SparseLayer::with_capacity(g.n_docs()),
            next_qp: SparseLayer::with_capacity(g.n_queries()),
            next_dp: SparseLayer::with_capacity(g.n_docs()),
            tq: TouchSet::with_capacity(g.n_queries()),
            td: TouchSet::with_capacity(g.n_docs()),
        }
    }

    fn ensure_capacity(&mut self, g: &ClickGraph) {
        self.qp.grow(g.n_queries());
        self.next_qp.grow(g.n_queries());
        self.dp.grow(g.n_docs());
        self.next_dp.grow(g.n_docs());
        self.tq.grow(g.n_queries());
        self.td.grow(g.n_docs());
    }

    /// Runs one random walk with restart, reusing this walker's buffers.
    /// Bit-identical to [`walk_from`].
    pub fn walk(&mut self, g: &ClickGraph, seed: QueryId, cfg: &WalkConfig) -> WalkResult {
        self.walk_impl(g, seed, cfg, false)
    }

    /// [`Walker::walk`] plus the walk's [`WalkFootprint`]. The probability
    /// result is bit-identical to the untracked walk's — tracking only
    /// records which nodes the iteration read, it never alters the
    /// arithmetic or its order.
    pub fn walk_tracked(
        &mut self,
        g: &ClickGraph,
        seed: QueryId,
        cfg: &WalkConfig,
    ) -> (WalkResult, WalkFootprint) {
        let result = self.walk_impl(g, seed, cfg, true);
        let footprint = WalkFootprint {
            queries: self.tq.drain_sorted(),
            docs: self.td.drain_sorted(),
        };
        (result, footprint)
    }

    fn walk_impl(
        &mut self,
        g: &ClickGraph,
        seed: QueryId,
        cfg: &WalkConfig,
        track: bool,
    ) -> WalkResult {
        self.ensure_capacity(g);
        let (qp, dp) = (&mut self.qp, &mut self.dp);
        let (next_qp, next_dp) = (&mut self.next_qp, &mut self.next_dp);
        let (tq, td) = (&mut self.tq, &mut self.td);
        qp.insert(seed.index(), 1.0);
        if track {
            // The seed's adjacency is read even when max_iter is 0 in
            // spirit (the result depends on the seed existing), so it is
            // always part of the footprint.
            tq.touch(seed.index());
        }

        for _ in 0..cfg.max_iter {
            // Query layer -> doc layer.
            for &qi in qp.ids() {
                let qi = qi as usize;
                let p = qp.get(qi);
                if p == 0.0 {
                    continue;
                }
                if track {
                    // Both `query_clicks` and `docs_of` of this node are
                    // read below: the walk depends on its adjacency.
                    tq.touch(qi);
                }
                let q = QueryId(qi as u32);
                let total = g.query_clicks(q);
                if total == 0.0 {
                    continue;
                }
                for (d, c) in g.docs_of(q) {
                    next_dp.add(d.index(), p * (c / total));
                }
            }
            next_dp.prune_below(cfg.min_mass);
            next_dp.sort_ids();
            // Doc layer -> query layer, restart mass returning to the seed.
            next_qp.insert(seed.index(), cfg.restart);
            for &di in next_dp.ids() {
                let di = di as usize;
                let p = next_dp.get(di);
                if p == 0.0 {
                    continue;
                }
                if track {
                    td.touch(di);
                }
                let d = DocId(di as u32);
                let total = g.doc_clicks(d);
                if total == 0.0 {
                    continue;
                }
                for (q, c) in g.queries_of(d) {
                    next_qp.add(q.index(), (1.0 - cfg.restart) * p * (c / total));
                }
            }
            next_qp.prune_below(cfg.min_mass);
            next_qp.sort_ids();
            // L1 delta, in ascending id order: entries of the new state
            // first, then vanished entries of the old — the exact term
            // order the tree-based implementation summed in (its first
            // clause iterated next_qp's keys, its second the old keys
            // absent from next_qp).
            let mut delta = 0.0f64;
            for &qi in next_qp.ids() {
                let qi = qi as usize;
                delta += (next_qp.get(qi) - qp.get(qi)).abs();
            }
            for &qi in qp.ids() {
                let qi = qi as usize;
                if !next_qp.contains(qi) {
                    delta += qp.get(qi).abs();
                }
            }
            // Advance: empty the old layers, swap in the new state.
            qp.clear();
            std::mem::swap(qp, next_qp);
            dp.clear();
            std::mem::swap(dp, next_dp);
            if delta < cfg.tol {
                break;
            }
        }

        // Materialise the sparse public view (ascending id order, like
        // the trees the API exposes), then empty the layers so the next
        // walk starts clean.
        let mut query_probs: BTreeMap<QueryId, f64> = BTreeMap::new();
        for &qi in qp.ids() {
            let p = qp.get(qi as usize);
            if p != 0.0 {
                query_probs.insert(QueryId(qi), p);
            }
        }
        let mut doc_probs: BTreeMap<DocId, f64> = BTreeMap::new();
        for &di in dp.ids() {
            let p = dp.get(di as usize);
            if p != 0.0 {
                doc_probs.insert(DocId(di), p);
            }
        }
        qp.clear();
        dp.clear();
        WalkResult {
            query_probs,
            doc_probs,
        }
    }
}

/// One layer of sparse walk state over a dense value buffer: membership
/// flags make insertion O(1) and the id list bounds every scan to the
/// entries actually present (never a gap, never the whole graph). The id
/// list mirrors a `BTreeMap`'s key set exactly — including keys holding
/// `0.0` — and iterating it after [`SparseLayer::sort_ids`] visits keys
/// in the same ascending order the tree would, which is what keeps every
/// f64 accumulation bit-identical to the tree-based implementation.
#[derive(Debug, Clone, Default)]
struct SparseLayer {
    vals: Vec<f64>,
    present: Vec<bool>,
    ids: Vec<u32>,
    min_id: usize,
    max_id: usize,
}

impl SparseLayer {
    fn with_capacity(n: usize) -> Self {
        Self {
            vals: vec![0.0; n],
            present: vec![false; n],
            ids: Vec::new(),
            min_id: usize::MAX,
            max_id: 0,
        }
    }

    fn grow(&mut self, n: usize) {
        if self.vals.len() < n {
            self.vals.resize(n, 0.0);
            self.present.resize(n, false);
        }
    }

    #[inline]
    fn register(&mut self, i: usize) {
        if !self.present[i] {
            self.present[i] = true;
            self.ids.push(i as u32);
            self.min_id = self.min_id.min(i);
            self.max_id = self.max_id.max(i);
        }
    }

    /// Tree-`insert` analogue: sets the value, registering the id.
    fn insert(&mut self, i: usize, v: f64) {
        self.register(i);
        self.vals[i] = v;
    }

    /// Tree-`entry().or_insert(0.0) +=` analogue.
    #[inline]
    fn add(&mut self, i: usize, term: f64) {
        self.register(i);
        self.vals[i] += term;
    }

    /// Value at `i` (0.0 when absent, like `get().copied().unwrap_or(0.0)`).
    #[inline]
    fn get(&self, i: usize) -> f64 {
        self.vals[i]
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.present[i]
    }

    /// Puts the id list into ascending (tree key) order. Call once per
    /// accumulation phase, before any ordered scan. When the occupied
    /// span is dense a membership scan rebuilds the list in O(span);
    /// when ids are scattered across a wide span it sorts instead — so
    /// neither contiguous components nor pathologically interleaved ones
    /// degrade. Both paths produce the identical ascending exact id
    /// list, keeping iteration order (and so every f64 accumulation)
    /// independent of which one ran.
    fn sort_ids(&mut self) {
        if self.ids.is_empty() {
            return;
        }
        let span = self.max_id - self.min_id + 1;
        if span <= self.ids.len().saturating_mul(8) {
            self.ids.clear();
            for i in self.min_id..=self.max_id {
                if self.present[i] {
                    self.ids.push(i as u32);
                }
            }
        } else {
            self.ids.sort_unstable();
        }
    }

    /// Registered ids (ascending iff [`SparseLayer::sort_ids`] ran after
    /// the last insertion).
    fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Drops every entry holding less than `min` (their mass vanishes and
    /// the id is unregistered, so later scans never visit them). A no-op
    /// at `min <= 0.0`. Value-based and order-independent, so pruning
    /// keeps the walk deterministic at every thread count.
    fn prune_below(&mut self, min: f64) {
        if min <= 0.0 {
            return;
        }
        let mut kept = Vec::with_capacity(self.ids.len());
        let (mut min_id, mut max_id) = (usize::MAX, 0usize);
        for &i in &self.ids {
            let idx = i as usize;
            if self.vals[idx] < min {
                self.vals[idx] = 0.0;
                self.present[idx] = false;
            } else {
                kept.push(i);
                min_id = min_id.min(idx);
                max_id = max_id.max(idx);
            }
        }
        self.ids = kept;
        self.min_id = min_id;
        self.max_id = max_id;
    }

    /// Removes every entry, restoring the all-absent invariant.
    fn clear(&mut self) {
        for &i in &self.ids {
            self.vals[i as usize] = 0.0;
            self.present[i as usize] = false;
        }
        self.ids.clear();
        self.min_id = usize::MAX;
        self.max_id = 0;
    }
}

/// A reusable membership set over dense ids: O(1) insert, drained into a
/// sorted id list once per tracked walk. Like [`SparseLayer`] it grows
/// monotonically with the graph and is emptied after every use so no state
/// crosses walks.
#[derive(Debug, Clone, Default)]
struct TouchSet {
    present: Vec<bool>,
    ids: Vec<u32>,
}

impl TouchSet {
    fn with_capacity(n: usize) -> Self {
        Self {
            present: vec![false; n],
            ids: Vec::new(),
        }
    }

    fn grow(&mut self, n: usize) {
        if self.present.len() < n {
            self.present.resize(n, false);
        }
    }

    #[inline]
    fn touch(&mut self, i: usize) {
        if !self.present[i] {
            self.present[i] = true;
            self.ids.push(i as u32);
        }
    }

    /// Returns the touched ids ascending and resets the set to empty.
    fn drain_sorted(&mut self) -> Vec<u32> {
        for &i in &self.ids {
            self.present[i as usize] = false;
        }
        let mut out = std::mem::take(&mut self.ids);
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disconnected components; the walk must stay inside the seed's.
    fn two_component_graph() -> ClickGraph {
        let mut g = ClickGraph::new();
        // Component A: q0, q1 share doc 0; q1 also clicks doc 1.
        g.add_clicks("qa0", DocId(0), 10.0);
        g.add_clicks("qa1", DocId(0), 10.0);
        g.add_clicks("qa1", DocId(1), 10.0);
        // Component B: q2 clicks doc 2.
        g.add_clicks("qb2", DocId(2), 50.0);
        g
    }

    #[test]
    fn walk_stays_in_component() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        assert!(r.query_probs.contains_key(&g.query_id("qa1").unwrap()));
        assert!(!r.query_probs.contains_key(&g.query_id("qb2").unwrap()));
        assert!(!r.doc_probs.contains_key(&DocId(2)));
    }

    #[test]
    fn seed_has_highest_query_probability() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        let ordered = r.ordered_queries();
        assert_eq!(ordered[0].0, seed);
        // All probabilities in (0, 1].
        for (_, p) in &ordered {
            assert!(*p > 0.0 && *p <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn query_mass_is_conserved() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        // After a doc->query step all doc mass (plus restart) lands on
        // queries, so the query layer always sums to 1.
        let total: f64 = r.query_probs.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total query mass = {total}");
    }

    #[test]
    fn stronger_coclick_means_higher_probability() {
        let mut g = ClickGraph::new();
        g.add_clicks("seed", DocId(0), 100.0);
        g.add_clicks("seed", DocId(1), 1.0);
        g.add_clicks("close", DocId(0), 100.0);
        g.add_clicks("far", DocId(1), 100.0);
        let seed = g.query_id("seed").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        let close = r.query_probs[&g.query_id("close").unwrap()];
        let far = r.query_probs[&g.query_id("far").unwrap()];
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn isolated_seed_keeps_all_mass() {
        let mut g = ClickGraph::new();
        let seed = g.intern_query("lonely");
        let r = walk_from(&g, seed, &WalkConfig::default());
        assert_eq!(r.query_probs.len(), 1);
        assert!(r.doc_probs.is_empty());
    }

    #[test]
    fn tracked_walk_is_bit_identical_and_reports_the_component() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let cfg = WalkConfig::default();
        let plain = walk_from(&g, seed, &cfg);
        let mut w = Walker::for_graph(&g);
        let (tracked, fp) = w.walk_tracked(&g, seed, &cfg);
        assert_eq!(plain.query_probs, tracked.query_probs);
        assert_eq!(plain.doc_probs, tracked.doc_probs);
        // Footprint covers exactly the seed's component, ascending.
        assert!(fp.queries.contains(&seed.0));
        assert!(fp.queries.contains(&g.query_id("qa1").unwrap().0));
        assert!(!fp.queries.contains(&g.query_id("qb2").unwrap().0));
        assert!(fp.docs.contains(&0) && fp.docs.contains(&1) && !fp.docs.contains(&2));
        assert!(fp.queries.windows(2).all(|w| w[0] < w[1]));
        assert!(fp.docs.windows(2).all(|w| w[0] < w[1]));
        assert!(!fp.is_empty() && fp.len() == fp.queries.len() + fp.docs.len());
    }

    #[test]
    fn tracked_and_untracked_walks_interleave_cleanly() {
        // Tracking state must not leak across walks on a reused walker.
        let g = two_component_graph();
        let a = g.query_id("qa0").unwrap();
        let b = g.query_id("qb2").unwrap();
        let cfg = WalkConfig::default();
        let mut w = Walker::for_graph(&g);
        let (_, fp_a) = w.walk_tracked(&g, a, &cfg);
        let plain_b = w.walk(&g, b, &cfg);
        let (tracked_b, fp_b) = w.walk_tracked(&g, b, &cfg);
        assert_eq!(plain_b.query_probs, tracked_b.query_probs);
        // B's footprint is disjoint from A's (separate components) — no
        // carry-over from the earlier tracked walk.
        assert!(fp_b.queries.iter().all(|q| !fp_a.queries.contains(q)));
        assert_eq!(fp_b.queries, vec![b.0]);
        assert_eq!(fp_b.docs, vec![2]);
    }

    #[test]
    fn isolated_seed_footprint_is_just_the_seed() {
        let mut g = ClickGraph::new();
        let seed = g.intern_query("lonely");
        let mut w = Walker::for_graph(&g);
        let (_, fp) = w.walk_tracked(&g, seed, &WalkConfig::default());
        assert_eq!(fp.queries, vec![seed.0]);
        assert!(fp.docs.is_empty());
    }
}

//! Random walk with restart over the click graph.
//!
//! Paper §3.1: "From query q, we perform random walk according to transport
//! probabilities calculated above and compute the weights of visited queries
//! and documents." We compute the *stationary visit probabilities* exactly by
//! power iteration instead of Monte-Carlo sampling — the result is the same
//! quantity, deterministic, and cheap because each walk only touches the
//! seed's local neighbourhood.

use crate::click::{ClickGraph, DocId, QueryId};
use std::collections::BTreeMap;

/// Random-walk parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Restart probability back to the seed query at every step.
    pub restart: f64,
    /// Maximum power-iteration rounds (one round = query step + doc step).
    pub max_iter: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            restart: 0.3,
            max_iter: 12,
            tol: 1e-8,
        }
    }
}

/// Visit probabilities produced by [`walk_from`].
#[derive(Debug, Clone, Default)]
pub struct WalkResult {
    /// Visit probability per reached query.
    pub query_probs: BTreeMap<QueryId, f64>,
    /// Visit probability per reached document.
    pub doc_probs: BTreeMap<DocId, f64>,
}

impl WalkResult {
    /// Queries ordered by decreasing probability (ties by id, deterministic).
    pub fn ordered_queries(&self) -> Vec<(QueryId, f64)> {
        let mut v: Vec<(QueryId, f64)> = self.query_probs.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// Documents ordered by decreasing probability (ties by id).
    pub fn ordered_docs(&self) -> Vec<(DocId, f64)> {
        let mut v: Vec<(DocId, f64)> = self.doc_probs.iter().map(|(k, p)| (*k, *p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }
}

/// Runs a random walk with restart from `seed`, alternating
/// query→doc (eq. 1) and doc→query (eq. 2) steps, and returns visit
/// probabilities over the touched neighbourhood.
pub fn walk_from(g: &ClickGraph, seed: QueryId, cfg: &WalkConfig) -> WalkResult {
    // BTreeMaps keep the f64 accumulation order fixed, so the walk is
    // bit-for-bit reproducible across runs (HashMap iteration order is not).
    let mut qp: BTreeMap<QueryId, f64> = BTreeMap::new();
    qp.insert(seed, 1.0);
    let mut dp: BTreeMap<DocId, f64> = BTreeMap::new();

    for _ in 0..cfg.max_iter {
        // Query layer -> doc layer.
        let mut next_dp: BTreeMap<DocId, f64> = BTreeMap::new();
        for (&q, &p) in &qp {
            if p == 0.0 {
                continue;
            }
            let total = g.query_clicks(q);
            if total == 0.0 {
                continue;
            }
            for (d, c) in g.docs_of(q) {
                *next_dp.entry(*d).or_insert(0.0) += p * (c / total);
            }
        }
        // Doc layer -> query layer, with restart mass returning to the seed.
        let mut next_qp: BTreeMap<QueryId, f64> = BTreeMap::new();
        next_qp.insert(seed, cfg.restart);
        for (&d, &p) in &next_dp {
            if p == 0.0 {
                continue;
            }
            let total = g.doc_clicks(d);
            if total == 0.0 {
                continue;
            }
            for (q, c) in g.queries_of(d) {
                *next_qp.entry(*q).or_insert(0.0) += (1.0 - cfg.restart) * p * (c / total);
            }
        }
        let delta: f64 = next_qp
            .iter()
            .map(|(q, p)| (p - qp.get(q).copied().unwrap_or(0.0)).abs())
            .sum::<f64>()
            + qp.iter()
                .filter(|(q, _)| !next_qp.contains_key(q))
                .map(|(_, p)| p.abs())
                .sum::<f64>();
        qp = next_qp;
        dp = next_dp;
        if delta < cfg.tol {
            break;
        }
    }
    WalkResult {
        query_probs: qp,
        doc_probs: dp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disconnected components; the walk must stay inside the seed's.
    fn two_component_graph() -> ClickGraph {
        let mut g = ClickGraph::new();
        // Component A: q0, q1 share doc 0; q1 also clicks doc 1.
        g.add_clicks("qa0", DocId(0), 10.0);
        g.add_clicks("qa1", DocId(0), 10.0);
        g.add_clicks("qa1", DocId(1), 10.0);
        // Component B: q2 clicks doc 2.
        g.add_clicks("qb2", DocId(2), 50.0);
        g
    }

    #[test]
    fn walk_stays_in_component() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        assert!(r.query_probs.contains_key(&g.query_id("qa1").unwrap()));
        assert!(!r.query_probs.contains_key(&g.query_id("qb2").unwrap()));
        assert!(!r.doc_probs.contains_key(&DocId(2)));
    }

    #[test]
    fn seed_has_highest_query_probability() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        let ordered = r.ordered_queries();
        assert_eq!(ordered[0].0, seed);
        // All probabilities in (0, 1].
        for (_, p) in &ordered {
            assert!(*p > 0.0 && *p <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn query_mass_is_conserved() {
        let g = two_component_graph();
        let seed = g.query_id("qa0").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        // After a doc->query step all doc mass (plus restart) lands on
        // queries, so the query layer always sums to 1.
        let total: f64 = r.query_probs.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total query mass = {total}");
    }

    #[test]
    fn stronger_coclick_means_higher_probability() {
        let mut g = ClickGraph::new();
        g.add_clicks("seed", DocId(0), 100.0);
        g.add_clicks("seed", DocId(1), 1.0);
        g.add_clicks("close", DocId(0), 100.0);
        g.add_clicks("far", DocId(1), 100.0);
        let seed = g.query_id("seed").unwrap();
        let r = walk_from(&g, seed, &WalkConfig::default());
        let close = r.query_probs[&g.query_id("close").unwrap()];
        let far = r.query_probs[&g.query_id("far").unwrap()];
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn isolated_seed_keeps_all_mass() {
        let mut g = ClickGraph::new();
        let seed = g.intern_query("lonely");
        let r = walk_from(&g, seed, &WalkConfig::default());
        assert_eq!(r.query_probs.len(), 1);
        assert!(r.doc_probs.is_empty());
    }
}

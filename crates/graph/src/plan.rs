//! Cluster planning: the cheap sequential pass of the pipeline's
//! plan → execute → merge architecture.
//!
//! [`plan_clusters`] walks every query of the click graph in id order and
//! partitions the query space into [`ClusterWorkItem`]s, exactly
//! reproducing the covered-set semantics the mining loop used when it was
//! interleaved with per-cluster inference: a query seeds a cluster only if
//! no earlier cluster already covered it, and a cluster covers every query
//! it kept.
//!
//! Each work item carries two views of its cluster:
//!
//! * [`ClusterWorkItem::cluster`] — the **full** extraction around the
//!   seed (may overlap earlier items; this is what QTIG construction and
//!   inference consume, so per-cluster output is identical to the
//!   sequential pipeline's).
//! * [`ClusterWorkItem::owned`] — the queries this item *newly* covers.
//!   Owned sets are pairwise disjoint and jointly cover every query id of
//!   the graph (the invariant `tests/plan_properties.rs` proves), which is
//!   what makes the items safe to execute concurrently: each query's
//!   attention is attributed by exactly one item, in plan order.

use crate::click::{ClickGraph, QueryId};
use crate::cluster::{extract_cluster_with, ClusterConfig, QueryDocCluster};
use crate::walk::Walker;
use giant_text::StopWords;

/// One unit of parallelizable mining work: a seed query plus its extracted
/// cluster and the set of queries it owns.
#[derive(Debug, Clone)]
pub struct ClusterWorkItem {
    /// The seed query (always the first entry of `cluster.queries` and of
    /// `owned`).
    pub seed: QueryId,
    /// The full query–doc cluster around the seed.
    pub cluster: QueryDocCluster,
    /// Queries first covered by this item, in cluster-weight order.
    pub owned: Vec<QueryId>,
}

/// The product of the planning pass: work items in deterministic plan
/// order (ascending seed query id).
#[derive(Debug, Clone, Default)]
pub struct ClusterPlan {
    /// Work items; executing them in any order and merging results back
    /// in *this* order reproduces the sequential pipeline byte for byte.
    pub items: Vec<ClusterWorkItem>,
}

impl ClusterPlan {
    /// Total queries owned across all items (equals the graph's query
    /// count by the partition invariant).
    pub fn owned_queries(&self) -> usize {
        self.items.iter().map(|it| it.owned.len()).sum()
    }
}

/// Plans disjoint cluster work items over the whole click graph
/// (sequential reference semantics; equals [`plan_clusters_parallel`] at
/// every thread count).
pub fn plan_clusters(g: &ClickGraph, stopwords: &StopWords, cfg: &ClusterConfig) -> ClusterPlan {
    plan_clusters_parallel(g, stopwords, cfg, 1)
}

/// [`plan_clusters`] with the expensive cluster extractions (random
/// walks) spread over `threads` workers.
///
/// Extraction is **speculative** (`giant_exec::run_speculative`): a walk
/// never depends on the covered set, so workers extract candidate seeds
/// ahead of the sequential acceptance frontier, which replays the
/// covered-set semantics strictly in query-id order. The covered flags
/// are monotonic (false → true, written only by acceptance), so workers
/// reading them can only *skip doomed work*, never change the plan:
/// a producer that observes `covered[q]` declines the walk the
/// sequential planner would never have started, and a stale read merely
/// extracts a cluster acceptance then discards. The produced plan is
/// therefore **identical** to [`plan_clusters`]'s for every thread
/// count; only wall-clock changes.
pub fn plan_clusters_parallel(
    g: &ClickGraph,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
    threads: usize,
) -> ClusterPlan {
    use std::sync::atomic::{AtomicBool, Ordering};

    let n = g.n_queries();
    let covered: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut items: Vec<ClusterWorkItem> = Vec::new();
    giant_exec::run_speculative(
        n,
        threads,
        threads.max(1) * 4,
        || Walker::for_graph(g),
        |walker, i| {
            if covered[i].load(Ordering::Acquire) {
                return None; // already claimed: the sequential planner would skip it
            }
            Some(extract_cluster_with(walker, g, QueryId(i as u32), stopwords, cfg))
        },
        |i, produced| {
            // Authoritative sequential state: only this closure writes
            // `covered`, in index order.
            if covered[i].load(Ordering::Relaxed) {
                return; // claimed since production started: discard speculation
            }
            let cluster: QueryDocCluster =
                produced.expect("uncovered seed must have been extracted");
            let seed = QueryId(i as u32);
            let mut owned = Vec::new();
            for &(cq, _) in &cluster.queries {
                if !covered[cq.index()].load(Ordering::Relaxed) {
                    covered[cq.index()].store(true, Ordering::Release);
                    owned.push(cq);
                }
            }
            debug_assert_eq!(owned.first(), Some(&seed), "seed must own itself");
            items.push(ClusterWorkItem {
                seed,
                cluster,
                owned,
            });
        },
    );
    ClusterPlan { items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::click::DocId;
    use std::collections::HashSet;

    fn graph() -> ClickGraph {
        let mut g = ClickGraph::new();
        g.add_clicks("miyazaki animated films", DocId(0), 20.0);
        g.add_clicks("miyazaki animated films", DocId(1), 15.0);
        g.add_clicks("famous miyazaki films", DocId(0), 10.0);
        g.add_clicks("classic animated films miyazaki", DocId(1), 8.0);
        g.add_clicks("tokyo travel guide", DocId(1), 9.0);
        g.add_clicks("tokyo travel guide", DocId(3), 40.0);
        g
    }

    #[test]
    fn owned_sets_partition_the_query_space() {
        let g = graph();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        let mut seen = HashSet::new();
        for it in &plan.items {
            for q in &it.owned {
                assert!(seen.insert(*q), "query {q:?} owned twice");
            }
        }
        assert_eq!(seen.len(), g.n_queries(), "every query must be owned");
        assert_eq!(plan.owned_queries(), g.n_queries());
    }

    #[test]
    fn seeds_are_uncovered_queries_in_id_order() {
        let g = graph();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        for w in plan.items.windows(2) {
            assert!(w[0].seed.index() < w[1].seed.index(), "plan order is seed id order");
        }
        for it in &plan.items {
            assert_eq!(it.owned.first(), Some(&it.seed));
            assert_eq!(it.cluster.seed, it.seed);
        }
    }

    #[test]
    fn full_cluster_may_exceed_owned_but_never_misses_it() {
        let g = graph();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        for it in &plan.items {
            let cluster_qs: HashSet<QueryId> = it.cluster.query_ids().into_iter().collect();
            for q in &it.owned {
                assert!(cluster_qs.contains(q), "owned query outside its cluster");
            }
        }
    }

    #[test]
    fn parallel_planner_reproduces_sequential_plan_exactly() {
        let g = graph();
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let seq = plan_clusters(&g, &sw, &cfg);
        for threads in [2, 3, 8] {
            let par = plan_clusters_parallel(&g, &sw, &cfg, threads);
            assert_eq!(par.items.len(), seq.items.len(), "threads={threads}");
            for (a, b) in par.items.iter().zip(&seq.items) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.owned, b.owned);
                assert_eq!(a.cluster.query_ids(), b.cluster.query_ids());
                assert_eq!(a.cluster.doc_ids(), b.cluster.doc_ids());
            }
        }
    }

    #[test]
    fn empty_graph_plans_nothing() {
        let g = ClickGraph::new();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        assert!(plan.items.is_empty());
        assert_eq!(plan.owned_queries(), 0);
    }
}

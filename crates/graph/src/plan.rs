//! Cluster planning: the cheap sequential pass of the pipeline's
//! plan → execute → merge architecture.
//!
//! [`plan_clusters`] walks every query of the click graph in id order and
//! partitions the query space into [`ClusterWorkItem`]s, exactly
//! reproducing the covered-set semantics the mining loop used when it was
//! interleaved with per-cluster inference: a query seeds a cluster only if
//! no earlier cluster already covered it, and a cluster covers every query
//! it kept.
//!
//! Each work item carries two views of its cluster:
//!
//! * [`ClusterWorkItem::cluster`] — the **full** extraction around the
//!   seed (may overlap earlier items; this is what QTIG construction and
//!   inference consume, so per-cluster output is identical to the
//!   sequential pipeline's).
//! * [`ClusterWorkItem::owned`] — the queries this item *newly* covers.
//!   Owned sets are pairwise disjoint and jointly cover every query id of
//!   the graph (the invariant `tests/plan_properties.rs` proves), which is
//!   what makes the items safe to execute concurrently: each query's
//!   attention is attributed by exactly one item, in plan order.

use crate::click::{ClickGraph, QueryId};
use crate::cluster::{
    extract_cluster_tracked, extract_cluster_with, ClusterConfig, QueryDocCluster,
};
use crate::walk::{WalkFootprint, Walker};
use giant_text::StopWords;
use std::collections::HashMap;

/// One unit of parallelizable mining work: a seed query plus its extracted
/// cluster and the set of queries it owns.
#[derive(Debug, Clone)]
pub struct ClusterWorkItem {
    /// The seed query (always the first entry of `cluster.queries` and of
    /// `owned`).
    pub seed: QueryId,
    /// The full query–doc cluster around the seed.
    pub cluster: QueryDocCluster,
    /// Queries first covered by this item, in cluster-weight order.
    pub owned: Vec<QueryId>,
}

/// The product of the planning pass: work items in deterministic plan
/// order (ascending seed query id).
#[derive(Debug, Clone, Default)]
pub struct ClusterPlan {
    /// Work items; executing them in any order and merging results back
    /// in *this* order reproduces the sequential pipeline byte for byte.
    pub items: Vec<ClusterWorkItem>,
    /// Per-item cache provenance, aligned with `items` when the plan came
    /// from [`plan_clusters_cached`] (empty otherwise): `true` means the
    /// item's cluster was served from the plan cache, i.e. it is
    /// **unchanged since the last plan in which this seed was an item** —
    /// downstream per-cluster memos keyed by the same seed are then
    /// provably fresh without re-fingerprinting (the mine cache rewrites
    /// its entry on every mismatch, so after any fold each entry matches
    /// that fold's cluster; an unchanged cluster therefore still matches).
    pub reused: Vec<bool>,
}

impl ClusterPlan {
    /// Total queries owned across all items (equals the graph's query
    /// count by the partition invariant).
    pub fn owned_queries(&self) -> usize {
        self.items.iter().map(|it| it.owned.len()).sum()
    }
}

/// Plans disjoint cluster work items over the whole click graph
/// (sequential reference semantics; equals [`plan_clusters_parallel`] at
/// every thread count).
pub fn plan_clusters(g: &ClickGraph, stopwords: &StopWords, cfg: &ClusterConfig) -> ClusterPlan {
    plan_clusters_parallel(g, stopwords, cfg, 1)
}

/// [`plan_clusters`] with the expensive cluster extractions (random
/// walks) spread over `threads` workers.
///
/// Extraction is **speculative** (`giant_exec::run_speculative`): a walk
/// never depends on the covered set, so workers extract candidate seeds
/// ahead of the sequential acceptance frontier, which replays the
/// covered-set semantics strictly in query-id order. The covered flags
/// are monotonic (false → true, written only by acceptance), so workers
/// reading them can only *skip doomed work*, never change the plan:
/// a producer that observes `covered[q]` declines the walk the
/// sequential planner would never have started, and a stale read merely
/// extracts a cluster acceptance then discards. The produced plan is
/// therefore **identical** to [`plan_clusters`]'s for every thread
/// count; only wall-clock changes.
pub fn plan_clusters_parallel(
    g: &ClickGraph,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
    threads: usize,
) -> ClusterPlan {
    use std::sync::atomic::{AtomicBool, Ordering};

    let n = g.n_queries();
    let covered: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut items: Vec<ClusterWorkItem> = Vec::new();
    giant_exec::run_speculative(
        n,
        threads,
        threads.max(1) * 4,
        || Walker::for_graph(g),
        |walker, i| {
            if covered[i].load(Ordering::Acquire) {
                return None; // already claimed: the sequential planner would skip it
            }
            Some(extract_cluster_with(walker, g, QueryId(i as u32), stopwords, cfg))
        },
        |i, produced| {
            // Authoritative sequential state: only this closure writes
            // `covered`, in index order.
            if covered[i].load(Ordering::Relaxed) {
                return; // claimed since production started: discard speculation
            }
            let cluster: QueryDocCluster =
                produced.expect("uncovered seed must have been extracted");
            let seed = QueryId(i as u32);
            let mut owned = Vec::new();
            for &(cq, _) in &cluster.queries {
                if !covered[cq.index()].load(Ordering::Relaxed) {
                    covered[cq.index()].store(true, Ordering::Release);
                    owned.push(cq);
                }
            }
            debug_assert_eq!(owned.first(), Some(&seed), "seed must own itself");
            items.push(ClusterWorkItem {
                seed,
                cluster,
                owned,
            });
        },
    );
    ClusterPlan {
        items,
        reused: Vec::new(),
    }
}

/// The graph nodes touched by a batch of click-graph edits, in the id space
/// of the **post-edit** graph. Recording is the ingester's job: every
/// `add_clicks(q, d, _)` marks `q` and `d` (their adjacency and cached
/// totals changed); brand-new queries/docs are dirty by construction but
/// appear in no stored footprint, so what protects cached walks from them
/// is that attaching a new node also dirties its (old) neighbours.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    queries: Vec<bool>,
    docs: Vec<bool>,
    n_queries: usize,
    n_docs: usize,
}

impl DirtySet {
    /// An empty dirty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks query `q` dirty.
    pub fn mark_query(&mut self, q: usize) {
        if self.queries.len() <= q {
            self.queries.resize(q + 1, false);
        }
        if !self.queries[q] {
            self.queries[q] = true;
            self.n_queries += 1;
        }
    }

    /// Marks doc `d` dirty.
    pub fn mark_doc(&mut self, d: usize) {
        if self.docs.len() <= d {
            self.docs.resize(d + 1, false);
        }
        if !self.docs[d] {
            self.docs[d] = true;
            self.n_docs += 1;
        }
    }

    /// Number of dirty queries.
    pub fn n_dirty_queries(&self) -> usize {
        self.n_queries
    }

    /// Number of dirty docs.
    pub fn n_dirty_docs(&self) -> usize {
        self.n_docs
    }

    /// True when nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.n_queries == 0 && self.n_docs == 0
    }

    /// Ascending ids of the dirty queries (sharded caches translate these
    /// into each shard's local id space).
    pub fn dirty_queries(&self) -> impl Iterator<Item = usize> + '_ {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(q, _)| q)
    }

    /// Ascending ids of the dirty docs.
    pub fn dirty_docs(&self) -> impl Iterator<Item = usize> + '_ {
        self.docs
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(d, _)| d)
    }

    /// True when the footprint reads any dirty node — the cached walk it
    /// belongs to can no longer be trusted.
    pub fn touches(&self, fp: &WalkFootprint) -> bool {
        fp.queries
            .iter()
            .any(|&q| self.queries.get(q as usize).copied().unwrap_or(false))
            || fp
                .docs
                .iter()
                .any(|&d| self.docs.get(d as usize).copied().unwrap_or(false))
    }
}

/// A cached cluster extraction: the cluster and the walk footprint that
/// certifies it.
#[derive(Debug, Clone)]
struct PlanCacheEntry {
    cluster: QueryDocCluster,
    footprint: WalkFootprint,
}

/// Memo of previous cluster extractions, keyed by seed query id, for the
/// incremental planner. The soundness contract: an entry may be reused on a
/// graph `g'` iff no node of its footprint changed between the graph it was
/// extracted on and `g'` — which [`PlanCache::invalidate`] enforces by
/// evicting every entry touched by the batch's [`DirtySet`] *before*
/// planning. Because eviction happens unconditionally (not only for seeds
/// the next plan extracts), the invariant "every stored entry equals a
/// fresh extraction on the current graph" holds across arbitrarily many
/// ingest rounds.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: HashMap<u32, PlanCacheEntry>,
    /// Clusters served from cache by the last planning pass.
    pub reused: usize,
    /// Clusters extracted fresh (walked) by the last planning pass.
    pub walked: usize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached extractions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every cached extraction as `(seed, cluster, footprint)`, in
    /// ascending seed order — the checkpoint serialisation view. Sorted so
    /// the same cache state always serialises to the same bytes.
    pub fn entries(&self) -> Vec<(u32, &QueryDocCluster, &WalkFootprint)> {
        let mut out: Vec<(u32, &QueryDocCluster, &WalkFootprint)> = self
            .entries
            .iter()
            .map(|(&seed, e)| (seed, &e.cluster, &e.footprint))
            .collect();
        out.sort_by_key(|(seed, _, _)| *seed);
        out
    }

    /// Rebuilds a cache from serialized entries plus the last pass's
    /// reuse counters (checkpoint restore). An entry restored here is
    /// trusted exactly as far as a surviving in-memory entry would be: the
    /// caller must only feed back entries it previously obtained from
    /// [`PlanCache::entries`] on the same (append-only) graph history.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (u32, QueryDocCluster, WalkFootprint)>,
        reused: usize,
        walked: usize,
    ) -> Self {
        Self {
            entries: entries
                .into_iter()
                .map(|(seed, cluster, footprint)| {
                    (seed, PlanCacheEntry { cluster, footprint })
                })
                .collect(),
            reused,
            walked,
        }
    }

    /// Evicts every entry whose footprint reads a dirty node; returns how
    /// many were evicted. Must be called with the batch's dirty set after
    /// each round of graph edits and before the next planning pass.
    pub fn invalidate(&mut self, dirty: &DirtySet) -> usize {
        if dirty.is_empty() {
            return 0;
        }
        let before = self.entries.len();
        self.entries.retain(|_, e| !dirty.touches(&e.footprint));
        before - self.entries.len()
    }
}

/// [`plan_clusters_parallel`] with a [`PlanCache`]: seeds whose cached
/// extraction survived invalidation are served from the cache (no walk),
/// everything else is walked fresh and stored. Given the cache soundness
/// contract the produced plan is **identical** to an uncached
/// [`plan_clusters`] on the same graph, for every thread count and every
/// cache state — only wall-clock changes. Entries are inserted during the
/// sequential acceptance pass, so the cache contents after planning are
/// also independent of the thread count.
pub fn plan_clusters_cached(
    g: &ClickGraph,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
    threads: usize,
    cache: &mut PlanCache,
) -> ClusterPlan {
    use std::sync::atomic::{AtomicBool, Ordering};

    let n = g.n_queries();
    let covered: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut items: Vec<ClusterWorkItem> = Vec::new();
    let mut item_reused: Vec<bool> = Vec::new();
    let mut fresh: Vec<(u32, PlanCacheEntry)> = Vec::new();
    let (mut reused, mut walked) = (0usize, 0usize);
    let entries = &cache.entries;
    giant_exec::run_speculative(
        n,
        threads,
        threads.max(1) * 4,
        || Walker::for_graph(g),
        |walker, i| {
            if covered[i].load(Ordering::Acquire) {
                return None; // already claimed: the sequential planner would skip it
            }
            match entries.get(&(i as u32)) {
                // Cache hit: the stored cluster is bit-identical to what a
                // fresh walk would extract (soundness invariant).
                Some(e) => Some((e.cluster.clone(), None)),
                None => {
                    let (cluster, footprint) =
                        extract_cluster_tracked(walker, g, QueryId(i as u32), stopwords, cfg);
                    Some((cluster, Some(footprint)))
                }
            }
        },
        |i, produced| {
            if covered[i].load(Ordering::Relaxed) {
                return; // claimed since production started: discard speculation
            }
            let (cluster, footprint) =
                produced.expect("uncovered seed must have been extracted");
            let seed = QueryId(i as u32);
            match footprint {
                Some(fp) => {
                    walked += 1;
                    item_reused.push(false);
                    fresh.push((
                        i as u32,
                        PlanCacheEntry {
                            cluster: cluster.clone(),
                            footprint: fp,
                        },
                    ));
                }
                None => {
                    reused += 1;
                    item_reused.push(true);
                }
            }
            let mut owned = Vec::new();
            for &(cq, _) in &cluster.queries {
                if !covered[cq.index()].load(Ordering::Relaxed) {
                    covered[cq.index()].store(true, Ordering::Release);
                    owned.push(cq);
                }
            }
            debug_assert_eq!(owned.first(), Some(&seed), "seed must own itself");
            items.push(ClusterWorkItem {
                seed,
                cluster,
                owned,
            });
        },
    );
    for (seed, entry) in fresh {
        cache.entries.insert(seed, entry);
    }
    cache.reused = reused;
    cache.walked = walked;
    ClusterPlan {
        items,
        reused: item_reused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::click::DocId;
    use std::collections::HashSet;

    fn graph() -> ClickGraph {
        let mut g = ClickGraph::new();
        g.add_clicks("miyazaki animated films", DocId(0), 20.0);
        g.add_clicks("miyazaki animated films", DocId(1), 15.0);
        g.add_clicks("famous miyazaki films", DocId(0), 10.0);
        g.add_clicks("classic animated films miyazaki", DocId(1), 8.0);
        g.add_clicks("tokyo travel guide", DocId(1), 9.0);
        g.add_clicks("tokyo travel guide", DocId(3), 40.0);
        g
    }

    #[test]
    fn owned_sets_partition_the_query_space() {
        let g = graph();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        let mut seen = HashSet::new();
        for it in &plan.items {
            for q in &it.owned {
                assert!(seen.insert(*q), "query {q:?} owned twice");
            }
        }
        assert_eq!(seen.len(), g.n_queries(), "every query must be owned");
        assert_eq!(plan.owned_queries(), g.n_queries());
    }

    #[test]
    fn seeds_are_uncovered_queries_in_id_order() {
        let g = graph();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        for w in plan.items.windows(2) {
            assert!(w[0].seed.index() < w[1].seed.index(), "plan order is seed id order");
        }
        for it in &plan.items {
            assert_eq!(it.owned.first(), Some(&it.seed));
            assert_eq!(it.cluster.seed, it.seed);
        }
    }

    #[test]
    fn full_cluster_may_exceed_owned_but_never_misses_it() {
        let g = graph();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        for it in &plan.items {
            let cluster_qs: HashSet<QueryId> = it.cluster.query_ids().into_iter().collect();
            for q in &it.owned {
                assert!(cluster_qs.contains(q), "owned query outside its cluster");
            }
        }
    }

    #[test]
    fn parallel_planner_reproduces_sequential_plan_exactly() {
        let g = graph();
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let seq = plan_clusters(&g, &sw, &cfg);
        for threads in [2, 3, 8] {
            let par = plan_clusters_parallel(&g, &sw, &cfg, threads);
            assert_eq!(par.items.len(), seq.items.len(), "threads={threads}");
            for (a, b) in par.items.iter().zip(&seq.items) {
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.owned, b.owned);
                assert_eq!(a.cluster.query_ids(), b.cluster.query_ids());
                assert_eq!(a.cluster.doc_ids(), b.cluster.doc_ids());
            }
        }
    }

    fn assert_same_plan(a: &ClusterPlan, b: &ClusterPlan, what: &str) {
        assert_eq!(a.items.len(), b.items.len(), "{what}: item count");
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.seed, y.seed, "{what}");
            assert_eq!(x.owned, y.owned, "{what}");
            assert_eq!(x.cluster.queries, y.cluster.queries, "{what}");
            assert_eq!(x.cluster.docs, y.cluster.docs, "{what}");
        }
    }

    #[test]
    fn cached_planner_matches_uncached_cold_and_warm() {
        let g = graph();
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let reference = plan_clusters(&g, &sw, &cfg);
        let mut cache = PlanCache::new();
        for threads in [1, 2, 4] {
            // Cold (first round populates) then warm (everything reused).
            let cold = plan_clusters_cached(&g, &sw, &cfg, threads, &mut cache);
            assert_same_plan(&cold, &reference, "cold");
            let warm = plan_clusters_cached(&g, &sw, &cfg, threads, &mut cache);
            assert_same_plan(&warm, &reference, "warm");
            assert_eq!(cache.walked, 0, "warm pass must not walk");
            assert!(cache.reused > 0);
        }
    }

    #[test]
    fn invalidation_after_edits_reconverges_to_the_full_plan() {
        let mut g = graph();
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let mut cache = PlanCache::new();
        plan_clusters_cached(&g, &sw, &cfg, 1, &mut cache);
        let cached_before = cache.len();
        assert!(cached_before > 0);

        // Fold a delta: a new query joins the miyazaki component and an
        // old edge gains weight.
        let mut dirty = DirtySet::new();
        let q = g.add_clicks("miyazaki films ranked", DocId(0), 12.0);
        dirty.mark_query(q.index());
        dirty.mark_doc(0);
        let q2 = g.add_clicks("tokyo travel guide", DocId(3), 5.0);
        dirty.mark_query(q2.index());
        dirty.mark_doc(3);
        let evicted = cache.invalidate(&dirty);
        assert!(evicted > 0, "dirty component entries must be evicted");

        for threads in [1, 3] {
            let incremental = plan_clusters_cached(&g, &sw, &cfg, threads, &mut cache);
            let full = plan_clusters(&g, &sw, &cfg);
            assert_same_plan(&incremental, &full, "post-delta");
        }
    }

    #[test]
    fn untouched_component_entries_survive_invalidation() {
        let mut g = graph();
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        let mut cache = PlanCache::new();
        plan_clusters_cached(&g, &sw, &cfg, 1, &mut cache);
        // Dirty only a doc nobody clicks (isolated edit far from both
        // components): nothing may be evicted.
        let mut dirty = DirtySet::new();
        g.add_clicks("entirely new island query", DocId(9), 1.0);
        let nq = g.query_id("entirely new island query").unwrap();
        dirty.mark_query(nq.index());
        dirty.mark_doc(9);
        assert_eq!(cache.invalidate(&dirty), 0);
        let plan = plan_clusters_cached(&g, &sw, &cfg, 1, &mut cache);
        // Only the new island seed needed a walk.
        assert_eq!(cache.walked, 1);
        assert_same_plan(&plan, &plan_clusters(&g, &sw, &cfg), "island delta");
    }

    #[test]
    fn dirty_set_counts_and_queries() {
        let mut d = DirtySet::new();
        assert!(d.is_empty());
        d.mark_query(3);
        d.mark_query(3);
        d.mark_doc(1);
        assert_eq!(d.n_dirty_queries(), 1);
        assert_eq!(d.n_dirty_docs(), 1);
        let fp = WalkFootprint {
            queries: vec![3],
            docs: vec![],
        };
        assert!(d.touches(&fp));
        let clean = WalkFootprint {
            queries: vec![2, 4],
            docs: vec![0, 2],
        };
        assert!(!d.touches(&clean));
        // Ids beyond the marked range are clean, not out-of-bounds.
        let beyond = WalkFootprint {
            queries: vec![100],
            docs: vec![100],
        };
        assert!(!d.touches(&beyond));
    }

    #[test]
    fn empty_graph_plans_nothing() {
        let g = ClickGraph::new();
        let plan = plan_clusters(&g, &StopWords::standard(), &ClusterConfig::default());
        assert!(plan.items.is_empty());
        assert_eq!(plan.owned_queries(), 0);
    }
}

//! Query–doc cluster extraction (paper §3.1, "Query-Doc Clustering").
//!
//! "For each visited query or document, we keep it if its visiting
//! probability is above a threshold δ_v and the number of non-stop words in
//! q is more than a half." We read the second condition as: more than half of
//! the candidate query's non-stop words must also occur in the seed query's
//! neighbourhood vocabulary (seed's own tokens), which keeps topically drifted
//! queries out of the cluster.

use crate::click::{ClickGraph, DocId, QueryId};
use crate::walk::{WalkConfig, WalkFootprint, WalkResult, Walker};
use giant_text::StopWords;
use std::collections::HashSet;

/// Cluster-extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Visit-probability threshold `δ_v`.
    pub delta_v: f64,
    /// Random-walk parameters.
    pub walk: WalkConfig,
    /// Cap on queries kept per cluster.
    pub max_queries: usize,
    /// Cap on documents kept per cluster.
    pub max_docs: usize,
    /// Minimum fraction of a candidate query's non-stop words that must
    /// appear in the seed query ("more than a half").
    pub min_overlap: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            delta_v: 0.01,
            walk: WalkConfig::default(),
            max_queries: 10,
            max_docs: 20,
            min_overlap: 0.5,
        }
    }
}

/// A cluster of correlated queries and documents around a seed query,
/// ordered by random-walk weight (the order matters: QTIG construction
/// prefers edges from higher-weighted inputs).
#[derive(Debug, Clone)]
pub struct QueryDocCluster {
    /// The seed query.
    pub seed: QueryId,
    /// Kept queries with weights, descending (seed first).
    pub queries: Vec<(QueryId, f64)>,
    /// Kept documents with weights, descending.
    pub docs: Vec<(DocId, f64)>,
}

impl QueryDocCluster {
    /// Query ids only, in weight order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.iter().map(|(q, _)| *q).collect()
    }

    /// Document ids only, in weight order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.docs.iter().map(|(d, _)| *d).collect()
    }
}

/// Extracts the query–doc cluster `(Q_q, D_q)` around `seed`.
pub fn extract_cluster(
    g: &ClickGraph,
    seed: QueryId,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
) -> QueryDocCluster {
    extract_cluster_with(&mut Walker::for_graph(g), g, seed, stopwords, cfg)
}

/// [`extract_cluster`] reusing a caller-owned [`Walker`]'s buffers —
/// identical output, no per-call walk allocations. This is what the
/// planner hands each of its worker threads.
pub fn extract_cluster_with(
    walker: &mut Walker,
    g: &ClickGraph,
    seed: QueryId,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
) -> QueryDocCluster {
    let walk = walker.walk(g, seed, &cfg.walk);
    cluster_from_walk(&walk, g, seed, stopwords, cfg)
}

/// [`extract_cluster_with`] plus the walk's [`WalkFootprint`] — the
/// invalidation key the incremental planner stores beside a cached cluster.
/// The cluster itself is bit-identical to the untracked extraction's: the
/// selection below reads only the walk result and immutable query texts, so
/// the footprint of the *walk* is the footprint of the whole extraction.
pub fn extract_cluster_tracked(
    walker: &mut Walker,
    g: &ClickGraph,
    seed: QueryId,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
) -> (QueryDocCluster, WalkFootprint) {
    let (walk, footprint) = walker.walk_tracked(g, seed, &cfg.walk);
    (cluster_from_walk(&walk, g, seed, stopwords, cfg), footprint)
}

/// The shared selection pass: walk result → kept queries and docs.
fn cluster_from_walk(
    walk: &WalkResult,
    g: &ClickGraph,
    seed: QueryId,
    stopwords: &StopWords,
    cfg: &ClusterConfig,
) -> QueryDocCluster {
    let seed_tokens: HashSet<String> = giant_text::tokenize(g.query_text(seed))
        .into_iter()
        .filter(|t| !stopwords.is_stop(t))
        .collect();

    let mut queries = Vec::new();
    for (q, p) in walk.ordered_queries() {
        if queries.len() >= cfg.max_queries {
            break;
        }
        if q == seed {
            queries.push((q, p));
            continue;
        }
        if p < cfg.delta_v {
            continue;
        }
        let cand: Vec<String> = giant_text::tokenize(g.query_text(q))
            .into_iter()
            .filter(|t| !stopwords.is_stop(t))
            .collect();
        if cand.is_empty() {
            continue;
        }
        let overlap = cand.iter().filter(|t| seed_tokens.contains(*t)).count();
        if (overlap as f64) / (cand.len() as f64) > cfg.min_overlap {
            queries.push((q, p));
        }
    }
    // The seed always leads the cluster even if the walk damped it.
    if queries.first().map(|(q, _)| *q) != Some(seed) {
        queries.retain(|(q, _)| *q != seed);
        queries.insert(0, (seed, 1.0));
    }

    let docs = walk
        .ordered_docs()
        .into_iter()
        .filter(|(_, p)| *p >= cfg.delta_v)
        .take(cfg.max_docs)
        .collect();

    QueryDocCluster {
        seed,
        queries,
        docs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ClickGraph {
        let mut g = ClickGraph::new();
        // A tight cluster about miyazaki films.
        g.add_clicks("miyazaki animated films", DocId(0), 20.0);
        g.add_clicks("miyazaki animated films", DocId(1), 15.0);
        g.add_clicks("famous miyazaki films", DocId(0), 10.0);
        g.add_clicks("famous miyazaki films", DocId(2), 5.0);
        g.add_clicks("classic animated films miyazaki", DocId(1), 8.0);
        // A drifted query sharing one doc but about something else.
        g.add_clicks("tokyo travel guide", DocId(1), 9.0);
        g.add_clicks("tokyo travel guide", DocId(3), 40.0);
        g
    }

    #[test]
    fn cluster_keeps_related_queries() {
        let g = graph();
        let seed = g.query_id("miyazaki animated films").unwrap();
        let c = extract_cluster(&g, seed, &StopWords::standard(), &ClusterConfig::default());
        let texts: Vec<&str> = c.query_ids().iter().map(|q| g.query_text(*q)).collect();
        assert_eq!(texts[0], "miyazaki animated films");
        assert!(texts.contains(&"famous miyazaki films"));
        assert!(texts.contains(&"classic animated films miyazaki"));
    }

    #[test]
    fn cluster_drops_drifted_queries() {
        let g = graph();
        let seed = g.query_id("miyazaki animated films").unwrap();
        let c = extract_cluster(&g, seed, &StopWords::standard(), &ClusterConfig::default());
        let texts: Vec<&str> = c.query_ids().iter().map(|q| g.query_text(*q)).collect();
        // "tokyo travel guide" shares doc 1 but zero content tokens.
        assert!(!texts.contains(&"tokyo travel guide"));
    }

    #[test]
    fn docs_are_weight_ordered_and_thresholded() {
        let g = graph();
        let seed = g.query_id("miyazaki animated films").unwrap();
        let c = extract_cluster(&g, seed, &StopWords::standard(), &ClusterConfig::default());
        assert!(!c.docs.is_empty());
        for w in c.docs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(c.docs.iter().all(|(_, p)| *p >= 0.01));
    }

    #[test]
    fn caps_are_respected() {
        let g = graph();
        let seed = g.query_id("miyazaki animated films").unwrap();
        let cfg = ClusterConfig {
            max_queries: 1,
            max_docs: 1,
            ..ClusterConfig::default()
        };
        let c = extract_cluster(&g, seed, &StopWords::standard(), &cfg);
        assert_eq!(c.queries.len(), 1);
        assert_eq!(c.queries[0].0, seed);
        assert!(c.docs.len() <= 1);
    }

    #[test]
    fn tracked_extraction_matches_untracked() {
        let g = graph();
        let sw = StopWords::standard();
        let cfg = ClusterConfig::default();
        for q in g.query_ids() {
            let plain = extract_cluster(&g, q, &sw, &cfg);
            let (tracked, fp) =
                extract_cluster_tracked(&mut Walker::for_graph(&g), &g, q, &sw, &cfg);
            assert_eq!(plain.seed, tracked.seed);
            assert_eq!(plain.queries, tracked.queries);
            assert_eq!(plain.docs, tracked.docs);
            // Every kept node was necessarily touched by the walk.
            assert!(tracked.queries.iter().all(|(qq, _)| fp.queries.contains(&qq.0)));
            assert!(tracked.docs.iter().all(|(d, _)| fp.docs.contains(&d.0)));
        }
    }

    #[test]
    fn stopword_only_queries_are_skipped() {
        let mut g = ClickGraph::new();
        g.add_clicks("miyazaki films", DocId(0), 10.0);
        g.add_clicks("what is the best", DocId(0), 10.0);
        let seed = g.query_id("miyazaki films").unwrap();
        let c = extract_cluster(&g, seed, &StopWords::standard(), &ClusterConfig::default());
        assert_eq!(c.queries.len(), 1);
    }
}

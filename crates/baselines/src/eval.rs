//! Evaluation metrics (paper §5.2):
//!
//! * **EM** — exact match of predicted vs gold phrase.
//! * **F1** — token-overlap F1 in the SQuAD style \[52\].
//! * **COV** — fraction of non-empty predictions.
//! * **F1-macro / F1-micro / F1-weighted** — for the 4-class key-element task.

use std::collections::HashMap;

/// Exact-match score of one prediction (1.0 or 0.0; empty predictions score
/// 0 unless the gold is empty too).
pub fn exact_match(pred: &[String], gold: &[String]) -> f64 {
    f64::from(pred == gold)
}

/// SQuAD-style token-overlap F1 for one prediction (multiset intersection).
pub fn token_f1(pred: &[String], gold: &[String]) -> f64 {
    if pred.is_empty() || gold.is_empty() {
        return f64::from(pred.is_empty() && gold.is_empty());
    }
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for t in gold {
        *counts.entry(t.as_str()).or_insert(0) += 1;
    }
    let mut overlap = 0i64;
    for t in pred {
        let c = counts.entry(t.as_str()).or_insert(0);
        if *c > 0 {
            overlap += 1;
            *c -= 1;
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / pred.len() as f64;
    let recall = overlap as f64 / gold.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Aggregate phrase-mining scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningEval {
    /// Mean exact match over all examples (empty prediction = miss).
    pub em: f64,
    /// Mean token F1 over all examples.
    pub f1: f64,
    /// Fraction of non-empty predictions.
    pub cov: f64,
}

/// Evaluates predictions against golds. `None` / empty predictions count
/// toward EM/F1 as zero and lower COV.
pub fn evaluate_phrases(preds: &[Option<Vec<String>>], golds: &[Vec<String>]) -> MiningEval {
    assert_eq!(preds.len(), golds.len());
    let n = preds.len().max(1) as f64;
    let mut em = 0.0;
    let mut f1 = 0.0;
    let mut cov = 0.0;
    for (p, g) in preds.iter().zip(golds) {
        match p {
            Some(p) if !p.is_empty() => {
                cov += 1.0;
                em += exact_match(p, g);
                f1 += token_f1(p, g);
            }
            _ => {}
        }
    }
    MiningEval {
        em: em / n,
        f1: f1 / n,
        cov: cov / n,
    }
}

/// Per-class and averaged F1 for a multi-class token task.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassEval {
    /// Unweighted mean of per-class F1.
    pub f1_macro: f64,
    /// Global F1 over all decisions (equals accuracy for single-label).
    pub f1_micro: f64,
    /// Support-weighted mean of per-class F1.
    pub f1_weighted: f64,
    /// Per-class F1 indexed by class id.
    pub per_class: Vec<f64>,
}

/// Computes macro/micro/weighted F1 from parallel label vectors.
pub fn multiclass_f1(preds: &[usize], golds: &[usize], n_classes: usize) -> MultiClassEval {
    assert_eq!(preds.len(), golds.len());
    let mut tp = vec![0f64; n_classes];
    let mut fp = vec![0f64; n_classes];
    let mut fneg = vec![0f64; n_classes];
    let mut support = vec![0f64; n_classes];
    for (&p, &g) in preds.iter().zip(golds) {
        assert!(p < n_classes && g < n_classes, "class id out of range");
        support[g] += 1.0;
        if p == g {
            tp[p] += 1.0;
        } else {
            fp[p] += 1.0;
            fneg[g] += 1.0;
        }
    }
    let f1 = |tp: f64, fp: f64, fneg: f64| -> f64 {
        let denom = 2.0 * tp + fp + fneg;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * tp / denom
        }
    };
    let per_class: Vec<f64> = (0..n_classes)
        .map(|c| f1(tp[c], fp[c], fneg[c]))
        .collect();
    let total: f64 = support.iter().sum();
    let f1_macro = per_class.iter().sum::<f64>() / n_classes.max(1) as f64;
    let f1_micro = f1(
        tp.iter().sum::<f64>(),
        fp.iter().sum::<f64>(),
        fneg.iter().sum::<f64>(),
    );
    let f1_weighted = if total == 0.0 {
        0.0
    } else {
        per_class
            .iter()
            .zip(&support)
            .map(|(f, s)| f * s / total)
            .sum()
    };
    MultiClassEval {
        f1_macro,
        f1_micro,
        f1_weighted,
        per_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split(' ').map(|t| t.to_owned()).collect()
    }

    #[test]
    fn em_is_strict() {
        assert_eq!(exact_match(&toks("a b"), &toks("a b")), 1.0);
        assert_eq!(exact_match(&toks("a b"), &toks("b a")), 0.0);
        assert_eq!(exact_match(&[], &toks("a")), 0.0);
    }

    #[test]
    fn f1_overlap() {
        assert_eq!(token_f1(&toks("a b"), &toks("a b")), 1.0);
        // pred {a,b,c} vs gold {a,b}: p=2/3, r=1 → f1 = 0.8.
        assert!((token_f1(&toks("a b c"), &toks("a b")) - 0.8).abs() < 1e-12);
        assert_eq!(token_f1(&toks("x"), &toks("a b")), 0.0);
        // Multiset: duplicate tokens only count once per gold occurrence.
        assert!((token_f1(&toks("a a"), &toks("a")) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_counts_empty_as_miss() {
        let preds = vec![Some(toks("a b")), None, Some(vec![])];
        let golds = vec![toks("a b"), toks("c"), toks("d")];
        let e = evaluate_phrases(&preds, &golds);
        assert!((e.em - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.f1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.cov - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiclass_f1_known_values() {
        // 2 classes: preds [0,0,1,1], golds [0,1,1,1].
        let e = multiclass_f1(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        // class0: tp=1 fp=1 fn=0 → f1=2/3; class1: tp=2 fp=0 fn=1 → 0.8.
        assert!((e.per_class[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.per_class[1] - 0.8).abs() < 1e-12);
        assert!((e.f1_macro - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
        // micro = accuracy = 3/4.
        assert!((e.f1_micro - 0.75).abs() < 1e-12);
        // weighted: support 1 and 3 → (2/3*1 + 0.8*3)/4.
        assert!((e.f1_weighted - (2.0 / 3.0 + 2.4) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let e = multiclass_f1(&[0, 1, 2, 3], &[0, 1, 2, 3], 4);
        assert_eq!(e.f1_micro, 1.0);
        assert_eq!(e.f1_macro, 1.0);
        assert_eq!(e.f1_weighted, 1.0);
    }

    #[test]
    fn absent_class_gets_zero_f1_in_macro() {
        let e = multiclass_f1(&[0, 0], &[0, 0], 2);
        assert_eq!(e.per_class[1], 0.0);
        assert_eq!(e.f1_macro, 0.5);
        assert_eq!(e.f1_weighted, 1.0);
    }
}

//! LSTM and (Bi)LSTM-CRF sequence-tagging baselines (paper §5.2).
//!
//! "LSTM-CRF-Q/LSTM-CRF-T … consists of a word embedding layer, a BiLSTM
//! layer with hidden size 25 for each direction, and a CRF layer which
//! predicts whether each word belongs to the output phrase by BIO tags."
//! The plain LSTM variant "replaces the CRF layer with a softmax layer".
//!
//! The same tagger serves the 4-class key-element task (Table 7) by setting
//! `n_classes = 4` and feeding role labels instead of BIO tags.

use giant_nn::{loss, Adam, BiLstm, EmbeddingLayer, LinearChainCrf, Linear, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// BIO tag ids used for phrase tagging.
pub mod bio {
    /// Outside the phrase.
    pub const O: usize = 0;
    /// Phrase beginning.
    pub const B: usize = 1;
    /// Phrase continuation.
    pub const I: usize = 2;
    /// Number of BIO tags.
    pub const COUNT: usize = 3;
}

/// Tagger hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TaggerConfig {
    /// Word-embedding width (the paper used 200-d pretrained vectors; ours
    /// are trained from scratch on the task).
    pub embed_dim: usize,
    /// BiLSTM hidden per direction (paper: 25).
    pub hidden: usize,
    /// Tag-set size.
    pub n_classes: usize,
    /// True = CRF decoding, false = independent softmax (the LSTM baseline).
    pub use_crf: bool,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TaggerConfig {
    fn default() -> Self {
        Self {
            embed_dim: 24,
            hidden: 25,
            n_classes: bio::COUNT,
            use_crf: true,
            lr: 0.01,
            epochs: 20,
            seed: 11,
        }
    }
}

/// A BiLSTM(+CRF) token tagger.
#[derive(Debug)]
pub struct LstmTagger {
    cfg: TaggerConfig,
    vocab: HashMap<String, usize>,
    embedding: EmbeddingLayer,
    bilstm: BiLstm,
    proj: Linear,
    crf: Option<LinearChainCrf>,
}

const UNK: usize = 0;

impl LstmTagger {
    /// The configuration the tagger was trained with.
    pub fn config(&self) -> &TaggerConfig {
        &self.cfg
    }

    fn token_ids(&self, tokens: &[String]) -> Vec<usize> {
        tokens
            .iter()
            .map(|t| self.vocab.get(t).copied().unwrap_or(UNK))
            .collect()
    }

    /// Trains on `(tokens, tag ids)` sequences.
    pub fn train(sequences: &[(Vec<String>, Vec<usize>)], cfg: TaggerConfig) -> Self {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        vocab.insert("<unk>".to_owned(), UNK);
        for (toks, _) in sequences {
            for t in toks {
                let next = vocab.len();
                vocab.entry(t.clone()).or_insert(next);
            }
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let embedding = EmbeddingLayer::new(vocab.len(), cfg.embed_dim, &mut rng);
        let bilstm = BiLstm::new(cfg.embed_dim, cfg.hidden, &mut rng);
        let proj = Linear::new(2 * cfg.hidden, cfg.n_classes, &mut rng);
        let crf = cfg.use_crf.then(|| LinearChainCrf::new(cfg.n_classes, &mut rng));
        let mut model = Self {
            cfg,
            vocab,
            embedding,
            bilstm,
            proj,
            crf,
        };
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            for (tokens, tags) in sequences {
                if tokens.is_empty() {
                    continue;
                }
                assert_eq!(tokens.len(), tags.len());
                let ids = model.token_ids(tokens);
                let x = model.embedding.forward(&ids);
                let h = model.bilstm.forward(&x);
                let emissions = model.proj.forward(&h);
                let d_em = if let Some(crf) = model.crf.as_mut() {
                    let (_, d_em) = crf.nll(&emissions, tags);
                    d_em
                } else {
                    let (_, d_logits) = loss::softmax_cross_entropy(&emissions, tags, None);
                    d_logits
                };
                let dh = model.proj.backward(&d_em);
                let dx = model.bilstm.backward(&dh);
                model.embedding.backward(&dx);
                let mut params = model.embedding.params_mut();
                params.extend(model.bilstm.params_mut());
                params.extend(model.proj.params_mut());
                if let Some(crf) = model.crf.as_mut() {
                    params.extend(crf.params_mut());
                }
                opt.step(&mut params);
            }
        }
        model
    }

    /// Tags a token sequence.
    pub fn predict(&self, tokens: &[String]) -> Vec<usize> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let ids = self.token_ids(tokens);
        let x = self.embedding.forward_inference(&ids);
        let h = self.bilstm.forward_inference(&x);
        let emissions = self.proj.forward_inference(&h);
        if let Some(crf) = &self.crf {
            crf.viterbi(&emissions)
        } else {
            (0..emissions.rows())
                .map(|r| argmax(emissions.row(r)))
                .collect()
        }
    }

    /// Extracts the phrase tokens tagged `B`/`I` (in order).
    pub fn predict_phrase(&self, tokens: &[String]) -> Option<Vec<String>> {
        let tags = self.predict(tokens);
        let phrase: Vec<String> = tokens
            .iter()
            .zip(&tags)
            .filter(|(_, &t)| t == bio::B || t == bio::I)
            .map(|(tok, _)| tok.clone())
            .collect();
        if phrase.is_empty() {
            None
        } else {
            Some(phrase)
        }
    }
}

fn argmax(row: &[f64]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Builds BIO labels for `tokens` given the gold phrase token set: members
/// of the gold set get `B` at each span start and `I` inside.
pub fn bio_labels(tokens: &[String], gold: &[String]) -> Vec<usize> {
    let gold_set: std::collections::HashSet<&str> = gold.iter().map(|s| s.as_str()).collect();
    let mut labels = vec![bio::O; tokens.len()];
    let mut prev_in = false;
    for (i, t) in tokens.iter().enumerate() {
        if gold_set.contains(t.as_str()) {
            labels[i] = if prev_in { bio::I } else { bio::B };
            prev_in = true;
        } else {
            prev_in = false;
        }
    }
    labels
}

/// Re-export for shape checks in integration code.
pub fn emissions_dim(m: &Matrix) -> (usize, usize) {
    (m.rows(), m.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        giant_text::tokenize(s)
    }

    fn training_data() -> Vec<(Vec<String>, Vec<usize>)> {
        // Wrapper words are O; content tokens are the phrase.
        [
            ("best electric cars", "electric cars"),
            ("what are the animated films", "animated films"),
            ("top pop singers 2018", "pop singers"),
            ("best marathon runners", "marathon runners"),
            ("what are the budget phones", "budget phones"),
        ]
        .iter()
        .map(|(q, g)| {
            let t = toks(q);
            let labels = bio_labels(&t, &toks(g));
            (t, labels)
        })
        .collect()
    }

    #[test]
    fn bio_labels_mark_spans() {
        let labels = bio_labels(&toks("best electric cars list"), &toks("electric cars"));
        assert_eq!(labels, vec![bio::O, bio::B, bio::I, bio::O]);
        // Discontiguous gold tokens start new B spans.
        let labels = bio_labels(&toks("cars that are electric"), &toks("electric cars"));
        assert_eq!(labels, vec![bio::B, bio::O, bio::O, bio::B]);
    }

    #[test]
    fn crf_tagger_learns_wrapper_vs_content() {
        let model = LstmTagger::train(&training_data(), TaggerConfig::default());
        // Seen pattern, unseen content words → <unk> embeddings + transition
        // structure still recover the span shape.
        let pred = model.predict(&toks("best electric cars"));
        assert_eq!(pred, vec![bio::O, bio::B, bio::I]);
        let phrase = model.predict_phrase(&toks("top pop singers 2018")).unwrap();
        assert_eq!(phrase, toks("pop singers"));
    }

    #[test]
    fn softmax_variant_trains_too() {
        let cfg = TaggerConfig {
            use_crf: false,
            ..TaggerConfig::default()
        };
        let model = LstmTagger::train(&training_data(), cfg);
        let pred = model.predict(&toks("best electric cars"));
        assert_eq!(pred.len(), 3);
        // In-sample must be solid even without CRF.
        assert_eq!(pred[1], bio::B);
    }

    #[test]
    fn four_class_mode() {
        let cfg = TaggerConfig {
            n_classes: 4,
            epochs: 25,
            ..TaggerConfig::default()
        };
        // entity entity trigger other.
        let data: Vec<(Vec<String>, Vec<usize>)> = vec![
            (toks("quanta corp launches lineup"), vec![1, 1, 2, 0]),
            (toks("velor labs launches update"), vec![1, 1, 2, 0]),
            (toks("mira group recalls model"), vec![1, 1, 2, 0]),
        ];
        let model = LstmTagger::train(&data, cfg);
        let pred = model.predict(&toks("quanta corp launches lineup"));
        assert_eq!(pred, vec![1, 1, 2, 0]);
    }

    #[test]
    fn empty_sequence_predicts_empty() {
        let model = LstmTagger::train(&training_data(), TaggerConfig::default());
        assert!(model.predict(&[]).is_empty());
        assert_eq!(model.predict_phrase(&[]), None);
    }
}

//! The Match / Align / MatchAlign baselines (paper §5.2), built on the core
//! bootstrapping and alignment primitives.
//!
//! * **Match** — extract concepts from the cluster's queries with patterns
//!   learned by bootstrapping on the training queries.
//! * **Align** — query–title alignment on the cluster.
//! * **MatchAlign** — both; "we select the most frequent result if multiple
//!   phrases are extracted".

use giant_core::align::align_query_title;
use giant_core::bootstrap::{Bootstrapper, Pattern};
use giant_text::StopWords;
use std::collections::HashMap;

/// The Match baseline: a bootstrapped pattern extractor.
#[derive(Debug)]
pub struct MatchBaseline {
    boot: Bootstrapper,
}

impl MatchBaseline {
    /// Bootstraps patterns from the training queries (no support threshold).
    pub fn train(train_queries: &[String], rounds: usize) -> Self {
        Self::train_with_support(train_queries, rounds, 1)
    }

    /// Bootstraps patterns, keeping only those with at least `min_support`
    /// distinct supporting concepts (the realistic setting for Table 5).
    pub fn train_with_support(
        train_queries: &[String],
        rounds: usize,
        min_support: usize,
    ) -> Self {
        let tokenized: Vec<Vec<String>> =
            train_queries.iter().map(|q| giant_text::tokenize(q)).collect();
        Self {
            boot: Bootstrapper::run_with_support(
                &tokenized,
                &Pattern::default_seeds(),
                rounds,
                min_support,
            ),
        }
    }

    /// Number of learned patterns.
    pub fn n_patterns(&self) -> usize {
        self.boot.patterns.len()
    }

    /// All pattern extractions over the cluster queries.
    fn extractions(&self, queries: &[String]) -> Vec<Vec<String>> {
        queries
            .iter()
            .filter_map(|q| self.boot.extract_best(&giant_text::tokenize(q)))
            .collect()
    }

    /// Predicts the cluster phrase (most frequent extraction).
    pub fn predict(&self, queries: &[String]) -> Option<Vec<String>> {
        most_frequent(self.extractions(queries))
    }
}

/// The Align baseline: first successful query–title chunk, preferring the
/// highest-weighted query and title.
pub fn align_predict(
    queries: &[String],
    titles: &[String],
    stopwords: &StopWords,
) -> Option<Vec<String>> {
    for q in queries {
        let qt = giant_text::tokenize(q);
        for t in titles {
            if let Some(chunk) = align_query_title(&qt, &giant_text::tokenize(t), stopwords) {
                return Some(chunk);
            }
        }
    }
    None
}

/// The MatchAlign baseline: pool Match and Align extractions, return the
/// most frequent.
pub fn match_align_predict(
    matcher: &MatchBaseline,
    queries: &[String],
    titles: &[String],
    stopwords: &StopWords,
) -> Option<Vec<String>> {
    let mut all = matcher.extractions(queries);
    for q in queries {
        let qt = giant_text::tokenize(q);
        for t in titles {
            if let Some(chunk) = align_query_title(&qt, &giant_text::tokenize(t), stopwords) {
                all.push(chunk);
            }
        }
    }
    most_frequent(all)
}

fn most_frequent(extractions: Vec<Vec<String>>) -> Option<Vec<String>> {
    if extractions.is_empty() {
        return None;
    }
    let mut counts: HashMap<Vec<String>, usize> = HashMap::new();
    for e in extractions {
        *counts.entry(e).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.len().cmp(&a.0.len())).then(b.0.cmp(&a.0)))
        .map(|(e, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn match_baseline_extracts_with_learned_patterns() {
        let train = owned(&[
            "best electric cars",
            "electric cars list",
            "best budget phones",
        ]);
        let m = MatchBaseline::train(&train, 3);
        assert!(m.n_patterns() >= 2);
        // "{} list" was learned; it extracts from an unseen cluster.
        let pred = m.predict(&owned(&["animated films list"])).unwrap();
        assert_eq!(pred, giant_text::tokenize("animated films"));
    }

    #[test]
    fn match_returns_none_without_pattern() {
        let m = MatchBaseline::train(&owned(&["best electric cars"]), 2);
        assert_eq!(m.predict(&owned(&["completely different query"])), None);
    }

    #[test]
    fn align_uses_first_matching_title() {
        let sw = StopWords::standard();
        let pred = align_predict(
            &owned(&["best electric cars"]),
            &owned(&["no match here", "top electric family cars 2018"]),
            &sw,
        )
        .unwrap();
        assert_eq!(pred, giant_text::tokenize("electric family cars"));
    }

    #[test]
    fn match_align_prefers_majority() {
        let train = owned(&["best electric cars", "electric cars list"]);
        let m = MatchBaseline::train(&train, 3);
        // Three queries extract "electric cars" via patterns; one title
        // aligns to the same → clear majority.
        let queries = owned(&["best electric cars", "electric cars list"]);
        let titles = owned(&["great electric cars here"]);
        let pred = match_align_predict(&m, &queries, &titles, &StopWords::standard()).unwrap();
        assert_eq!(pred, giant_text::tokenize("electric cars"));
    }

    #[test]
    fn most_frequent_tie_breaks_deterministically() {
        let a = giant_text::tokenize("alpha beta");
        let b = giant_text::tokenize("gamma");
        let x = most_frequent(vec![a.clone(), b.clone()]);
        let y = most_frequent(vec![b, a]);
        assert_eq!(x, y);
    }
}

//! TextSummary baseline (paper §5.2): a sequence-to-sequence summarizer with
//! attention, fed "the concatenation of queries and titles" and trained to
//! emit the event phrase.
//!
//! Architecture mirrors the paper's description at reduced scale: BiLSTM
//! encoder, unidirectional LSTM decoder with dot-product attention over the
//! encoder states, teacher forcing at train time and greedy decoding at
//! inference. The attention backward pass is derived by hand like every
//! other module in this reproduction.

use giant_nn::{act, loss, Adam, BiLstm, EmbeddingLayer, Linear, Lstm, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Seq2seq hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct Seq2SeqConfig {
    /// Embedding width.
    pub embed_dim: usize,
    /// Encoder hidden per direction (decoder hidden = 2×this).
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Maximum source length (inputs truncated).
    pub max_src: usize,
    /// Maximum decoded length.
    pub max_tgt: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Self {
            embed_dim: 24,
            hidden: 24,
            lr: 0.01,
            epochs: 15,
            max_src: 60,
            max_tgt: 12,
            seed: 5,
        }
    }
}

const UNK: usize = 0;
const BOS: usize = 1;
const EOS: usize = 2;

/// Encoder–decoder with attention.
#[derive(Debug)]
pub struct TextSummary {
    cfg: Seq2SeqConfig,
    vocab: HashMap<String, usize>,
    inv_vocab: Vec<String>,
    enc_embed: EmbeddingLayer,
    dec_embed: EmbeddingLayer,
    encoder: BiLstm,
    decoder: Lstm,
    proj: Linear,
}

impl TextSummary {
    fn ids(&self, tokens: &[String]) -> Vec<usize> {
        tokens
            .iter()
            .map(|t| self.vocab.get(t).copied().unwrap_or(UNK))
            .collect()
    }

    /// Trains on `(source tokens, target tokens)` pairs.
    pub fn train(pairs: &[(Vec<String>, Vec<String>)], cfg: Seq2SeqConfig) -> Self {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        vocab.insert("<unk>".to_owned(), UNK);
        vocab.insert("<bos>".to_owned(), BOS);
        vocab.insert("<eos>".to_owned(), EOS);
        for (src, tgt) in pairs {
            for t in src.iter().chain(tgt) {
                let next = vocab.len();
                vocab.entry(t.clone()).or_insert(next);
            }
        }
        let mut inv_vocab = vec![String::new(); vocab.len()];
        for (w, &i) in &vocab {
            inv_vocab[i] = w.clone();
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let v = vocab.len();
        let enc_embed = EmbeddingLayer::new(v, cfg.embed_dim, &mut rng);
        let dec_embed = EmbeddingLayer::new(v, cfg.embed_dim, &mut rng);
        let encoder = BiLstm::new(cfg.embed_dim, cfg.hidden, &mut rng);
        let decoder = Lstm::new(cfg.embed_dim, 2 * cfg.hidden, &mut rng);
        let proj = Linear::new(4 * cfg.hidden, v, &mut rng);
        let mut model = Self {
            cfg,
            vocab,
            inv_vocab,
            enc_embed,
            dec_embed,
            encoder,
            decoder,
            proj,
        };
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            for (src, tgt) in pairs {
                model.train_step(src, tgt, &mut opt);
            }
        }
        model
    }

    fn train_step(&mut self, src: &[String], tgt: &[String], opt: &mut Adam) {
        if src.is_empty() || tgt.is_empty() {
            return;
        }
        let src_ids: Vec<usize> = self.ids(src).into_iter().take(self.cfg.max_src).collect();
        let mut tgt_in = vec![BOS];
        tgt_in.extend(self.ids(tgt));
        let mut tgt_out = self.ids(tgt);
        tgt_out.push(EOS);

        // Forward.
        let xe = self.enc_embed.forward(&src_ids);
        let h_enc = self.encoder.forward(&xe); // (Ts × 2h)
        let xd = self.dec_embed.forward(&tgt_in);
        let s = self.decoder.forward(&xd); // (Tt × 2h)
        let scores = s.matmul_nt(&h_enc); // (Tt × Ts)
        let alpha = act::softmax_rows(&scores);
        let ctx = alpha.matmul(&h_enc); // (Tt × 2h)
        let feat = Matrix::hcat(&s, &ctx); // (Tt × 4h)
        let logits = self.proj.forward(&feat);
        let (_, d_logits) = loss::softmax_cross_entropy(&logits, &tgt_out, None);

        // Backward.
        let d_feat = self.proj.backward(&d_logits);
        let (d_s1, d_ctx) = d_feat.hsplit(s.cols());
        // ctx = alpha @ h_enc.
        let d_alpha = d_ctx.matmul_nt(&h_enc);
        let mut d_h_enc = alpha.matmul_tn(&d_ctx);
        // softmax backward per row: dscore_ij = α_ij (dα_ij − Σ_k dα_ik α_ik).
        let mut d_scores = Matrix::zeros(alpha.rows(), alpha.cols());
        for r in 0..alpha.rows() {
            let dot: f64 = d_alpha
                .row(r)
                .iter()
                .zip(alpha.row(r))
                .map(|(d, a)| d * a)
                .sum();
            for c in 0..alpha.cols() {
                d_scores.set(r, c, alpha.get(r, c) * (d_alpha.get(r, c) - dot));
            }
        }
        // scores = s @ h_encᵀ.
        let mut d_s = d_scores.matmul(&h_enc);
        d_s.add_assign(&d_s1);
        d_h_enc.add_assign(&d_scores.matmul_tn(&s));
        let d_xd = self.decoder.backward(&d_s);
        self.dec_embed.backward(&d_xd);
        let d_xe = self.encoder.backward(&d_h_enc);
        self.enc_embed.backward(&d_xe);

        let mut params = self.enc_embed.params_mut();
        params.extend(self.dec_embed.params_mut());
        params.extend(self.encoder.params_mut());
        params.extend(self.decoder.params_mut());
        params.extend(self.proj.params_mut());
        opt.step(&mut params);
    }

    /// Greedy decoding. The decoder LSTM is re-run on the growing prefix at
    /// each step (`O(T²)`, fine at `max_tgt` ≤ 12).
    pub fn summarize(&self, src: &[String]) -> Vec<String> {
        if src.is_empty() {
            return Vec::new();
        }
        let src_ids: Vec<usize> = self.ids(src).into_iter().take(self.cfg.max_src).collect();
        let xe = self.enc_embed.forward_inference(&src_ids);
        let h_enc = self.encoder.forward_inference(&xe);
        let mut out_ids: Vec<usize> = Vec::new();
        let mut prefix = vec![BOS];
        for _ in 0..self.cfg.max_tgt {
            let xd = self.dec_embed.forward_inference(&prefix);
            let s_all = self.decoder.forward_inference(&xd);
            let s_last = s_all.slice_rows(s_all.rows() - 1, s_all.rows());
            let scores = s_last.matmul_nt(&h_enc);
            let alpha = act::softmax_rows(&scores);
            let ctx = alpha.matmul(&h_enc);
            let feat = Matrix::hcat(&s_last, &ctx);
            let logits = self.proj.forward_inference(&feat);
            let next = logits
                .row(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(EOS);
            if next == EOS || next == BOS {
                break;
            }
            out_ids.push(next);
            prefix.push(next);
        }
        out_ids
            .into_iter()
            .map(|i| self.inv_vocab[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        giant_text::tokenize(s)
    }

    fn copy_task_pairs() -> Vec<(Vec<String>, Vec<String>)> {
        // Learn to copy the middle span — a miniature of event extraction.
        vec![
            (toks("x x alpha launch y"), toks("alpha launch")),
            (toks("x x beta launch y"), toks("beta launch")),
            (toks("x x gamma launch y"), toks("gamma launch")),
            (toks("x x delta launch y"), toks("delta launch")),
        ]
    }

    #[test]
    fn learns_a_small_copy_task() {
        let cfg = Seq2SeqConfig {
            epochs: 60,
            ..Seq2SeqConfig::default()
        };
        let model = TextSummary::train(&copy_task_pairs(), cfg);
        let out = model.summarize(&toks("x x beta launch y"));
        assert!(
            out.contains(&"launch".to_owned()),
            "expected 'launch' in {out:?}"
        );
        // Bounded length and terminates.
        assert!(out.len() <= cfg.max_tgt);
    }

    #[test]
    fn unknown_tokens_do_not_panic() {
        let model = TextSummary::train(&copy_task_pairs(), Seq2SeqConfig::default());
        let out = model.summarize(&toks("completely novel words here"));
        assert!(out.len() <= Seq2SeqConfig::default().max_tgt);
    }

    #[test]
    fn empty_source_yields_empty() {
        let model = TextSummary::train(&copy_task_pairs(), Seq2SeqConfig::default());
        assert!(model.summarize(&[]).is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = Seq2SeqConfig {
            epochs: 5,
            ..Seq2SeqConfig::default()
        };
        let a = TextSummary::train(&copy_task_pairs(), cfg);
        let b = TextSummary::train(&copy_task_pairs(), cfg);
        assert_eq!(
            a.summarize(&toks("x x alpha launch y")),
            b.summarize(&toks("x x alpha launch y"))
        );
    }
}

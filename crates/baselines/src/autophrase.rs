//! AutoPhrase-style quality phrase mining (Shang et al. 2018; paper §5.2).
//!
//! Substitution note: full AutoPhrase couples distant KB supervision with
//! POS-guided segmentation over a massive corpus. This scaled-down analogue
//! keeps the two load-bearing ideas — (1) candidate n-grams scored by
//! frequency, completeness and a POS-pattern prior, (2) a knowledge-base
//! seed list that boosts known-quality phrases — and follows the paper's
//! evaluation protocol (top-5 phrases concatenated in input order).

use giant_text::{Lexicon, PosTag, StopWords};
use std::collections::{HashMap, HashSet};

/// AutoPhrase-analogue parameters.
#[derive(Debug, Clone)]
pub struct AutoPhraseConfig {
    /// Maximum candidate n-gram length.
    pub max_len: usize,
    /// Minimum corpus frequency.
    pub min_freq: usize,
    /// Score boost for phrases found in the seed knowledge base.
    pub kb_boost: f64,
    /// Phrases kept (paper protocol: 5).
    pub top_k: usize,
}

impl Default for AutoPhraseConfig {
    fn default() -> Self {
        Self {
            max_len: 4,
            min_freq: 2,
            kb_boost: 2.0,
            top_k: 5,
        }
    }
}

/// A corpus-level phrase miner.
#[derive(Debug)]
pub struct AutoPhrase {
    scores: HashMap<Vec<String>, f64>,
    cfg: AutoPhraseConfig,
}

impl AutoPhrase {
    /// Mines quality phrases from the corpus sequences, boosting `kb` seeds.
    pub fn mine(
        corpus: &[Vec<String>],
        kb: &HashSet<Vec<String>>,
        lexicon: &Lexicon,
        stopwords: &StopWords,
        cfg: AutoPhraseConfig,
    ) -> Self {
        // Count candidate n-grams.
        let mut freq: HashMap<Vec<String>, usize> = HashMap::new();
        for seq in corpus {
            for len in 1..=cfg.max_len.min(seq.len()) {
                for start in 0..=seq.len() - len {
                    let gram = &seq[start..start + len];
                    // Boundaries must be content tokens.
                    if stopwords.is_stop(&gram[0]) || stopwords.is_stop(&gram[len - 1]) {
                        continue;
                    }
                    *freq.entry(gram.to_vec()).or_insert(0) += 1;
                }
            }
        }
        let total: f64 = freq.values().map(|&c| c as f64).sum::<f64>().max(1.0);
        let mut scores = HashMap::new();
        for (gram, count) in freq {
            if count < cfg.min_freq {
                continue;
            }
            // POS-pattern prior: (ADJ|NOUN)* NOUN is a quality noun phrase.
            let tags: Vec<PosTag> = gram.iter().map(|t| lexicon.tag(t)).collect();
            let np_like = tags.last().map(|t| t.is_nominal()).unwrap_or(false)
                && tags
                    .iter()
                    .all(|t| t.is_nominal() || *t == PosTag::Adjective || *t == PosTag::Numeral);
            let pos_bonus = if np_like { 2.0 } else { 0.5 };
            // Frequency in log scale, longer grams slightly preferred
            // (completeness), KB seeds boosted.
            let mut s = (count as f64 / total).ln().exp().max(1e-9);
            s = s.powf(0.5) * pos_bonus * (1.0 + 0.2 * gram.len() as f64);
            if kb.contains(&gram) {
                s *= cfg.kb_boost;
            }
            scores.insert(gram, s);
        }
        Self { scores, cfg }
    }

    /// Quality score of a phrase (0 when unmined).
    pub fn score(&self, gram: &[String]) -> f64 {
        self.scores.get(gram).copied().unwrap_or(0.0)
    }

    /// Number of mined phrases.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when nothing was mined.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The paper's protocol for one cluster: top-k corpus phrases present in
    /// the cluster, concatenated in first-appearance order.
    pub fn extract_phrase(&self, queries: &[String], titles: &[String]) -> Option<Vec<String>> {
        let sequences: Vec<Vec<String>> = queries
            .iter()
            .chain(titles)
            .map(|s| giant_text::tokenize(s))
            .collect();
        // Candidate grams present in the cluster.
        let mut present: Vec<(&Vec<String>, f64, usize)> = Vec::new(); // (gram, score, first pos)
        let flat: Vec<&str> = sequences.iter().flatten().map(|s| s.as_str()).collect();
        for (gram, &score) in &self.scores {
            let mut first = None;
            'outer: for start in 0..flat.len() {
                if start + gram.len() <= flat.len()
                    && gram.iter().zip(&flat[start..]).all(|(a, b)| a == b)
                {
                    first = Some(start);
                    break 'outer;
                }
            }
            if let Some(pos) = first {
                present.push((gram, score, pos));
            }
        }
        if present.is_empty() {
            return None;
        }
        present.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.2.cmp(&b.2)));
        let mut top: Vec<(usize, &Vec<String>)> = present
            .into_iter()
            .take(self.cfg.top_k)
            .map(|(g, _, p)| (p, g))
            .collect();
        top.sort_by_key(|(p, _)| *p);
        // Concatenate without repeating tokens already emitted.
        let mut out: Vec<String> = Vec::new();
        for (_, gram) in top {
            for t in gram {
                if !out.contains(t) {
                    out.push(t.clone());
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        [
            "best electric cars of 2018",
            "electric cars buying guide",
            "top electric cars list",
            "random words appear here",
        ]
        .iter()
        .map(|s| giant_text::tokenize(s))
        .collect()
    }

    fn lexicon() -> Lexicon {
        let mut lx = Lexicon::with_closed_class();
        lx.insert("cars", PosTag::Noun);
        lx.insert("guide", PosTag::Noun);
        lx.insert("electric", PosTag::Adjective);
        lx
    }

    #[test]
    fn frequent_noun_phrases_score_high() {
        let ap = AutoPhrase::mine(
            &corpus(),
            &HashSet::new(),
            &lexicon(),
            &StopWords::standard(),
            AutoPhraseConfig::default(),
        );
        let ec = giant_text::tokenize("electric cars");
        assert!(ap.score(&ec) > 0.0);
        // Higher than a random one-off bigram.
        let rw = giant_text::tokenize("random words");
        assert!(ap.score(&ec) > ap.score(&rw));
    }

    #[test]
    fn kb_boost_applies() {
        let sw = StopWords::standard();
        let lx = lexicon();
        let mut kb = HashSet::new();
        kb.insert(giant_text::tokenize("electric cars"));
        let boosted = AutoPhrase::mine(&corpus(), &kb, &lx, &sw, AutoPhraseConfig::default());
        let plain = AutoPhrase::mine(&corpus(), &HashSet::new(), &lx, &sw, AutoPhraseConfig::default());
        let ec = giant_text::tokenize("electric cars");
        assert!(boosted.score(&ec) > plain.score(&ec));
    }

    #[test]
    fn extract_phrase_covers_cluster_tokens() {
        let ap = AutoPhrase::mine(
            &corpus(),
            &HashSet::new(),
            &lexicon(),
            &StopWords::standard(),
            AutoPhraseConfig::default(),
        );
        let queries = vec!["best electric cars".to_owned()];
        let titles = vec!["electric cars buying guide".to_owned()];
        let phrase = ap.extract_phrase(&queries, &titles).unwrap();
        assert!(phrase.contains(&"electric".to_owned()));
        assert!(phrase.contains(&"cars".to_owned()));
        // No duplicate tokens in the concatenation.
        let mut dedup = phrase.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), phrase.len());
    }

    #[test]
    fn cluster_without_known_phrases_yields_none() {
        let ap = AutoPhrase::mine(
            &corpus(),
            &HashSet::new(),
            &lexicon(),
            &StopWords::standard(),
            AutoPhraseConfig::default(),
        );
        assert_eq!(
            ap.extract_phrase(&["zzz qqq".to_owned()], &[]),
            None
        );
    }

    #[test]
    fn stopword_boundaries_are_rejected() {
        let ap = AutoPhrase::mine(
            &corpus(),
            &HashSet::new(),
            &lexicon(),
            &StopWords::standard(),
            AutoPhraseConfig::default(),
        );
        // "of 2018" starts with a stop word — never a candidate.
        assert_eq!(ap.score(&giant_text::tokenize("of 2018")), 0.0);
    }
}

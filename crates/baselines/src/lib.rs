//! # giant-baselines — every comparison method from the paper's evaluation
//!
//! Tables 5–7 compare GCTSP-Net against: TextRank, AutoPhrase, Match, Align,
//! MatchAlign, LSTM-CRF (query/title variants), plain LSTM, CoverRank and
//! TextSummary. This crate implements each at the protocol the paper
//! describes, plus the metrics (EM / token F1 / COV and macro/micro/weighted
//! F1).
//!
//! CoverRank itself lives in `giant-core::event_cand` (the pipeline uses it
//! to build training candidates); this crate re-exports it alongside the
//! other baselines so the benchmark harness has one import surface.

pub mod autophrase;
pub mod eval;
pub mod lstm_tagger;
pub mod matching;
pub mod textrank;
pub mod textsummary;

pub use autophrase::{AutoPhrase, AutoPhraseConfig};
pub use eval::{evaluate_phrases, exact_match, multiclass_f1, token_f1, MiningEval, MultiClassEval};
pub use giant_core::event_cand::{best_event_candidate, cover_rank};
pub use lstm_tagger::{bio, bio_labels, LstmTagger, TaggerConfig};
pub use matching::{align_predict, match_align_predict, MatchBaseline};
pub use textrank::{textrank_keywords, textrank_phrase, TextRankConfig};
pub use textsummary::{Seq2SeqConfig, TextSummary};

//! TextRank baseline (Mihalcea & Tarau 2004; paper §5.2).
//!
//! "A classical graph-based keyword extraction model… we extract the top 5
//! keywords or phrases from queries and titles, and concatenate them in the
//! same order with the query/title to get the extracted phrase."

use giant_text::StopWords;
use std::collections::HashMap;

/// TextRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct TextRankConfig {
    /// Co-occurrence window (tokens).
    pub window: usize,
    /// PageRank damping factor.
    pub damping: f64,
    /// Power-iteration rounds.
    pub iterations: usize,
    /// Keywords kept (paper protocol: 5).
    pub top_k: usize,
}

impl Default for TextRankConfig {
    fn default() -> Self {
        Self {
            window: 3,
            damping: 0.85,
            iterations: 30,
            top_k: 5,
        }
    }
}

/// Ranks content words of the token sequences by TextRank score.
pub fn textrank_keywords(
    sequences: &[Vec<String>],
    stopwords: &StopWords,
    cfg: &TextRankConfig,
) -> Vec<(String, f64)> {
    // Build the co-occurrence graph over content tokens.
    let mut index: HashMap<&str, usize> = HashMap::new();
    let mut words: Vec<&str> = Vec::new();
    let mut edges: HashMap<(usize, usize), f64> = HashMap::new();
    for seq in sequences {
        let content: Vec<&str> = seq
            .iter()
            .map(|t| t.as_str())
            .filter(|t| !stopwords.is_stop(t))
            .collect();
        let ids: Vec<usize> = content
            .iter()
            .map(|w| {
                *index.entry(w).or_insert_with(|| {
                    words.push(w);
                    words.len() - 1
                })
            })
            .collect();
        for i in 0..ids.len() {
            for j in i + 1..(i + cfg.window).min(ids.len()) {
                if ids[i] == ids[j] {
                    continue;
                }
                *edges.entry((ids[i], ids[j])).or_insert(0.0) += 1.0;
                *edges.entry((ids[j], ids[i])).or_insert(0.0) += 1.0;
            }
        }
    }
    let n = words.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out_weight = vec![0.0f64; n];
    for (&(i, _), w) in &edges {
        out_weight[i] += w;
    }
    // Power iteration.
    let mut score = vec![1.0 / n as f64; n];
    for _ in 0..cfg.iterations {
        let mut next = vec![(1.0 - cfg.damping) / n as f64; n];
        for (&(i, j), w) in &edges {
            if out_weight[i] > 0.0 {
                next[j] += cfg.damping * score[i] * w / out_weight[i];
            }
        }
        score = next;
    }
    let mut ranked: Vec<(String, f64)> = words
        .iter()
        .zip(&score)
        .map(|(w, s)| (w.to_string(), *s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// The full baseline protocol: top-k keywords re-ordered by first appearance
/// in the inputs and concatenated into a phrase.
pub fn textrank_phrase(
    queries: &[String],
    titles: &[String],
    stopwords: &StopWords,
    cfg: &TextRankConfig,
) -> Option<Vec<String>> {
    let sequences: Vec<Vec<String>> = queries
        .iter()
        .chain(titles)
        .map(|s| giant_text::tokenize(s))
        .collect();
    let ranked = textrank_keywords(&sequences, stopwords, cfg);
    if ranked.is_empty() {
        return None;
    }
    let top: Vec<&str> = ranked.iter().take(cfg.top_k).map(|(w, _)| w.as_str()).collect();
    // "Concatenate them in the same order with the query/title": order by
    // first appearance across the inputs.
    let mut order: Vec<(usize, &str)> = Vec::new();
    let flat: Vec<&str> = sequences.iter().flatten().map(|s| s.as_str()).collect();
    for w in &top {
        if let Some(pos) = flat.iter().position(|t| t == w) {
            order.push((pos, w));
        }
    }
    order.sort_unstable();
    Some(order.into_iter().map(|(_, w)| w.to_owned()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_words_rank_highest() {
        let sw = StopWords::standard();
        let seqs: Vec<Vec<String>> = [
            "electric cars are great",
            "electric cars guide",
            "the best electric cars",
            "boring unrelated sentence here",
        ]
        .iter()
        .map(|s| giant_text::tokenize(s))
        .collect();
        let ranked = textrank_keywords(&seqs, &sw, &TextRankConfig::default());
        let top2: Vec<&str> = ranked.iter().take(2).map(|(w, _)| w.as_str()).collect();
        assert!(top2.contains(&"electric"));
        assert!(top2.contains(&"cars"));
    }

    #[test]
    fn phrase_preserves_input_order() {
        let sw = StopWords::standard();
        let queries = vec!["best electric cars".to_owned()];
        let titles = vec!["top electric cars of 2018".to_owned()];
        let phrase = textrank_phrase(&queries, &titles, &sw, &TextRankConfig::default()).unwrap();
        let e = phrase.iter().position(|t| t == "electric");
        let c = phrase.iter().position(|t| t == "cars");
        assert!(e.is_some() && c.is_some());
        assert!(e < c, "input order must be preserved: {phrase:?}");
    }

    #[test]
    fn empty_inputs_yield_none() {
        let sw = StopWords::standard();
        assert_eq!(textrank_phrase(&[], &[], &sw, &TextRankConfig::default()), None);
    }

    #[test]
    fn top_k_caps_phrase_length() {
        let sw = StopWords::standard();
        let queries = vec!["alpha beta gamma delta epsilon zeta eta theta".to_owned()];
        let cfg = TextRankConfig {
            top_k: 3,
            ..TextRankConfig::default()
        };
        let phrase = textrank_phrase(&queries, &[], &sw, &cfg).unwrap();
        assert!(phrase.len() <= 3);
    }
}

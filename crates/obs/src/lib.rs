//! Unified observability for the GIANT stack (DESIGN.md §13).
//!
//! Four incompatible one-off mechanisms grew up around the system —
//! `giant-net`'s private latency histograms, the pipeline's ad-hoc
//! `GiantOutput.timings`, the WAL's internal fsync counter, the
//! incremental driver's per-ingest seconds. This crate is the one layer
//! they all feed, offline and dependency-free (consistent with the
//! vendored-stand-ins policy):
//!
//! * **[`metrics`]** — a process-wide registry of lock-free counters,
//!   gauges, and log-scale histograms (the histogram generalised out of
//!   `giant-net`'s stats, byte-compatible math). Updates are relaxed
//!   atomics; the registry lock is touched only at registration and
//!   snapshot time.
//! * **[`span()`]** — scoped timers with parent/child nesting per thread
//!   and a bounded ring buffer of recent spans. A [`SpanGuard`] always
//!   measures (subsystems feed their public timing fields from it, so
//!   compat accessors and obs read the same clock); the ring, the
//!   per-span histograms, and the profiler only engage when obs is
//!   **armed**.
//! * **[`profile`]** — an opt-in sampler that folds span stacks into a
//!   flamegraph-compatible folded-stacks file
//!   (`path;to;span self_us` per line).
//! * **[`expose`]** — deterministic text and JSON renderings of a
//!   metrics snapshot (JSON via `giant_ontology::json`).
//!
//! ## Arming
//!
//! The whole layer is disarmed by default: spans still time (two
//! `Instant` reads and a thread-local push/pop), counters still count
//! (one relaxed `fetch_add`), but nothing is allocated and no locks are
//! taken on hot paths. [`arm`]`(true)`, or the `GIANT_OBS=1`
//! environment variable at first use, switches on span recording,
//! per-span histograms, and profiling. The contract, enforced by
//! `tests/obs_determinism.rs` and the `obs_overhead` bench: arming
//! never perturbs any output byte, and costs <2% on the pipeline and
//! serving paths.

pub mod expose;
pub mod metrics;
pub mod profile;
pub mod span;

pub use expose::{render_json, render_text};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSummary, MetricRow, MetricValue,
    MetricsSnapshot, Registry,
};
pub use profile::{clear_profile, folded_stacks, profiling, set_profiling};
pub use span::{arm, armed, clear_recent_spans, recent_spans, span, SpanGuard, SpanRecord};

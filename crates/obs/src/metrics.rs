//! The lock-free metrics registry: counters, gauges, log-scale
//! histograms, and point-in-time snapshots.
//!
//! Metric handles are `Arc`s handed out by a [`Registry`]; callers cache
//! the handle and update it with relaxed atomics — the registry's lock
//! is only taken to register a new name or to [`Registry::snapshot`].
//! Names are stable strings (`wal.appends`, `net.queue.wait_us`, ...);
//! DESIGN.md §13 carries the full name registry.
//!
//! The histogram is the log-scale design proven in `giant-net`'s stats
//! (four buckets per octave of microseconds, bucket-floor quantiles);
//! that crate now wraps this one, and the bucket math here must stay
//! byte-compatible with what its `StatsReport` always reported.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Buckets per histogram: 4 per octave × 32 octaves covers <1 µs through
/// ~4000 s in one fixed array.
pub const BUCKETS: usize = 128;
const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written-value (or high-water-mark) gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger — a high-water mark.
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One log-scale latency/duration histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index a sample of `us` microseconds lands in.
    pub fn bucket_of(us: f64) -> usize {
        if us <= 1.0 {
            return 0;
        }
        let idx = (us.log2() * BUCKETS_PER_OCTAVE).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower edge of bucket `idx` in microseconds — the conservative
    /// (under-)estimate reported for percentiles.
    pub fn bucket_floor_us(idx: usize) -> f64 {
        (2f64).powf(idx as f64 / BUCKETS_PER_OCTAVE)
    }

    /// Records one sample of `us` microseconds.
    pub fn record(&self, us: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Micros round to integers for the running sum: exact addition
        // under concurrency (floats would race-drop precision), and 2^64
        // µs of accumulated time is not a practical overflow.
        self.sum_us.fetch_add(us.max(0.0).round() as u64, Ordering::Relaxed);
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded microseconds (each sample rounded to whole µs).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The latency at quantile `q` (0..=1), or 0 when empty. Resolution
    /// is one bucket (±~19%), which is plenty for p50/p99 curves.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor_us(idx);
            }
        }
        Self::bucket_floor_us(BUCKETS - 1)
    }

    /// The snapshot row this histogram exposes.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum_us: self.sum_us(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
        }
    }
}

/// A histogram's exposition row: count, total time, and the two
/// percentiles every dashboard actually reads.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples, microseconds (per-sample rounded).
    pub sum_us: u64,
    /// Median, microseconds (bucket floor).
    pub p50_us: f64,
    /// 99th percentile, microseconds (bucket floor).
    pub p99_us: f64,
}

/// A registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A name → metric table. Most code uses the process-wide [`registry`];
/// tests construct private ones.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// metric names are a static contract (DESIGN.md §13), so a kind
    /// clash is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// On a metric-kind clash, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// On a metric-kind clash, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name (the `BTreeMap` iteration order — deterministic given the
    /// same set of registered names).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            rows: map
                .iter()
                .map(|(name, m)| MetricRow {
                    name: name.clone(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                    },
                })
                .collect(),
        }
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// The process-wide registry every subsystem reports into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// One snapshot row: a stable name and the value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// The registered metric name.
    pub name: String,
    /// The value read at snapshot time.
    pub value: MetricValue,
}

/// A snapshot value, tagged by metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's summary row.
    Histogram(HistogramSummary),
}

/// A consistent-enough snapshot (each row is atomically read; the set is
/// not fenced — fine for monitoring). Rows are sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The rows, sorted by `name`.
    pub rows: Vec<MetricRow>,
}

impl MetricsSnapshot {
    /// Looks up a row by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| &r.value)
    }

    /// A counter row's total, if `name` is a registered counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Merges two snapshots into one, re-sorted by name. Duplicate names
    /// keep `self`'s row — callers namespace to avoid collisions.
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        for row in other.rows {
            if self.rows.iter().all(|r| r.name != row.name) {
                self.rows.push(row);
            }
        }
        self.rows.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn buckets_are_monotone_and_clamped() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(1.0), 0);
        let mut last = 0;
        for us in [2.0, 10.0, 100.0, 1e4, 1e6, 1e9, 1e30] {
            let b = Histogram::bucket_of(us);
            assert!(b >= last, "bucket_of({us}) went backwards");
            last = b;
        }
        assert!(Histogram::bucket_of(1e300) < BUCKETS);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10.0);
        }
        h.record(10_000.0);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // Bucket floors under-report by at most one bucket width (~19%).
        assert!((8.0..=10.0).contains(&p50), "p50 = {p50}");
        assert!((8.0..=10.0).contains(&p99), "p99 = {p99}");
        assert!(h.quantile_us(1.0) > 8_000.0);
        assert_eq!(h.sum_us(), 99 * 10 + 10_000);
    }

    #[test]
    fn registry_hands_out_shared_handles_and_sorted_snapshots() {
        let reg = Registry::new();
        let a = reg.counter("z.last");
        let b = reg.counter("z.last");
        a.inc();
        b.add(2);
        reg.gauge("a.first").set(-7);
        reg.histogram("m.mid").record(100.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.counter("z.last"), Some(3));
        assert_eq!(snap.get("a.first"), Some(&MetricValue::Gauge(-7)));
        match snap.get("m.mid") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clashes_panic() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn merge_prefers_self_and_resorts() {
        let a = Registry::new();
        a.counter("b.same").add(1);
        a.counter("z.mine").add(9);
        let b = Registry::new();
        b.counter("b.same").add(100);
        b.counter("a.theirs").add(5);
        let merged = a.snapshot().merge(b.snapshot());
        let names: Vec<&str> = merged.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a.theirs", "b.same", "z.mine"]);
        assert_eq!(merged.counter("b.same"), Some(1));
    }

    /// N threads hammer one counter and one histogram; totals are exact —
    /// the ISSUE's concurrent-correctness requirement.
    #[test]
    fn concurrent_updates_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hammer.count");
                    let h = reg.histogram("hammer.lat");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record((t * PER_THREAD + i) as f64 % 1000.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hammer.count"), Some((THREADS * PER_THREAD) as u64));
        match snap.get("hammer.lat") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, (THREADS * PER_THREAD) as u64);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}

//! Deterministic renderings of a [`MetricsSnapshot`]: a line-oriented
//! text format and JSON via `giant_ontology::json` (the workspace's own
//! writer — no serde, per the offline-dependency policy).
//!
//! Both renderings are pure functions of the snapshot: same rows in,
//! same bytes out, so goldens and diffs over metric dumps are stable.

use giant_ontology::json::{render, Json};

use crate::metrics::{MetricValue, MetricsSnapshot};

/// Renders one row per metric:
///
/// ```text
/// ingest.batches counter 12
/// net.queue.depth gauge 3
/// span.fold histogram count=12 sum_us=8123 p50_us=512 p99_us=1024
/// ```
///
/// Floats use Rust's shortest-round-trip formatting, like every other
/// deterministic dump in the workspace.
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for row in &snapshot.rows {
        match &row.value {
            MetricValue::Counter(n) => {
                out.push_str(&format!("{} counter {n}\n", row.name));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{} gauge {v}\n", row.name));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{} histogram count={} sum_us={} p50_us={} p99_us={}\n",
                    row.name, h.count, h.sum_us, h.p50_us, h.p99_us
                ));
            }
        }
    }
    out
}

/// Renders the snapshot as a JSON document:
///
/// ```json
/// {
///   "metrics": [
///     {"name": "wal.appends", "type": "counter", "value": 12},
///     {"name": "span.fold", "type": "histogram",
///      "count": 12, "sum_us": 8123, "p50_us": 512.0, "p99_us": 1024.0}
///   ]
/// }
/// ```
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let rows = snapshot
        .rows
        .iter()
        .map(|row| {
            let mut pairs = vec![("name".to_string(), Json::Str(row.name.clone()))];
            match &row.value {
                MetricValue::Counter(n) => {
                    pairs.push(("type".to_string(), Json::Str("counter".to_string())));
                    pairs.push(("value".to_string(), Json::Num(*n as f64)));
                }
                MetricValue::Gauge(v) => {
                    pairs.push(("type".to_string(), Json::Str("gauge".to_string())));
                    pairs.push(("value".to_string(), Json::Num(*v as f64)));
                }
                MetricValue::Histogram(h) => {
                    pairs.push(("type".to_string(), Json::Str("histogram".to_string())));
                    pairs.push(("count".to_string(), Json::Num(h.count as f64)));
                    pairs.push(("sum_us".to_string(), Json::Num(h.sum_us as f64)));
                    pairs.push(("p50_us".to_string(), Json::Num(h.p50_us)));
                    pairs.push(("p99_us".to_string(), Json::Num(h.p99_us)));
                }
            }
            Json::Obj(pairs)
        })
        .collect();
    let doc = Json::Obj(vec![("metrics".to_string(), Json::Arr(rows))]);
    // Every held number is finite by construction (counts, sums, bucket
    // floors), so rendering cannot fail.
    render(&doc).expect("metric values are finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("wal.appends").add(12);
        reg.gauge("net.queue.depth").set(3);
        let h = reg.histogram("span.fold");
        h.record(500.0);
        h.record(900.0);
        reg.snapshot()
    }

    #[test]
    fn text_rendering_is_stable() {
        let snap = sample();
        // The quantile fields are bucket floors; read them back from the
        // snapshot instead of hard-coding the float formatting.
        let (p50, p99) = match snap.get("span.fold") {
            Some(MetricValue::Histogram(h)) => (h.p50_us, h.p99_us),
            other => panic!("expected histogram, got {other:?}"),
        };
        let text = render_text(&snap);
        assert_eq!(
            text,
            format!(
                "net.queue.depth gauge 3\n\
                 span.fold histogram count=2 sum_us=1400 p50_us={p50} p99_us={p99}\n\
                 wal.appends counter 12\n"
            )
        );
        // Same snapshot, same bytes.
        assert_eq!(text, render_text(&snap));
    }

    #[test]
    fn json_rendering_parses_back() {
        let json = render_json(&sample());
        let doc = giant_ontology::json::parse(&json).expect("own rendering parses");
        let rows = doc.get("metrics").and_then(|m| m.as_arr()).expect("metrics array");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("name").and_then(|n| n.as_str()), Some("net.queue.depth"));
        assert_eq!(rows[2].get("value").and_then(|v| v.as_num()), Some(12.0));
    }
}

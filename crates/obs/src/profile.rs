//! Profiling hooks: fold span stacks into flamegraph-compatible
//! folded-stacks text.
//!
//! When both [`crate::arm`] and [`set_profiling`] are on, every closing
//! span adds its *self time* (duration minus child-span time) to the
//! accumulator under its full `root;child;leaf` path. [`folded_stacks`]
//! renders the classic format — one `path count` line per stack, the
//! count in microseconds — which `flamegraph.pl` or any compatible
//! viewer turns into a flame graph directly:
//!
//! ```text
//! pipeline;mine.execute 512345
//! pipeline;mine.plan 2345
//! ```
//!
//! The accumulator is a `BTreeMap` behind a mutex: profiling is
//! explicitly opt-in (a sampler you arm for a profiling run, not an
//! always-on path), so a short critical section per span exit is the
//! right trade against the complexity of a lock-free aggregator.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static PROFILING: AtomicBool = AtomicBool::new(false);

fn accumulator() -> &'static Mutex<BTreeMap<String, f64>> {
    static ACC: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();
    ACC.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Switches the folded-stacks accumulator on or off. Spans only feed it
/// while the layer is also armed ([`crate::arm`]).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::SeqCst);
}

/// Whether profiling is currently enabled.
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Accumulates `self_secs` of self time under `path` (span-exit hook).
pub(crate) fn record_stack(path: &str, self_secs: f64) {
    let mut acc = accumulator().lock().expect("profile accumulator poisoned");
    match acc.get_mut(path) {
        Some(total) => *total += self_secs,
        None => {
            acc.insert(path.to_string(), self_secs);
        }
    }
}

/// Renders the accumulated profile as folded-stacks text: one
/// `path self_us` line per distinct stack, sorted by path (the BTreeMap
/// order), self time in whole microseconds.
pub fn folded_stacks() -> String {
    let acc = accumulator().lock().expect("profile accumulator poisoned");
    let mut out = String::new();
    for (path, secs) in acc.iter() {
        out.push_str(path);
        out.push(' ');
        out.push_str(&format!("{}", (secs * 1e6).round() as u64));
        out.push('\n');
    }
    out
}

/// Empties the accumulator (bench/test isolation between runs).
pub fn clear_profile() {
    accumulator().lock().expect("profile accumulator poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_output_is_sorted_and_cumulative() {
        // Drive the accumulator directly — arming the span layer here
        // would race the span-module tests over the global flag.
        clear_profile();
        set_profiling(true);
        record_stack("b.root;b.leaf", 0.002);
        record_stack("a.root", 0.001);
        record_stack("b.root;b.leaf", 0.003);
        let text = folded_stacks();
        set_profiling(false);
        clear_profile();
        assert_eq!(text, "a.root 1000\nb.root;b.leaf 5000\n");
    }
}

//! Structured spans: scoped timers with per-thread parent/child nesting
//! and a bounded ring of recent spans.
//!
//! A [`span`] guard *always* measures — [`SpanGuard::finish_secs`] is
//! how subsystems feed their pre-existing public timing fields
//! (`GiantOutput.timings`, `IngestReport.wal_secs`, ...), so the compat
//! accessors and the observability layer read the same clock by
//! construction. What arming adds, on span **exit** only:
//!
//! * a [`SpanRecord`] in the global ring (most recent [`RING_CAP`]
//!   spans, for post-hoc inspection);
//! * one sample in the registry histogram `span.<name>`;
//! * when profiling is also enabled, the span's *self time* (duration
//!   minus time attributed to child spans) accumulated under its full
//!   `parent;child` stack path — the folded-stacks format.
//!
//! Nesting is tracked per thread in a thread-local stack, so guards
//! must be dropped in LIFO order on the thread that created them (the
//! guard is `!Send` to make cross-thread misuse impossible, and scope
//! guards are LIFO by construction).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::metrics::registry;
use crate::profile;

/// Capacity of the recent-span ring.
pub const RING_CAP: usize = 512;

static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if std::env::var("GIANT_OBS").map(|v| v == "1" || v == "true").unwrap_or(false) {
            ARMED.store(true, Ordering::SeqCst);
        }
    });
}

/// Switches span recording (ring, per-span histograms, profiler feed)
/// on or off process-wide. Counters and gauges are always live.
pub fn arm(on: bool) {
    ensure_env_init();
    ARMED.store(on, Ordering::SeqCst);
}

/// Whether the observability layer is armed (via [`arm`] or the
/// `GIANT_OBS=1` environment variable, read once at first use).
pub fn armed() -> bool {
    ensure_env_init();
    ARMED.load(Ordering::Relaxed)
}

/// One completed span, as kept in the recent-span ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The full stack path, `root;child;leaf` — folded-stacks syntax.
    pub path: String,
    /// The leaf span's own name.
    pub name: &'static str,
    /// Nesting depth on its thread (0 = root).
    pub depth: u32,
    /// Wall-clock duration, microseconds.
    pub dur_us: f64,
    /// Duration minus time spent in child spans, microseconds.
    pub self_us: f64,
}

struct Frame {
    name: &'static str,
    child_secs: f64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAP)))
}

/// Opens a span named `name` on the current thread. Drop the guard (or
/// call [`SpanGuard::finish_secs`]) to close it.
pub fn span(name: &'static str) -> SpanGuard {
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name,
            child_secs: 0.0,
        })
    });
    SpanGuard {
        start: Instant::now(),
        open: true,
        _not_send: PhantomData,
    }
}

/// An open span; closing it records the measurement.
#[must_use = "dropping immediately times nothing"]
pub struct SpanGuard {
    start: Instant,
    open: bool,
    // Nesting lives in a thread-local stack: moving the guard to another
    // thread would pop someone else's frame.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Closes the span and returns its duration in seconds — the value
    /// to feed any pre-existing public timing field, so compat and obs
    /// share one clock.
    pub fn finish_secs(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        self.open = false;
        let dur_secs = self.start.elapsed().as_secs_f64();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop().expect("span stack underflow: guards must close LIFO");
            if let Some(parent) = stack.last_mut() {
                parent.child_secs += dur_secs;
            }
            if armed() {
                let self_secs = (dur_secs - frame.child_secs).max(0.0);
                let depth = stack.len() as u32;
                let mut path = String::with_capacity(16 * (depth as usize + 1));
                for f in stack.iter() {
                    path.push_str(f.name);
                    path.push(';');
                }
                path.push_str(frame.name);
                let record = SpanRecord {
                    path,
                    name: frame.name,
                    depth,
                    dur_us: dur_secs * 1e6,
                    self_us: self_secs * 1e6,
                };
                if profile::profiling() {
                    profile::record_stack(&record.path, self_secs);
                }
                registry()
                    .histogram(&format!("span.{}", frame.name))
                    .record(record.dur_us);
                let mut ring = ring().lock().expect("span ring poisoned");
                if ring.len() == RING_CAP {
                    ring.pop_front();
                }
                ring.push_back(record);
            }
        });
        dur_secs
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.open {
            self.close();
        }
    }
}

/// The recent-span ring's contents, oldest first. Empty when disarmed.
pub fn recent_spans() -> Vec<SpanRecord> {
    ring().lock().expect("span ring poisoned").iter().cloned().collect()
}

/// Empties the recent-span ring (tests and bench isolation).
pub fn clear_recent_spans() {
    ring().lock().expect("span ring poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the armed-state tests: arming is process-global, and
    /// the harness runs tests concurrently.
    fn armed_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("armed lock")
    }

    #[test]
    fn disarmed_spans_time_but_record_nothing() {
        let _g = armed_lock();
        arm(false);
        clear_recent_spans();
        let g = span("test.quiet");
        let secs = g.finish_secs();
        assert!(secs >= 0.0);
        assert!(recent_spans().is_empty());
    }

    #[test]
    fn armed_spans_nest_and_attribute_self_time() {
        let _g = armed_lock();
        arm(true);
        clear_recent_spans();
        {
            let _root = span("test.root");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _child = span("test.child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let spans = recent_spans();
        arm(false);
        // Children close first: ring order is child, then root.
        let child = spans.iter().find(|s| s.name == "test.child").expect("child span");
        let root = spans.iter().find(|s| s.name == "test.root").expect("root span");
        assert_eq!(child.path, "test.root;test.child");
        assert_eq!(child.depth, 1);
        assert_eq!(root.path, "test.root");
        assert_eq!(root.depth, 0);
        assert!(root.dur_us >= child.dur_us);
        // Root self time excludes the child's 2ms sleep.
        assert!(root.self_us <= root.dur_us - child.dur_us + 1.0);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = armed_lock();
        arm(true);
        clear_recent_spans();
        for _ in 0..RING_CAP + 10 {
            span("test.flood").finish_secs();
        }
        let n = recent_spans().iter().filter(|s| s.name == "test.flood").count();
        arm(false);
        assert!(n <= RING_CAP);
        assert!(n >= RING_CAP - 32, "ring kept only {n} of {RING_CAP}");
    }
}

//! The long-lived incremental folder.

use crate::batch::DeltaBatch;
use giant_core::cache::{CacheStats, PipelineCaches};
use giant_core::pipeline::{CategoryRecord, GiantOutput, PipelineInput, StageTimings};
use giant_core::train::GiantModels;
use giant_core::GiantConfig;
use giant_graph::plan::DirtySet;
use giant_graph::{ClickGraph, DocId};
use giant_ontology::{Ontology, OntologyDelta};
use giant_text::Annotator;
use std::fmt;
use std::time::Instant;

/// Batch validation errors. A failed fold leaves the state **untouched**:
/// validation runs to completion before any mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum FoldError {
    /// A batch document's id does not densely extend the doc space.
    NonContiguousDoc {
        /// The id the batch should have used.
        expected: usize,
        /// The id it carried.
        got: usize,
    },
    /// A click references a document that does not exist even after the
    /// batch's own documents are appended.
    ClickToMissingDoc {
        /// Offending click's query text.
        query: String,
        /// Offending doc id.
        doc: usize,
        /// Doc-space size after the batch.
        n_docs: usize,
    },
    /// A click carries negative mass.
    NegativeClicks {
        /// Offending click's query text.
        query: String,
    },
    /// Applying the diffed delta to the live ontology failed — an internal
    /// invariant violation (a delta produced by `diff` must apply to its
    /// own base). The fold rolled every input mutation back: the
    /// accumulated corpus, click graph, live ontology and fold counter are
    /// bit-identical to before the call (warm caches are dropped — a cold
    /// cache changes wall-clock, never bytes).
    DeltaApply(giant_ontology::DeltaError),
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::NonContiguousDoc { expected, got } => {
                write!(f, "batch doc id {got} does not extend the doc space (expected {expected})")
            }
            FoldError::ClickToMissingDoc { query, doc, n_docs } => write!(
                f,
                "click {query:?} → doc {doc} references a document beyond the {n_docs}-doc space"
            ),
            FoldError::NegativeClicks { query } => {
                write!(f, "click {query:?} carries negative mass")
            }
            FoldError::DeltaApply(e) => {
                write!(f, "delta application failed, fold rolled back: {e}")
            }
        }
    }
}

impl std::error::Error for FoldError {}

/// What one fold did, for ingest reports and benches.
#[derive(Debug)]
pub struct FoldReport {
    /// The rebuilt pipeline product over the accumulated input (node ids
    /// identical to the live ontology's — resource refreshers index it
    /// directly).
    pub output: GiantOutput,
    /// The change-set that took the previous live version to this one.
    pub delta: OntologyDelta,
    /// Queries dirtied by the batch.
    pub dirty_queries: usize,
    /// Docs dirtied by the batch.
    pub dirty_docs: usize,
    /// Cached walks evicted by footprint intersection.
    pub evicted_walks: usize,
    /// Cache effectiveness of the rebuild.
    pub cache: CacheStats,
    /// Per-stage wall clock of the rebuild.
    pub timings: StageTimings,
    /// End-to-end fold wall clock (validate + ingest + rebuild + diff +
    /// apply).
    pub secs: f64,
}

/// The long-lived incremental pipeline state: accumulated input, warm
/// caches, and the live (delta-applied) ontology.
///
/// The live ontology is **never** replaced by the rebuilt one — each fold
/// applies the diff to the previous live version, exactly the path a
/// remote replica consuming shipped deltas would take, so any delta
/// infidelity surfaces immediately as a divergence from the rebuilt
/// reference (asserted in debug builds, proptested in release).
pub struct IncrementalState {
    input: PipelineInput,
    models: GiantModels,
    cfg: GiantConfig,
    caches: PipelineCaches,
    ontology: Ontology,
    folds: u64,
    /// Test-only fault injection: when set, the next fold applies this
    /// delta (known-bad) instead of the diffed one, exercising the
    /// apply-failure rollback path.
    #[cfg(test)]
    pub(crate) sabotage_delta: Option<OntologyDelta>,
}

impl fmt::Debug for IncrementalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncrementalState")
            .field("folds", &self.folds)
            .field("n_docs", &self.input.docs.len())
            .field("n_queries", &self.input.click_graph.n_queries())
            .field("n_nodes", &self.ontology.n_nodes())
            .finish_non_exhaustive()
    }
}

impl IncrementalState {
    /// A fresh state over a fixed category tree and annotator, with no
    /// corpus yet. The first fold is the bootstrap build (everything is
    /// mined, caches fill); every later fold is incremental.
    pub fn new(
        categories: Vec<CategoryRecord>,
        annotator: Annotator,
        models: GiantModels,
        cfg: GiantConfig,
    ) -> Self {
        Self {
            input: PipelineInput {
                click_graph: ClickGraph::new(),
                docs: Vec::new(),
                categories,
                sessions: Vec::new(),
                entities: Vec::new(),
                annotator,
            },
            models,
            cfg,
            caches: PipelineCaches::new(),
            ontology: Ontology::new(),
            folds: 0,
            #[cfg(test)]
            sabotage_delta: None,
        }
    }

    /// Checks `batch` against the accumulated input without mutating
    /// anything. [`IncrementalState::fold`] runs exactly this validation
    /// before ingesting; hosts that persist batches ahead of folding (the
    /// write-ahead log) call it first so a log never records a batch the
    /// fold would reject.
    pub fn validate(&self, batch: &DeltaBatch) -> Result<(), FoldError> {
        let n_docs_after = self.input.docs.len() + batch.docs.len();
        for (k, d) in batch.docs.iter().enumerate() {
            let expected = self.input.docs.len() + k;
            if d.id != expected {
                return Err(FoldError::NonContiguousDoc {
                    expected,
                    got: d.id,
                });
            }
        }
        for c in &batch.clicks {
            if c.doc >= n_docs_after {
                return Err(FoldError::ClickToMissingDoc {
                    query: c.query.clone(),
                    doc: c.doc,
                    n_docs: n_docs_after,
                });
            }
            if c.count < 0.0 {
                return Err(FoldError::NegativeClicks {
                    query: c.query.clone(),
                });
            }
        }
        Ok(())
    }

    /// Folds one batch: validate → ingest → invalidate → cached rebuild →
    /// diff → apply. The fold is **atomic — apply or reject**: on any
    /// error (validation up front, or the never-expected delta-application
    /// failure after the rebuild) the observable state is bit-identical to
    /// before the call.
    pub fn fold(&mut self, batch: DeltaBatch) -> Result<FoldReport, FoldError> {
        let t0 = Instant::now();
        // Validate everything before mutating anything.
        self.validate(&batch)?;

        // Rollback bookkeeping for the one fallible step left after
        // mutation begins (delta application): list lengths plus a
        // bit-exact savepoint of the click-graph rows the batch touches.
        let n_docs_before = self.input.docs.len();
        let n_sessions_before = self.input.sessions.len();
        let n_entities_before = self.input.entities.len();
        let savepoint = self.input.click_graph.savepoint(
            batch.clicks.iter().map(|c| c.query.as_str()),
            batch.clicks.iter().map(|c| c.doc),
        );

        // Ingest, recording the dirty set: every endpoint of a click edit
        // has changed adjacency/totals. New docs and new queries carry no
        // cached footprint; what protects old caches from them is that
        // attaching a new node dirties its old-side neighbour.
        self.input.docs.extend(batch.docs);
        let mut dirty = DirtySet::new();
        for c in &batch.clicks {
            let q = self
                .input
                .click_graph
                .add_clicks(&c.query, DocId(c.doc as u32), c.count);
            dirty.mark_query(q.index());
            dirty.mark_doc(c.doc);
        }
        self.input.sessions.extend(batch.sessions);
        self.input.entities.extend(batch.entities);

        // Drop exactly the cached walks the batch could have changed.
        let evicted_walks = self.caches.invalidate(&dirty);

        // Rebuild over the accumulated input; clean clusters come from
        // the caches, dirty ones are re-mined.
        let output =
            giant_core::run_pipeline_cached(&self.input, &self.models, &self.cfg, &mut self.caches);

        // Ship the difference: the live version advances by delta
        // application, never by wholesale replacement.
        let mut timings = output.timings.clone();
        let t = Instant::now();
        let delta = OntologyDelta::diff(&self.ontology, &output.ontology);
        timings.record("delta.diff", t.elapsed().as_secs_f64());
        let t = Instant::now();
        #[cfg(test)]
        let delta = match self.sabotage_delta.take() {
            Some(d) => d,
            None => delta,
        };
        // A delta produced by `diff` always applies to its own base; a
        // failure here is an internal invariant violation, not a bad
        // batch. It must not panic the production fold loop, and it must
        // not leave the state half-ingested: roll every input mutation
        // back (bit-exactly) and surface a typed error. The warm caches
        // are reset rather than rewound — entries computed over the
        // rolled-back input (notably the append-only per-doc text cache,
        // which would alias future doc ids) must not survive, and by the
        // cache-soundness contract a cold cache can change wall-clock but
        // never bytes.
        let next = match delta.apply(&self.ontology) {
            Ok(next) => next,
            Err(error) => {
                self.input.docs.truncate(n_docs_before);
                self.input.sessions.truncate(n_sessions_before);
                self.input.entities.truncate(n_entities_before);
                self.input.click_graph.rollback(savepoint);
                self.caches = PipelineCaches::new();
                return Err(FoldError::DeltaApply(error));
            }
        };
        timings.record("delta.apply", t.elapsed().as_secs_f64());
        debug_assert_eq!(
            giant_ontology::io::dump(&next),
            giant_ontology::io::dump(&output.ontology),
            "delta application diverged from the rebuilt reference"
        );
        self.ontology = next;
        self.folds += 1;

        Ok(FoldReport {
            dirty_queries: dirty.n_dirty_queries(),
            dirty_docs: dirty.n_dirty_docs(),
            evicted_walks,
            cache: output.cache_stats,
            timings,
            secs: t0.elapsed().as_secs_f64(),
            delta,
            output,
        })
    }

    /// The live (delta-applied) ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The accumulated pipeline input.
    pub fn input(&self) -> &PipelineInput {
        &self.input
    }

    /// The pipeline configuration folds run under.
    pub fn cfg(&self) -> &GiantConfig {
        &self.cfg
    }

    /// The trained models folds run under.
    pub fn models(&self) -> &GiantModels {
        &self.models
    }

    /// Completed folds.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Cache occupancy `(cached walks, cached minings)`.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (self.caches.cached_plans(), self.caches.cached_minings())
    }

    /// The warm caches — checkpoint capture reads them whole; hosts can
    /// inspect occupancy (e.g. per-shard slots after a sharded fold).
    pub fn caches(&self) -> &PipelineCaches {
        &self.caches
    }

    /// Reassembles a state from checkpointed parts (see
    /// [`crate::ckpt::Checkpoint`]). The caller owns the invariant that
    /// `caches` and `ontology` were captured from a state over exactly
    /// this `input` — which [`crate::ckpt::Checkpoint`] guarantees by
    /// capturing and restoring them together.
    pub(crate) fn from_parts(
        input: PipelineInput,
        models: GiantModels,
        cfg: GiantConfig,
        caches: PipelineCaches,
        ontology: Ontology,
        folds: u64,
    ) -> Self {
        Self {
            input,
            models,
            cfg,
            caches,
            ontology,
            folds,
            #[cfg(test)]
            sabotage_delta: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ClickEvent;
    use giant_core::gctsp::{GctspConfig, GctspNet};
    use giant_core::pipeline::DocRecord;
    use giant_core::train::GiantModels;
    use giant_ontology::{NodeKind, Phrase};

    fn untrained_models() -> GiantModels {
        GiantModels {
            phrase_model: GctspNet::new(GctspConfig::default()),
            role_model: GctspNet::new(GctspConfig {
                n_classes: 4,
                ..GctspConfig::default()
            }),
        }
    }

    fn category() -> Vec<CategoryRecord> {
        vec![CategoryRecord {
            id: 0,
            tokens: vec!["tech".into()],
            level: 1,
            parent: None,
        }]
    }

    fn batch_one() -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.docs.push(DocRecord {
            id: 0,
            title: "quanta corp launches panel".into(),
            sentences: vec!["the quanta corp panel is here".into()],
            leaf_category: 0,
            day: 1,
        });
        b.clicks.push(ClickEvent {
            query: "quanta panel".into(),
            doc: 0,
            count: 3.0,
        });
        b
    }

    fn batch_two() -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.docs.push(DocRecord {
            id: 1,
            title: "vertex labs ships headset".into(),
            sentences: vec!["the vertex labs headset shipped today".into()],
            leaf_category: 0,
            day: 2,
        });
        b.clicks.push(ClickEvent {
            query: "vertex headset".into(),
            doc: 1,
            count: 2.0,
        });
        b.clicks.push(ClickEvent {
            query: "quanta panel".into(),
            doc: 1,
            count: 1.0,
        });
        b
    }

    /// A delta guaranteed to fail against any small live ontology: its base
    /// has more nodes than the live one, so a `Carry` references an old id
    /// out of range.
    fn poison_delta(live_nodes: usize) -> OntologyDelta {
        let mut big = Ontology::new();
        for i in 0..live_nodes + 8 {
            big.add_node(NodeKind::Concept, Phrase::from_text(&format!("filler {i}")), 1.0);
        }
        OntologyDelta::diff(&big, &big)
    }

    /// Regression for the production panic path: a delta-application
    /// failure mid-fold must reject the batch atomically — typed error,
    /// state bit-identical — instead of `.expect` aborting the process.
    #[test]
    fn failed_delta_apply_rejects_the_fold_atomically() {
        let mut state = IncrementalState::new(
            category(),
            Annotator::default(),
            untrained_models(),
            GiantConfig::default(),
        );
        state.fold(batch_one()).expect("bootstrap folds");
        let dump_before = giant_ontology::io::dump(state.ontology());
        let folds_before = state.folds();
        let n_docs_before = state.input().docs.len();
        let total_bits_before = state.input().click_graph.total_clicks().to_bits();
        let n_queries_before = state.input().click_graph.n_queries();

        state.sabotage_delta = Some(poison_delta(state.ontology().n_nodes()));
        let err = state.fold(batch_two()).expect_err("sabotaged apply must fail");
        assert!(matches!(err, FoldError::DeltaApply(_)), "typed error, got {err}");

        // The fold was rejected whole: no half-ingested corpus, no
        // half-advanced ontology.
        assert_eq!(state.folds(), folds_before);
        assert_eq!(giant_ontology::io::dump(state.ontology()), dump_before);
        assert_eq!(state.input().docs.len(), n_docs_before);
        assert_eq!(state.input().click_graph.n_queries(), n_queries_before);
        assert_eq!(
            state.input().click_graph.total_clicks().to_bits(),
            total_bits_before,
            "running click total must roll back bit-exactly"
        );

        // And the state is fully usable afterwards: re-folding the same
        // batch (no sabotage) converges with a never-poisoned reference.
        state.fold(batch_two()).expect("clean refold succeeds");
        let mut reference = IncrementalState::new(
            category(),
            Annotator::default(),
            untrained_models(),
            GiantConfig::default(),
        );
        reference.fold(batch_one()).unwrap();
        reference.fold(batch_two()).unwrap();
        assert_eq!(
            giant_ontology::io::dump(state.ontology()),
            giant_ontology::io::dump(reference.ontology()),
            "post-rollback folds must converge with the never-failed chain"
        );
    }
}

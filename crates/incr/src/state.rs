//! The long-lived incremental folder.

use crate::batch::DeltaBatch;
use giant_core::cache::{CacheStats, PipelineCaches};
use giant_core::pipeline::{CategoryRecord, GiantOutput, PipelineInput, StageTimings};
use giant_core::train::GiantModels;
use giant_core::GiantConfig;
use giant_graph::plan::DirtySet;
use giant_graph::{ClickGraph, DocId};
use giant_ontology::{Ontology, OntologyDelta};
use giant_text::Annotator;
use std::fmt;
use std::time::Instant;

/// Batch validation errors. A failed fold leaves the state **untouched**:
/// validation runs to completion before any mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum FoldError {
    /// A batch document's id does not densely extend the doc space.
    NonContiguousDoc {
        /// The id the batch should have used.
        expected: usize,
        /// The id it carried.
        got: usize,
    },
    /// A click references a document that does not exist even after the
    /// batch's own documents are appended.
    ClickToMissingDoc {
        /// Offending click's query text.
        query: String,
        /// Offending doc id.
        doc: usize,
        /// Doc-space size after the batch.
        n_docs: usize,
    },
    /// A click carries negative mass.
    NegativeClicks {
        /// Offending click's query text.
        query: String,
    },
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::NonContiguousDoc { expected, got } => {
                write!(f, "batch doc id {got} does not extend the doc space (expected {expected})")
            }
            FoldError::ClickToMissingDoc { query, doc, n_docs } => write!(
                f,
                "click {query:?} → doc {doc} references a document beyond the {n_docs}-doc space"
            ),
            FoldError::NegativeClicks { query } => {
                write!(f, "click {query:?} carries negative mass")
            }
        }
    }
}

impl std::error::Error for FoldError {}

/// What one fold did, for ingest reports and benches.
#[derive(Debug)]
pub struct FoldReport {
    /// The rebuilt pipeline product over the accumulated input (node ids
    /// identical to the live ontology's — resource refreshers index it
    /// directly).
    pub output: GiantOutput,
    /// The change-set that took the previous live version to this one.
    pub delta: OntologyDelta,
    /// Queries dirtied by the batch.
    pub dirty_queries: usize,
    /// Docs dirtied by the batch.
    pub dirty_docs: usize,
    /// Cached walks evicted by footprint intersection.
    pub evicted_walks: usize,
    /// Cache effectiveness of the rebuild.
    pub cache: CacheStats,
    /// Per-stage wall clock of the rebuild.
    pub timings: StageTimings,
    /// End-to-end fold wall clock (validate + ingest + rebuild + diff +
    /// apply).
    pub secs: f64,
}

/// The long-lived incremental pipeline state: accumulated input, warm
/// caches, and the live (delta-applied) ontology.
///
/// The live ontology is **never** replaced by the rebuilt one — each fold
/// applies the diff to the previous live version, exactly the path a
/// remote replica consuming shipped deltas would take, so any delta
/// infidelity surfaces immediately as a divergence from the rebuilt
/// reference (asserted in debug builds, proptested in release).
pub struct IncrementalState {
    input: PipelineInput,
    models: GiantModels,
    cfg: GiantConfig,
    caches: PipelineCaches,
    ontology: Ontology,
    folds: u64,
}

impl fmt::Debug for IncrementalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncrementalState")
            .field("folds", &self.folds)
            .field("n_docs", &self.input.docs.len())
            .field("n_queries", &self.input.click_graph.n_queries())
            .field("n_nodes", &self.ontology.n_nodes())
            .finish_non_exhaustive()
    }
}

impl IncrementalState {
    /// A fresh state over a fixed category tree and annotator, with no
    /// corpus yet. The first fold is the bootstrap build (everything is
    /// mined, caches fill); every later fold is incremental.
    pub fn new(
        categories: Vec<CategoryRecord>,
        annotator: Annotator,
        models: GiantModels,
        cfg: GiantConfig,
    ) -> Self {
        Self {
            input: PipelineInput {
                click_graph: ClickGraph::new(),
                docs: Vec::new(),
                categories,
                sessions: Vec::new(),
                entities: Vec::new(),
                annotator,
            },
            models,
            cfg,
            caches: PipelineCaches::new(),
            ontology: Ontology::new(),
            folds: 0,
        }
    }

    /// Folds one batch: validate → ingest → invalidate → cached rebuild →
    /// diff → apply. On error the state is untouched.
    pub fn fold(&mut self, batch: DeltaBatch) -> Result<FoldReport, FoldError> {
        let t0 = Instant::now();
        // Validate everything before mutating anything.
        let n_docs_after = self.input.docs.len() + batch.docs.len();
        for (k, d) in batch.docs.iter().enumerate() {
            let expected = self.input.docs.len() + k;
            if d.id != expected {
                return Err(FoldError::NonContiguousDoc {
                    expected,
                    got: d.id,
                });
            }
        }
        for c in &batch.clicks {
            if c.doc >= n_docs_after {
                return Err(FoldError::ClickToMissingDoc {
                    query: c.query.clone(),
                    doc: c.doc,
                    n_docs: n_docs_after,
                });
            }
            if c.count < 0.0 {
                return Err(FoldError::NegativeClicks {
                    query: c.query.clone(),
                });
            }
        }

        // Ingest, recording the dirty set: every endpoint of a click edit
        // has changed adjacency/totals. New docs and new queries carry no
        // cached footprint; what protects old caches from them is that
        // attaching a new node dirties its old-side neighbour.
        self.input.docs.extend(batch.docs);
        let mut dirty = DirtySet::new();
        for c in &batch.clicks {
            let q = self
                .input
                .click_graph
                .add_clicks(&c.query, DocId(c.doc as u32), c.count);
            dirty.mark_query(q.index());
            dirty.mark_doc(c.doc);
        }
        self.input.sessions.extend(batch.sessions);
        self.input.entities.extend(batch.entities);

        // Drop exactly the cached walks the batch could have changed.
        let evicted_walks = self.caches.invalidate(&dirty);

        // Rebuild over the accumulated input; clean clusters come from
        // the caches, dirty ones are re-mined.
        let output =
            giant_core::run_pipeline_cached(&self.input, &self.models, &self.cfg, &mut self.caches);

        // Ship the difference: the live version advances by delta
        // application, never by wholesale replacement.
        let mut timings = output.timings.clone();
        let t = Instant::now();
        let delta = OntologyDelta::diff(&self.ontology, &output.ontology);
        timings.record("delta.diff", t.elapsed().as_secs_f64());
        let t = Instant::now();
        let next = delta
            .apply(&self.ontology)
            .expect("a delta produced by diff always applies to its own base");
        timings.record("delta.apply", t.elapsed().as_secs_f64());
        debug_assert_eq!(
            giant_ontology::io::dump(&next),
            giant_ontology::io::dump(&output.ontology),
            "delta application diverged from the rebuilt reference"
        );
        self.ontology = next;
        self.folds += 1;

        Ok(FoldReport {
            dirty_queries: dirty.n_dirty_queries(),
            dirty_docs: dirty.n_dirty_docs(),
            evicted_walks,
            cache: output.cache_stats,
            timings,
            secs: t0.elapsed().as_secs_f64(),
            delta,
            output,
        })
    }

    /// The live (delta-applied) ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The accumulated pipeline input.
    pub fn input(&self) -> &PipelineInput {
        &self.input
    }

    /// The pipeline configuration folds run under.
    pub fn cfg(&self) -> &GiantConfig {
        &self.cfg
    }

    /// The trained models folds run under.
    pub fn models(&self) -> &GiantModels {
        &self.models
    }

    /// Completed folds.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Cache occupancy `(cached walks, cached minings)`.
    pub fn cache_sizes(&self) -> (usize, usize) {
        (self.caches.cached_plans(), self.caches.cached_minings())
    }

    /// The warm caches, for checkpoint capture.
    pub(crate) fn caches(&self) -> &PipelineCaches {
        &self.caches
    }

    /// Reassembles a state from checkpointed parts (see
    /// [`crate::ckpt::Checkpoint`]). The caller owns the invariant that
    /// `caches` and `ontology` were captured from a state over exactly
    /// this `input` — which [`crate::ckpt::Checkpoint`] guarantees by
    /// capturing and restoring them together.
    pub(crate) fn from_parts(
        input: PipelineInput,
        models: GiantModels,
        cfg: GiantConfig,
        caches: PipelineCaches,
        ontology: Ontology,
        folds: u64,
    ) -> Self {
        Self {
            input,
            models,
            cfg,
            caches,
            ontology,
            folds,
        }
    }
}

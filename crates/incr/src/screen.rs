//! Schema screening for [`DeltaBatch`] ingestion.
//!
//! [`screen_batch`] splits an incoming batch into an **accepted** batch
//! (safe to append to the WAL and hand to the fold unchanged) and a list
//! of typed per-item [`BatchRejection`]s. Unlike
//! [`crate::IncrementalState::validate`], which rejects a whole batch,
//! screening salvages the valid items: a bad document drops its cascading
//! clicks and the remaining new docs are renumbered densely, so the
//! accepted batch always satisfies the fold's contiguity contract.
//!
//! Screening is a pure function of `(schema, base_docs, batch)` — no
//! graph state is read — so folding the accepted batch is byte-identical
//! to folding the same batch on an unscreened driver (the rejection
//! report is the only difference). It runs **before** the WAL append:
//! the log only ever holds accepted batches, and replay needs no schema.

use crate::batch::{ClickEvent, DeltaBatch};
use giant_ontology::{AttentionNode, NodeId, NodeKind, Phrase};
use giant_schema::{Schema, Validator, Violation};
use std::collections::HashMap;
use std::fmt;

/// Which batch item a rejection refers to (index into the *incoming*
/// batch's respective array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchItem {
    /// `batch.docs[i]`
    Doc(usize),
    /// `batch.clicks[i]`
    Click(usize),
    /// `batch.sessions[i]`
    Session(usize),
    /// `batch.entities[i]`
    Entity(usize),
}

impl fmt::Display for BatchItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchItem::Doc(i) => write!(f, "docs[{i}]"),
            BatchItem::Click(i) => write!(f, "clicks[{i}]"),
            BatchItem::Session(i) => write!(f, "sessions[{i}]"),
            BatchItem::Entity(i) => write!(f, "entities[{i}]"),
        }
    }
}

/// Why an item was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// A document has an empty title — it could never mine a phrase.
    EmptyTitle,
    /// A document id does not densely extend the doc space.
    NonContiguousId {
        /// The id the document should have carried.
        expected: usize,
        /// The id it carried.
        got: usize,
    },
    /// A click carries a non-finite count.
    NonFiniteCount,
    /// A click carries negative mass.
    NegativeCount,
    /// A click (or session entry) has an empty query.
    EmptyQuery,
    /// A click references a document beyond the accumulated + accepted
    /// doc space.
    MissingDoc {
        /// The referenced doc id.
        doc: usize,
    },
    /// A click references a batch document that was itself rejected.
    ClickToRejectedDoc {
        /// The rejected doc's incoming id.
        doc: usize,
    },
    /// A session stream carries no queries.
    EmptySession,
    /// A dictionary entity fails the schema's entity object type.
    Schema(Violation),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::EmptyTitle => write!(f, "empty title"),
            RejectReason::NonContiguousId { expected, got } => {
                write!(f, "doc id {got} does not extend the doc space (expected {expected})")
            }
            RejectReason::NonFiniteCount => write!(f, "non-finite click count"),
            RejectReason::NegativeCount => write!(f, "negative click count"),
            RejectReason::EmptyQuery => write!(f, "empty query"),
            RejectReason::MissingDoc { doc } => {
                write!(f, "references missing document {doc}")
            }
            RejectReason::ClickToRejectedDoc { doc } => {
                write!(f, "references rejected batch document {doc}")
            }
            RejectReason::EmptySession => write!(f, "empty session"),
            RejectReason::Schema(v) => write!(f, "schema violation: {v}"),
        }
    }
}

/// One rejected batch item with its typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRejection {
    /// Which item.
    pub item: BatchItem,
    /// Why.
    pub reason: RejectReason,
}

impl fmt::Display for BatchRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.item, self.reason)
    }
}

/// The outcome of screening one batch.
#[derive(Debug, Clone, Default)]
pub struct ScreenReport {
    /// The accepted items, ready to fold (doc ids renumbered densely,
    /// clicks remapped to follow).
    pub accepted: DeltaBatch,
    /// Every rejected item, in docs → clicks → sessions → entities order.
    pub rejections: Vec<BatchRejection>,
}

/// Screens `batch` against `schema`, with `base_docs` documents already
/// accumulated in the state the batch will fold into.
pub fn screen_batch(schema: &Schema, base_docs: usize, batch: &DeltaBatch) -> ScreenReport {
    let validator = Validator::new(schema);
    let mut report = ScreenReport::default();

    // Documents: reject unusable ones, renumber the keepers densely so
    // the accepted batch still extends the doc space contiguously.
    // `remap` translates incoming ids (as the batch's clicks refer to
    // them) to accepted ids.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for (i, d) in batch.docs.iter().enumerate() {
        let incoming_expected = base_docs + i;
        let reason = if d.id != incoming_expected {
            Some(RejectReason::NonContiguousId {
                expected: incoming_expected,
                got: d.id,
            })
        } else if d.title.is_empty() {
            Some(RejectReason::EmptyTitle)
        } else {
            None
        };
        match reason {
            Some(reason) => report.rejections.push(BatchRejection {
                item: BatchItem::Doc(i),
                reason,
            }),
            None => {
                let new_id = base_docs + report.accepted.docs.len();
                remap.insert(d.id, new_id);
                let mut doc = d.clone();
                doc.id = new_id;
                report.accepted.docs.push(doc);
            }
        }
    }
    let accepted_docs = base_docs + report.accepted.docs.len();

    // Clicks: value checks, then doc references — clicks onto rejected or
    // missing batch docs cascade-reject.
    for (i, c) in batch.clicks.iter().enumerate() {
        let reject = |reason| BatchRejection {
            item: BatchItem::Click(i),
            reason,
        };
        if !c.count.is_finite() {
            report.rejections.push(reject(RejectReason::NonFiniteCount));
            continue;
        }
        if c.count < 0.0 {
            report.rejections.push(reject(RejectReason::NegativeCount));
            continue;
        }
        if c.query.is_empty() {
            report.rejections.push(reject(RejectReason::EmptyQuery));
            continue;
        }
        let doc = if c.doc < base_docs {
            c.doc
        } else if let Some(&mapped) = remap.get(&c.doc) {
            mapped
        } else if c.doc < base_docs + batch.docs.len() {
            report
                .rejections
                .push(reject(RejectReason::ClickToRejectedDoc { doc: c.doc }));
            continue;
        } else {
            report
                .rejections
                .push(reject(RejectReason::MissingDoc { doc: c.doc }));
            continue;
        };
        debug_assert!(doc < accepted_docs);
        report.accepted.clicks.push(ClickEvent {
            query: c.query.clone(),
            doc,
            count: c.count,
        });
    }

    // Sessions: must be non-empty streams of non-empty queries.
    for (i, s) in batch.sessions.iter().enumerate() {
        let reason = if s.is_empty() {
            Some(RejectReason::EmptySession)
        } else if s.iter().any(String::is_empty) {
            Some(RejectReason::EmptyQuery)
        } else {
            None
        };
        match reason {
            Some(reason) => report.rejections.push(BatchRejection {
                item: BatchItem::Session(i),
                reason,
            }),
            None => report.accepted.sessions.push(s.clone()),
        }
    }

    // Dictionary entities: check the node they would become against the
    // schema's entity object type (probe id 0 — ids are not assigned yet
    // and violations report the batch index instead).
    for (i, (tokens, tag)) in batch.entities.iter().enumerate() {
        let probe = AttentionNode {
            id: NodeId(0),
            kind: NodeKind::Entity,
            phrase: Phrase::new(tokens.iter().cloned()),
            aliases: Vec::new(),
            support: 0.0,
            time: None,
        };
        match validator.check_node(&probe) {
            Ok(()) => report.accepted.entities.push((tokens.clone(), *tag)),
            Err(v) => report.rejections.push(BatchRejection {
                item: BatchItem::Entity(i),
                reason: RejectReason::Schema(v),
            }),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use giant_core::pipeline::DocRecord;
    use giant_text::NerTag;

    fn doc(id: usize, title: &str) -> DocRecord {
        DocRecord {
            id,
            title: title.to_owned(),
            sentences: vec![format!("{title} body")],
            leaf_category: 0,
            day: 1,
        }
    }

    fn click(query: &str, doc: usize, count: f64) -> ClickEvent {
        ClickEvent {
            query: query.to_owned(),
            doc,
            count,
        }
    }

    #[test]
    fn clean_batches_pass_through_unchanged() {
        let schema = Schema::builtin();
        let batch = DeltaBatch {
            docs: vec![doc(10, "solar panels"), doc(11, "wind farms")],
            clicks: vec![click("solar", 10, 2.0), click("wind", 3, 1.0)],
            sessions: vec![vec!["solar".into(), "wind".into()]],
            entities: vec![(vec!["tesla".into()], NerTag::Organization)],
        };
        let r = screen_batch(&schema, 10, &batch);
        assert!(r.rejections.is_empty());
        assert_eq!(r.accepted.docs.len(), 2);
        assert_eq!(r.accepted.docs[0].id, 10);
        assert_eq!(r.accepted.clicks.len(), 2);
        assert_eq!(r.accepted.clicks[0].doc, 10);
        assert_eq!(r.accepted.sessions.len(), 1);
        assert_eq!(r.accepted.entities.len(), 1);
    }

    #[test]
    fn rejected_docs_cascade_and_keepers_renumber() {
        let schema = Schema::builtin();
        let batch = DeltaBatch {
            docs: vec![doc(5, ""), doc(6, "kept")],
            clicks: vec![
                click("to rejected", 5, 1.0),
                click("to kept", 6, 1.0),
                click("to base", 2, 1.0),
                click("to nowhere", 9, 1.0),
            ],
            ..DeltaBatch::default()
        };
        let r = screen_batch(&schema, 5, &batch);
        // The kept doc slides into the rejected one's slot.
        assert_eq!(r.accepted.docs.len(), 1);
        assert_eq!(r.accepted.docs[0].id, 5);
        assert_eq!(r.accepted.docs[0].title, "kept");
        // Its click follows; the base-space click is untouched.
        assert_eq!(r.accepted.clicks.len(), 2);
        assert_eq!(r.accepted.clicks[0].doc, 5);
        assert_eq!(r.accepted.clicks[1].doc, 2);
        // Typed reasons, in order.
        let reasons: Vec<_> = r.rejections.iter().map(|x| (x.item, x.reason.clone())).collect();
        assert_eq!(
            reasons,
            vec![
                (BatchItem::Doc(0), RejectReason::EmptyTitle),
                (
                    BatchItem::Click(0),
                    RejectReason::ClickToRejectedDoc { doc: 5 }
                ),
                (BatchItem::Click(3), RejectReason::MissingDoc { doc: 9 }),
            ]
        );
    }

    #[test]
    fn value_defects_reject_per_item() {
        let schema = Schema::builtin();
        let batch = DeltaBatch {
            clicks: vec![
                click("nan", 0, f64::NAN),
                click("neg", 0, -1.0),
                click("", 0, 1.0),
                click("fine", 0, 1.0),
            ],
            sessions: vec![vec![], vec!["ok".into(), "".into()], vec!["ok".into()]],
            entities: vec![
                (vec![], NerTag::Organization),
                (vec!["fine".into()], NerTag::Person),
            ],
            ..DeltaBatch::default()
        };
        let r = screen_batch(&schema, 1, &batch);
        assert_eq!(r.accepted.clicks.len(), 1);
        assert_eq!(r.accepted.sessions.len(), 1);
        assert_eq!(r.accepted.entities.len(), 1);
        // Click(0..2), Session(0) empty, Session(1) empty query, Entity(0).
        assert_eq!(r.rejections.len(), 6);
        assert!(matches!(
            r.rejections[0],
            BatchRejection {
                item: BatchItem::Click(0),
                reason: RejectReason::NonFiniteCount
            }
        ));
        assert!(matches!(
            &r.rejections[5],
            BatchRejection {
                item: BatchItem::Entity(0),
                reason: RejectReason::Schema(_)
            }
        ));
    }

    #[test]
    fn non_contiguous_ids_reject_the_offender_only() {
        let schema = Schema::builtin();
        let batch = DeltaBatch {
            docs: vec![doc(3, "a"), doc(7, "b"), doc(5, "c")],
            ..DeltaBatch::default()
        };
        let r = screen_batch(&schema, 3, &batch);
        // docs[0] fine (id 3); docs[1] claims 7, expected 4 → rejected;
        // docs[2] claims 5, expected 5 → kept as accepted id 4.
        assert_eq!(r.accepted.docs.len(), 2);
        assert_eq!(r.accepted.docs[1].id, 4);
        assert_eq!(r.accepted.docs[1].title, "c");
        assert_eq!(
            r.rejections,
            vec![BatchRejection {
                item: BatchItem::Doc(1),
                reason: RejectReason::NonContiguousId {
                    expected: 4,
                    got: 7
                }
            }]
        );
    }

    #[test]
    fn screening_is_deterministic() {
        let schema = Schema::builtin();
        let batch = DeltaBatch {
            docs: vec![doc(0, ""), doc(1, "x")],
            clicks: vec![click("q", 0, 1.0), click("q", 1, 1.0)],
            ..DeltaBatch::default()
        };
        let a = screen_batch(&schema, 0, &batch);
        let b = screen_batch(&schema, 0, &batch);
        assert_eq!(a.rejections, b.rejections);
        assert_eq!(a.accepted.docs.len(), b.accepted.docs.len());
        assert_eq!(
            a.accepted.clicks.iter().map(|c| c.doc).collect::<Vec<_>>(),
            b.accepted.clicks.iter().map(|c| c.doc).collect::<Vec<_>>()
        );
    }
}

//! The ingestion unit: everything one round of log collection delivers.

use giant_core::pipeline::DocRecord;
use giant_text::NerTag;

/// One aggregated click observation: `count` clicks from `query` onto doc
/// `doc`, in arrival order within a batch. Matches the click-log record
/// shape of `giant-data`.
#[derive(Debug, Clone)]
pub struct ClickEvent {
    /// Query text (interned into the click graph on first sight).
    pub query: String,
    /// Clicked document id. Must exist once the batch's own docs are
    /// appended — a click can never arrive before its document.
    pub doc: usize,
    /// Click count (≥ 0, accumulates onto any existing edge).
    pub count: f64,
}

/// One batch of fresh log data to fold into the live ontology.
///
/// Ordering matters and is preserved end to end: queries are interned, doc
/// ids assigned and f64 click mass accumulated in exactly the order the
/// events appear, which is what makes a fold sequence reproduce the
/// union-built [`giant_core::pipeline::PipelineInput`] bit for bit.
///
/// Documents are **append-only**: `docs` must extend the accumulated doc
/// space densely (ids `n, n+1, …`), and no later batch may modify an
/// existing document. The category tree is fixed at
/// [`crate::IncrementalState::new`] time (the paper treats it as a
/// pre-defined input, not a mined artifact).
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// New documents, ids continuing the accumulated doc space.
    pub docs: Vec<DocRecord>,
    /// Click events, in arrival order.
    pub clicks: Vec<ClickEvent>,
    /// New consecutive-query session streams.
    pub sessions: Vec<Vec<String>>,
    /// New dictionary entities (appended after all earlier ones;
    /// first-occurrence-wins surface semantics are order-preserving).
    pub entities: Vec<(Vec<String>, NerTag)>,
}

impl DeltaBatch {
    /// An empty batch (folding it is a no-op rebuild).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
            && self.clicks.is_empty()
            && self.sessions.is_empty()
            && self.entities.is_empty()
    }

    /// Total click mass carried by the batch.
    pub fn click_mass(&self) -> f64 {
        self.clicks.iter().map(|c| c.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_mass() {
        let mut b = DeltaBatch::new();
        assert!(b.is_empty());
        b.clicks.push(ClickEvent {
            query: "solar panels".into(),
            doc: 0,
            count: 2.5,
        });
        b.clicks.push(ClickEvent {
            query: "solar panels".into(),
            doc: 1,
            count: 1.5,
        });
        assert!(!b.is_empty());
        assert_eq!(b.click_mass(), 4.0);
    }
}

//! # giant-incr — incremental ontology maintenance
//!
//! GIANT's ontology is not a one-shot artifact: the paper rebuilds it from
//! continuously arriving query logs and click graphs. This crate gives the
//! repo that regime — fold fresh click-log batches into a live ontology
//! **without** rebuilding from scratch:
//!
//! * [`DeltaBatch`] — one ingestion unit: new documents, click events,
//!   session streams and dictionary entities, in arrival order.
//! * [`IncrementalState`] — the long-lived folder. Each
//!   [`IncrementalState::fold`] applies a batch to the accumulated
//!   [`giant_core::pipeline::PipelineInput`], computes the batch's dirty
//!   node set, invalidates
//!   exactly the cached cluster walks whose footprints read a dirty node
//!   (`giant_graph::plan::PlanCache`), re-mines only those clusters on the
//!   shared deterministic executor (`giant_core::cache::PipelineCaches`),
//!   then diffs the rebuilt ontology against the served one and applies
//!   the resulting [`giant_ontology::OntologyDelta`] to produce the next
//!   live version.
//! * [`CorpusStream`] / [`union_input`] — replayable corpus splitting, the
//!   harness for the convergence contract.
//! * [`screen_batch`] — schema screening for third-party feeds: salvages
//!   the valid items of a batch and reports typed per-item rejections,
//!   leaving the fold itself untouched (DESIGN.md §12).
//!
//! ## The convergence contract
//!
//! For **any** split of a corpus into an initial batch plus arbitrary
//! delta batches, the incrementally maintained ontology is byte-identical
//! (via `giant_ontology::io::dump`) to a full `run_pipeline` over the
//! union of the batches, at every thread count. Two mechanisms carry the
//! proof obligation:
//!
//! 1. **cache soundness** — a cached walk is reused only when no node its
//!    footprint read has changed ([`giant_graph::WalkFootprint`]), and a
//!    cached mining outcome only under an exact fingerprint of its inputs;
//!    under those rules the cached pipeline output *is* the uncached
//!    output (same code, same bytes);
//! 2. **delta fidelity** — `apply(prev, diff(prev, rebuilt)) == rebuilt`
//!    structurally, so serving from the delta-applied chain equals serving
//!    from the rebuild.
//!
//! `tests/incremental_convergence.rs` proptests both over random splits of
//! random worlds and pins the seed-42 experiment world as a golden.

pub mod batch;
pub mod ckpt;
pub mod screen;
pub mod state;
pub mod stream;
pub mod wal;

pub use batch::{ClickEvent, DeltaBatch};
pub use ckpt::Checkpoint;
pub use screen::{screen_batch, BatchItem, BatchRejection, RejectReason, ScreenReport};
pub use state::{FoldError, FoldReport, IncrementalState};
pub use stream::{union_input, CorpusStream};
pub use wal::{wal_metrics, SyncMode, Wal, WalEntry, WalError, WalMetrics, WalTruncation};

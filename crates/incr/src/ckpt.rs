//! Durable binary checkpoints of the long-lived [`IncrementalState`]:
//! capture → save → (process dies) → load → restore → keep folding, with
//! the restored state converging **byte-identically** to the never-
//! restarted one over the same delta stream.
//!
//! ## What is (and is not) checkpointed
//!
//! A [`Checkpoint`] carries everything that *accumulates* across folds:
//!
//! * the accumulated corpus — click graph (edge lists and the historical
//!   running total, bit-exact), documents, category tree, sessions,
//!   entity dictionary;
//! * the live (delta-applied) [`Ontology`] and the fold counter;
//! * the warm [`giant_core::cache::PipelineCaches`] — cached cluster
//!   walks with their footprints, mining memos with fingerprints, the
//!   append-only text/TF-IDF cache, role-inference and entity-lookup
//!   memos — so the restored process resumes delta folding without
//!   re-mining clean clusters;
//! * the [`GiantConfig`] the folds ran under.
//!
//! **Not** checkpointed: the trained [`GiantModels`] and the
//! [`Annotator`]. Both are immutable across folds (the cache soundness
//! contract already depends on that) and owned by the host's model store —
//! they are supplied again at [`Checkpoint::restore`] exactly as they were
//! at [`IncrementalState::new`]. Supplying *different* models than the
//! checkpoint was captured under voids the convergence guarantee the same
//! way swapping models under a live state would.
//!
//! Framing, checksums and bit-exactness come from
//! [`giant_ontology::binio`]; see that module for the container layout.

use crate::state::IncrementalState;
use giant_core::cache::PipelineCaches;
use giant_core::pipeline::{CategoryRecord, DocRecord, PipelineInput};
use giant_core::train::GiantModels;
use giant_core::GiantConfig;
use giant_graph::{ClickGraph, ClusterConfig, DocId, QueryId, WalkConfig};
use giant_ontology::binio::{self, BinError, FileError, Reader, SectionFile, Writer};
use giant_ontology::Ontology;
use giant_text::{Annotator, NerTag};
use std::path::Path;

pub(crate) fn write_ner(w: &mut Writer, tag: NerTag) {
    w.u8(tag.index() as u8);
}

pub(crate) fn read_ner(r: &mut Reader<'_>) -> Result<NerTag, BinError> {
    let at = r.position();
    let i = r.u8()? as usize;
    NerTag::ALL.get(i).copied().ok_or_else(|| BinError {
        at,
        message: format!("bad NER tag {i}"),
    })
}

/// Checkpoint layer format version, carried in the `incr.format` section.
///
/// * **v1** (implicit — no `incr.format` section): the pre-sharding layout;
///   `incr.meta` ends at `threads` + the fold counter, no shard sections.
/// * **v2**: adds `incr.format` `[version: u32, shard_slots: u32]`, appends
///   [`GiantConfig::shards`] to `incr.meta`, and serialises each warm
///   per-shard cache slot as its own `shard.<k>.slot` section.
///
/// The container-global version in [`giant_ontology::binio`] is untouched:
/// this is a *checkpoint-layer* version, so pre-sharding checkpoints keep
/// loading (they restore with `shards = 1` and no slots).
const CHECKPOINT_VERSION: u32 = 2;

fn write_config(w: &mut Writer, cfg: &GiantConfig) {
    w.f64(cfg.cluster.delta_v);
    w.f64(cfg.cluster.walk.restart);
    w.usize(cfg.cluster.walk.max_iter);
    w.f64(cfg.cluster.walk.tol);
    w.f64(cfg.cluster.walk.min_mass);
    w.usize(cfg.cluster.max_queries);
    w.usize(cfg.cluster.max_docs);
    w.f64(cfg.cluster.min_overlap);
    w.f64(cfg.delta_m);
    w.f64(cfg.delta_g);
    w.usize(cfg.subtitle_min_tokens);
    w.usize(cfg.subtitle_max_tokens);
    w.usize(cfg.csd_min_children);
    w.usize(cfg.cpd_min_events);
    w.f64(cfg.topic_min_support);
    w.f64(cfg.correlate_threshold_percentile);
    w.u64(cfg.seed);
    w.usize(cfg.threads);
    w.usize(cfg.shards);
}

/// `has_shards` is false when reading a v1 checkpoint (no `incr.format`
/// section): the field did not exist, and every v1 build was single-shard.
fn read_config(r: &mut Reader<'_>, has_shards: bool) -> Result<GiantConfig, BinError> {
    Ok(GiantConfig {
        cluster: ClusterConfig {
            delta_v: r.f64()?,
            walk: WalkConfig {
                restart: r.f64()?,
                max_iter: r.usize()?,
                tol: r.f64()?,
                min_mass: r.f64()?,
            },
            max_queries: r.usize()?,
            max_docs: r.usize()?,
            min_overlap: r.f64()?,
        },
        delta_m: r.f64()?,
        delta_g: r.f64()?,
        subtitle_min_tokens: r.usize()?,
        subtitle_max_tokens: r.usize()?,
        csd_min_children: r.usize()?,
        cpd_min_events: r.usize()?,
        topic_min_support: r.f64()?,
        correlate_threshold_percentile: r.f64()?,
        seed: r.u64()?,
        threads: r.usize()?,
        shards: if has_shards { r.usize()? } else { 1 },
    })
}

fn write_click_graph(w: &mut Writer, g: &ClickGraph) {
    w.u32(g.n_queries() as u32);
    for q in g.query_ids() {
        w.str(g.query_text(q));
    }
    for q in g.query_ids() {
        let edges = g.docs_of(q);
        w.u32(edges.len() as u32);
        for &(d, c) in edges {
            w.u32(d.0);
            w.f64(c);
        }
    }
    w.u32(g.n_docs() as u32);
    for d in 0..g.n_docs() {
        let edges = g.queries_of(DocId(d as u32));
        w.u32(edges.len() as u32);
        for &(q, c) in edges {
            w.u32(q.0);
            w.f64(c);
        }
    }
    w.f64(g.total_clicks());
}

fn read_click_graph(r: &mut Reader<'_>) -> Result<ClickGraph, BinError> {
    let n_queries = r.len(1, "click graph queries")?;
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        queries.push(r.str()?);
    }
    let mut q_edges = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let m = r.len(12, "query edges")?;
        let mut row = Vec::with_capacity(m);
        for _ in 0..m {
            let d = r.u32()?;
            let c = r.f64()?;
            row.push((DocId(d), c));
        }
        q_edges.push(row);
    }
    let n_docs = r.len(4, "click graph docs")?;
    let mut d_edges = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let m = r.len(12, "doc edges")?;
        let mut row = Vec::with_capacity(m);
        for _ in 0..m {
            let q = r.u32()?;
            if q as usize >= n_queries {
                return Err(BinError {
                    at: r.position(),
                    message: format!("doc edge references query {q} out of range"),
                });
            }
            let c = r.f64()?;
            row.push((QueryId(q), c));
        }
        d_edges.push(row);
    }
    let total_clicks = r.f64()?;
    Ok(ClickGraph::from_parts(queries, q_edges, d_edges, total_clicks))
}

pub(crate) fn write_docs(w: &mut Writer, docs: &[DocRecord]) {
    w.u32(docs.len() as u32);
    for d in docs {
        w.usize(d.id);
        w.str(&d.title);
        w.str_slice(&d.sentences);
        w.usize(d.leaf_category);
        w.u32(d.day);
    }
}

pub(crate) fn read_docs(r: &mut Reader<'_>) -> Result<Vec<DocRecord>, BinError> {
    let n = r.len(25, "docs")?;
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        docs.push(DocRecord {
            id: r.usize()?,
            title: r.str()?,
            sentences: r.str_vec()?,
            leaf_category: r.usize()?,
            day: r.u32()?,
        });
    }
    Ok(docs)
}

fn write_categories(w: &mut Writer, cats: &[CategoryRecord]) {
    w.u32(cats.len() as u32);
    for c in cats {
        w.usize(c.id);
        w.str_slice(&c.tokens);
        w.u8(c.level);
        match c.parent {
            Some(p) => {
                w.bool(true);
                w.usize(p);
            }
            None => w.bool(false),
        }
    }
}

fn read_categories(r: &mut Reader<'_>) -> Result<Vec<CategoryRecord>, BinError> {
    let n = r.len(14, "categories")?;
    let mut cats = Vec::with_capacity(n);
    for _ in 0..n {
        cats.push(CategoryRecord {
            id: r.usize()?,
            tokens: r.str_vec()?,
            level: r.u8()?,
            parent: if r.bool()? { Some(r.usize()?) } else { None },
        });
    }
    Ok(cats)
}

/// The shared section writer behind [`Checkpoint::add_sections`] and
/// [`Checkpoint::write_state_sections`]: one byte-format definition,
/// whether serialising an owned image or a live state by reference.
#[allow(clippy::too_many_arguments)]
fn write_sections(
    file: &mut SectionFile,
    cfg: &GiantConfig,
    folds: u64,
    click_graph: &ClickGraph,
    docs: &[DocRecord],
    categories: &[CategoryRecord],
    sessions: &[Vec<String>],
    entities: &[(Vec<String>, NerTag)],
    caches: &PipelineCaches,
    ontology: &Ontology,
) {
    let mut w = Writer::new();
    w.u32(CHECKPOINT_VERSION);
    w.u32(caches.shard_slots().len() as u32);
    file.add_writer("incr.format", w);

    let mut w = Writer::new();
    write_config(&mut w, cfg);
    w.u64(folds);
    file.add_writer("incr.meta", w);

    let mut w = Writer::new();
    write_click_graph(&mut w, click_graph);
    write_docs(&mut w, docs);
    write_categories(&mut w, categories);
    w.u32(sessions.len() as u32);
    for s in sessions {
        w.str_slice(s);
    }
    w.u32(entities.len() as u32);
    for (tokens, ner) in entities {
        w.str_slice(tokens);
        write_ner(&mut w, *ner);
    }
    file.add_writer("incr.input", w);

    let mut w = Writer::new();
    caches.write_checkpoint(&mut w);
    file.add_writer("incr.caches", w);

    // Warm per-shard cache slots, one section each — kept out of
    // `incr.caches` so v1 readers of that section's layout stay valid.
    for (k, slot) in caches.shard_slots().iter().enumerate() {
        let mut w = Writer::new();
        slot.write_checkpoint(&mut w);
        file.add_writer(&format!("shard.{k}.slot"), w);
    }

    let mut w = Writer::new();
    binio::write_ontology(ontology, &mut w);
    file.add_writer("incr.ontology", w);
}

/// A captured, durable image of one [`IncrementalState`] (minus the
/// trained models and annotator — see the [module docs](self) for the
/// is/isn't-checkpointed contract).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    cfg: GiantConfig,
    folds: u64,
    click_graph: ClickGraph,
    docs: Vec<DocRecord>,
    categories: Vec<CategoryRecord>,
    sessions: Vec<Vec<String>>,
    entities: Vec<(Vec<String>, NerTag)>,
    caches: PipelineCaches,
    ontology: Ontology,
}

impl Checkpoint {
    /// Captures the state's accumulated input, warm caches, live ontology
    /// and configuration. The state is untouched (capture clones).
    pub fn capture(state: &IncrementalState) -> Self {
        let input = state.input();
        Self {
            cfg: *state.cfg(),
            folds: state.folds(),
            click_graph: input.click_graph.clone(),
            docs: input.docs.clone(),
            categories: input.categories.clone(),
            sessions: input.sessions.clone(),
            entities: input.entities.clone(),
            caches: state.caches().clone(),
            ontology: state.ontology().clone(),
        }
    }

    /// Completed folds at capture time.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// The live ontology at capture time.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The configuration the captured folds ran under.
    pub fn cfg(&self) -> &GiantConfig {
        &self.cfg
    }

    /// Reassembles a live state: the host supplies the same annotator and
    /// trained models it folded under before the restart.
    pub fn restore(self, annotator: Annotator, models: GiantModels) -> IncrementalState {
        let input = PipelineInput {
            click_graph: self.click_graph,
            docs: self.docs,
            categories: self.categories,
            sessions: self.sessions,
            entities: self.entities,
            annotator,
        };
        IncrementalState::from_parts(
            input,
            models,
            self.cfg,
            self.caches,
            self.ontology,
            self.folds,
        )
    }

    /// Adds this checkpoint's sections (all `incr.*`) to a container —
    /// composable with other sections (the incremental driver files the
    /// serving frame alongside).
    pub fn add_sections(&self, file: &mut SectionFile) {
        write_sections(
            file,
            &self.cfg,
            self.folds,
            &self.click_graph,
            &self.docs,
            &self.categories,
            &self.sessions,
            &self.entities,
            &self.caches,
            &self.ontology,
        );
    }

    /// [`Checkpoint::add_sections`] straight off a live state, **without**
    /// the deep clone [`Checkpoint::capture`] makes — the path for
    /// checkpoint-on-publish, where cloning the whole accumulated corpus
    /// and caches per ingest would double transient memory for nothing.
    pub fn write_state_sections(state: &IncrementalState, file: &mut SectionFile) {
        let input = state.input();
        write_sections(
            file,
            state.cfg(),
            state.folds(),
            &input.click_graph,
            &input.docs,
            &input.categories,
            &input.sessions,
            &input.entities,
            state.caches(),
            state.ontology(),
        );
    }

    /// Reads a checkpoint back out of a container's `incr.*` (and, from
    /// checkpoint-format v2, `shard.*`) sections. A missing `incr.format`
    /// section marks a v1 (pre-sharding) checkpoint, which restores with
    /// `shards = 1` and no warm slots.
    pub fn from_sections(file: &SectionFile) -> Result<Self, BinError> {
        let (version, n_slots) = if file.names().any(|n| n == "incr.format") {
            let mut r = file.section("incr.format")?;
            let version = r.u32()?;
            if version < 2 || version > CHECKPOINT_VERSION {
                return Err(BinError::new(
                    0,
                    format!(
                        "unsupported checkpoint format v{version} \
                         (this build reads v1..=v{CHECKPOINT_VERSION})"
                    ),
                ));
            }
            // Not `r.len`: the slot payloads live in their own sections, so
            // the in-section remaining-bytes sanity bound does not apply.
            let n_slots = r.u32()? as usize;
            r.expect_exhausted()?;
            (version, n_slots)
        } else {
            (1, 0)
        };

        let mut r = file.section("incr.meta")?;
        let cfg = read_config(&mut r, version >= 2)?;
        let folds = r.u64()?;
        r.expect_exhausted()?;

        let mut r = file.section("incr.input")?;
        let click_graph = read_click_graph(&mut r)?;
        let docs = read_docs(&mut r)?;
        let categories = read_categories(&mut r)?;
        let n_sessions = r.len(4, "sessions")?;
        let mut sessions = Vec::with_capacity(n_sessions);
        for _ in 0..n_sessions {
            sessions.push(r.str_vec()?);
        }
        let n_entities = r.len(5, "entities")?;
        let mut entities = Vec::with_capacity(n_entities);
        for _ in 0..n_entities {
            let tokens = r.str_vec()?;
            let ner = read_ner(&mut r)?;
            entities.push((tokens, ner));
        }
        r.expect_exhausted()?;

        let mut r = file.section("incr.caches")?;
        let mut caches = PipelineCaches::read_checkpoint(&mut r)?;
        r.expect_exhausted()?;

        let mut slots = Vec::with_capacity(n_slots);
        for k in 0..n_slots {
            let mut r = file.section(&format!("shard.{k}.slot"))?;
            slots.push(giant_core::cache::ShardSlot::read_checkpoint(&mut r)?);
            r.expect_exhausted()?;
        }
        caches.set_shard_slots(slots);

        let mut r = file.section("incr.ontology")?;
        let ontology = binio::read_ontology(&mut r)?;
        r.expect_exhausted()?;

        Ok(Self {
            cfg,
            folds,
            click_graph,
            docs,
            categories,
            sessions,
            entities,
            caches,
            ontology,
        })
    }

    /// Saves the checkpoint to `path` (atomic write; magic, format
    /// version and per-section checksums per `giant_ontology::binio`).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut file = SectionFile::new();
        self.add_sections(&mut file);
        file.write_file(path)
    }

    /// Loads and verifies a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, FileError> {
        let file = SectionFile::read_file(path)?;
        Ok(Self::from_sections(&file)?)
    }
}

impl IncrementalState {
    /// Captures a durable [`Checkpoint`] of this state (see
    /// [`Checkpoint::capture`]).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::capture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{ClickEvent, DeltaBatch};
    use giant_core::gctsp::{GctspConfig, GctspNet};

    /// Deterministically initialised (untrained) models — checkpoints only
    /// need *a* fixed model pair, not a good one.
    fn untrained_models() -> GiantModels {
        GiantModels {
            phrase_model: GctspNet::new(GctspConfig::default()),
            role_model: GctspNet::new(GctspConfig {
                n_classes: 4,
                ..GctspConfig::default()
            }),
        }
    }

    fn tiny_state() -> IncrementalState {
        let mut state = IncrementalState::new(
            vec![CategoryRecord {
                id: 0,
                tokens: vec!["tech".into()],
                level: 1,
                parent: None,
            }],
            Annotator::default(),
            untrained_models(),
            GiantConfig::default(),
        );
        let mut batch = DeltaBatch::new();
        batch.docs.push(DocRecord {
            id: 0,
            title: "quanta corp launches panel".into(),
            sentences: vec!["the quanta corp panel is here".into()],
            leaf_category: 0,
            day: 1,
        });
        batch.clicks.push(ClickEvent {
            query: "quanta panel".into(),
            doc: 0,
            count: 3.0,
        });
        batch.sessions.push(vec!["quanta panel".into(), "quanta corp".into()]);
        batch
            .entities
            .push((vec!["quanta".into(), "corp".into()], NerTag::Organization));
        state.fold(batch).expect("tiny batch folds");
        state
    }

    #[test]
    fn checkpoint_save_load_restore_round_trips() {
        let state = tiny_state();
        let before = giant_ontology::io::dump(state.ontology());
        let ck = state.checkpoint();
        let dir = std::env::temp_dir().join("giant-incr-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        ck.save(&path).unwrap();

        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.folds(), state.folds());
        assert_eq!(giant_ontology::io::dump(loaded.ontology()), before);
        let restored = loaded.restore(Annotator::default(), untrained_models());
        assert_eq!(restored.folds(), state.folds());
        assert_eq!(restored.cache_sizes(), state.cache_sizes());
        assert_eq!(giant_ontology::io::dump(restored.ontology()), before);
        assert_eq!(
            restored.input().click_graph.total_clicks().to_bits(),
            state.input().click_graph.total_clicks().to_bits(),
            "running click total must be bit-exact"
        );
        std::fs::remove_file(&path).ok();
    }

    /// A state folded under `shards = 2` checkpoints its warm per-shard
    /// slots (`shard.<k>.slot` sections) and restores them bit-exactly.
    #[test]
    fn sharded_checkpoint_round_trips_warm_slots() {
        let mut state = IncrementalState::new(
            vec![
                CategoryRecord {
                    id: 0,
                    tokens: vec!["tech".into()],
                    level: 1,
                    parent: None,
                },
                CategoryRecord {
                    id: 1,
                    tokens: vec!["sport".into()],
                    level: 1,
                    parent: None,
                },
            ],
            Annotator::default(),
            untrained_models(),
            GiantConfig {
                shards: 2,
                ..GiantConfig::default()
            },
        );
        let mut batch = DeltaBatch::new();
        for (id, (title, cat)) in [
            ("quanta corp launches panel", 0usize),
            ("arena cup final tonight", 1usize),
        ]
        .iter()
        .enumerate()
        {
            batch.docs.push(DocRecord {
                id,
                title: (*title).into(),
                sentences: vec![(*title).into()],
                leaf_category: *cat,
                day: 1,
            });
        }
        batch.clicks.push(ClickEvent {
            query: "quanta panel".into(),
            doc: 0,
            count: 3.0,
        });
        batch.clicks.push(ClickEvent {
            query: "arena cup".into(),
            doc: 1,
            count: 2.0,
        });
        state.fold(batch).expect("sharded tiny batch folds");
        assert_eq!(
            state.caches().shard_slots().len(),
            2,
            "a shards=2 fold must populate two cache slots"
        );
        let before = giant_ontology::io::dump(state.ontology());

        let mut file = SectionFile::new();
        state.checkpoint().add_sections(&mut file);
        let reread = SectionFile::from_bytes(&file.to_bytes()).expect("container round trip");
        let loaded = Checkpoint::from_sections(&reread).expect("v2 checkpoint parses");
        assert_eq!(loaded.cfg().shards, 2);
        assert_eq!(loaded.caches.shard_slots().len(), 2);
        for (restored, live) in loaded
            .caches
            .shard_slots()
            .iter()
            .zip(state.caches().shard_slots())
        {
            assert_eq!(restored.query_map(), live.query_map());
            assert_eq!(restored.doc_map(), live.doc_map());
            assert_eq!(
                restored.caches().cached_plans(),
                live.caches().cached_plans(),
                "slot walk caches must survive the round trip"
            );
            assert_eq!(restored.caches().cached_minings(), live.caches().cached_minings());
        }
        let restored = loaded.restore(Annotator::default(), untrained_models());
        assert_eq!(restored.cache_sizes(), state.cache_sizes());
        assert_eq!(giant_ontology::io::dump(restored.ontology()), before);
    }

    /// Backward compatibility: a checkpoint in the **v1** layout — no
    /// `incr.format` section, `incr.meta` ending at `threads`, no shard
    /// sections; byte-for-byte what every pre-sharding build wrote — must
    /// still parse and restore, defaulting to `shards = 1` with no warm
    /// slots. The section bytes are hand-built here against the frozen v1
    /// field order rather than captured from a binary fixture, so the test
    /// stays self-describing.
    #[test]
    fn v1_checkpoint_without_format_section_still_restores() {
        let state = tiny_state();
        let before = giant_ontology::io::dump(state.ontology());
        let ck = state.checkpoint();

        let mut file = SectionFile::new();
        let mut w = Writer::new();
        let cfg = ck.cfg();
        w.f64(cfg.cluster.delta_v);
        w.f64(cfg.cluster.walk.restart);
        w.usize(cfg.cluster.walk.max_iter);
        w.f64(cfg.cluster.walk.tol);
        w.f64(cfg.cluster.walk.min_mass);
        w.usize(cfg.cluster.max_queries);
        w.usize(cfg.cluster.max_docs);
        w.f64(cfg.cluster.min_overlap);
        w.f64(cfg.delta_m);
        w.f64(cfg.delta_g);
        w.usize(cfg.subtitle_min_tokens);
        w.usize(cfg.subtitle_max_tokens);
        w.usize(cfg.csd_min_children);
        w.usize(cfg.cpd_min_events);
        w.f64(cfg.topic_min_support);
        w.f64(cfg.correlate_threshold_percentile);
        w.u64(cfg.seed);
        w.usize(cfg.threads);
        w.u64(ck.folds());
        file.add_writer("incr.meta", w);

        let mut w = Writer::new();
        write_click_graph(&mut w, &ck.click_graph);
        write_docs(&mut w, &ck.docs);
        write_categories(&mut w, &ck.categories);
        w.u32(ck.sessions.len() as u32);
        for s in &ck.sessions {
            w.str_slice(s);
        }
        w.u32(ck.entities.len() as u32);
        for (tokens, ner) in &ck.entities {
            w.str_slice(tokens);
            write_ner(&mut w, *ner);
        }
        file.add_writer("incr.input", w);

        let mut w = Writer::new();
        ck.caches.write_checkpoint(&mut w);
        file.add_writer("incr.caches", w);

        let mut w = Writer::new();
        binio::write_ontology(&ck.ontology, &mut w);
        file.add_writer("incr.ontology", w);

        let reread = SectionFile::from_bytes(&file.to_bytes()).expect("container round trip");
        let loaded = Checkpoint::from_sections(&reread).expect("v1 checkpoint parses");
        assert_eq!(loaded.cfg().shards, 1, "v1 restores single-shard");
        assert!(loaded.caches.shard_slots().is_empty());
        assert_eq!(loaded.folds(), ck.folds());
        let restored = loaded.restore(Annotator::default(), untrained_models());
        assert_eq!(restored.cache_sizes(), state.cache_sizes());
        assert_eq!(giant_ontology::io::dump(restored.ontology()), before);
    }

    /// An unknown future checkpoint version fails typed, not garbled.
    #[test]
    fn future_checkpoint_version_is_rejected() {
        // The version gate fires before any other section is read, so a
        // lone `incr.format` section exercises it.
        let mut hacked = SectionFile::new();
        let mut w = Writer::new();
        w.u32(CHECKPOINT_VERSION + 1);
        w.u32(0);
        hacked.add_writer("incr.format", w);
        let err = Checkpoint::from_sections(&hacked).expect_err("future version must fail");
        assert!(
            err.message.contains("unsupported checkpoint format"),
            "got: {}",
            err.message
        );
    }

    #[test]
    fn corrupted_checkpoint_fails_typed() {
        let state = tiny_state();
        let mut file = SectionFile::new();
        state.checkpoint().add_sections(&mut file);
        let mut bytes = file.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x42;
        assert!(SectionFile::from_bytes(&bytes).is_err(), "checksum must catch the flip");
    }
}
